//! Training loop: GraphSAINT mini-batches, Adam, validation-based model
//! selection (paper Section IV-C: "the model with the best performance on
//! the validation set is used to evaluate the test set").

use crate::features::CircuitGraph;
use crate::model::{ModelConfig, SageModel};
use crate::saint::{SaintConfig, SaintSampler};
use gnnunlock_neural::{inverse_frequency_weights, softmax_cross_entropy, AdamConfig, Metrics};
use std::time::{Duration, Instant};

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs (one GraphSAINT mini-batch per epoch; paper max:
    /// 2000).
    pub epochs: usize,
    /// Hidden width `H` (paper: 512).
    pub hidden: usize,
    /// Dropout probability (paper: 0.1).
    pub dropout: f64,
    /// Adam learning rate (paper: 0.01).
    pub lr: f32,
    /// GraphSAINT sampler settings.
    pub saint: SaintConfig,
    /// Weight the loss by inverse class frequency (protection nodes are
    /// rare). See DESIGN.md ablations.
    pub class_weighting: bool,
    /// Validate (and checkpoint) every this many epochs.
    pub eval_every: usize,
    /// Stop early after this many evaluations without improvement
    /// (0 = never).
    pub patience: usize,
    /// RNG seed (weights + dropout).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            hidden: 96,
            dropout: 0.1,
            lr: 0.01,
            saint: SaintConfig::default(),
            class_weighting: true,
            eval_every: 10,
            patience: 8,
            seed: 7,
        }
    }
}

impl TrainConfig {
    /// The paper's exact configuration (hidden 512, up to 2000 epochs,
    /// 3000 walk roots). Expect hours of CPU time at full scale.
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 2000,
            hidden: 512,
            saint: SaintConfig {
                roots: 3000,
                walk_length: 2,
                ..SaintConfig::default()
            },
            ..TrainConfig::default()
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Best validation accuracy seen.
    pub best_val_accuracy: f64,
    /// Epochs actually run (≤ configured epochs under early stopping).
    pub epochs_run: usize,
    /// Wall-clock training time.
    pub train_time: Duration,
    /// `(epoch, train_loss, val_accuracy)` at each evaluation point.
    pub history: Vec<(usize, f32, f64)>,
}

/// Train a GraphSAGE classifier on `train` with model selection on `val`.
///
/// Returns the best-on-validation model and a report.
///
/// # Panics
///
/// Panics if the graphs disagree on feature length or class count.
pub fn train(
    train: &CircuitGraph,
    val: &CircuitGraph,
    cfg: &TrainConfig,
) -> (SageModel, TrainReport) {
    assert_eq!(
        train.feature_len(),
        val.feature_len(),
        "feature length mismatch"
    );
    assert_eq!(train.scheme, val.scheme, "label scheme mismatch");
    let classes = train.scheme.num_classes();
    let model_cfg = ModelConfig {
        feature_len: train.feature_len(),
        hidden: cfg.hidden,
        classes,
        dropout: cfg.dropout,
        seed: cfg.seed,
    };
    let mut model = SageModel::new(model_cfg);
    let mut opt = model.optimizer(AdamConfig {
        lr: cfg.lr,
        ..AdamConfig::default()
    });
    let mut sampler = SaintSampler::new(
        &train.adj,
        SaintConfig {
            seed: cfg.seed ^ 0xabcd,
            ..cfg.saint.clone()
        },
    );
    let class_weights = cfg
        .class_weighting
        .then(|| inverse_frequency_weights(&train.labels, classes));

    let start = Instant::now();
    let mut best = model.clone();
    let mut best_val = -1.0f64;
    let mut history = Vec::new();
    let mut evals_since_best = 0usize;
    let mut epochs_run = 0usize;
    for epoch in 1..=cfg.epochs {
        epochs_run = epoch;
        let sub = sampler.sample(&train.adj);
        let x = train.features.gather_rows(&sub.nodes);
        let labels: Vec<usize> = sub.nodes.iter().map(|&v| train.labels[v]).collect();
        let cache = model.forward(&sub.adj, &x, Some(cfg.seed ^ epoch as u64));
        let loss = softmax_cross_entropy(
            &cache.logits,
            &labels,
            Some(&sub.loss_weights),
            class_weights.as_deref(),
        );
        let grads = model.backward(&sub.adj, &cache, &loss.grad);
        model.apply(&mut opt, &grads);

        if epoch % cfg.eval_every == 0 || epoch == cfg.epochs {
            let val_acc = evaluate(&model, val).accuracy();
            history.push((epoch, loss.loss, val_acc));
            if val_acc > best_val {
                best_val = val_acc;
                best = model.clone();
                evals_since_best = 0;
            } else {
                evals_since_best += 1;
                if cfg.patience > 0 && evals_since_best >= cfg.patience {
                    break;
                }
            }
            if (best_val - 1.0).abs() < f64::EPSILON {
                // Validation is perfect; later epochs cannot improve
                // selection.
                break;
            }
        }
    }
    let report = TrainReport {
        best_val_accuracy: best_val.max(0.0),
        epochs_run,
        train_time: start.elapsed(),
        history,
    };
    (best, report)
}

/// Full-graph inference metrics of `model` on `graph`.
pub fn evaluate(model: &SageModel, graph: &CircuitGraph) -> Metrics {
    let preds = model.predict(&graph.adj, &graph.features);
    Metrics::from_predictions(&preds, &graph.labels, graph.scheme.num_classes())
}

/// Full-graph predictions of `model` on `graph` (class per node).
pub fn predict(model: &SageModel, graph: &CircuitGraph) -> Vec<usize> {
    model.predict(&graph.adj, &graph.features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{netlist_to_graph, LabelScheme};
    use gnnunlock_locking::{lock_antisat, AntiSatConfig};
    use gnnunlock_netlist::generator::BenchmarkSpec;
    use gnnunlock_netlist::CellLibrary;

    fn antisat_graph(bench: &str, scale: f64, key: usize, seed: u64) -> CircuitGraph {
        let design = BenchmarkSpec::named(bench)
            .unwrap()
            .scaled(scale)
            .generate();
        let locked = lock_antisat(&design, &AntiSatConfig::new(key, seed)).unwrap();
        netlist_to_graph(&locked.netlist, CellLibrary::Bench8, LabelScheme::AntiSat)
    }

    /// Small but real end-to-end training run: train on two locked
    /// circuits, validate on a third, test on a fourth — the GNN must
    /// clearly separate Anti-SAT nodes on the unseen circuit.
    #[test]
    fn learns_antisat_on_unseen_circuit() {
        let train_g = crate::features::merge_graphs(&[
            antisat_graph("c2670", 0.03, 8, 1),
            antisat_graph("c5315", 0.03, 8, 2),
        ]);
        let val_g = antisat_graph("c3540", 0.03, 8, 3);
        let test_g = antisat_graph("c7552", 0.03, 8, 4);
        let cfg = TrainConfig {
            epochs: 60,
            hidden: 32,
            eval_every: 5,
            patience: 0,
            saint: SaintConfig {
                roots: 400,
                walk_length: 2,
                estimation_rounds: 5,
                seed: 5,
            },
            ..TrainConfig::default()
        };
        let (model, report) = train(&train_g, &val_g, &cfg);
        assert!(report.epochs_run >= 5);
        let m = evaluate(&model, &test_g);
        assert!(
            m.accuracy() > 0.95,
            "test accuracy {:.4} too low",
            m.accuracy()
        );
        // The Anti-SAT class must actually be found (not all-design).
        assert!(
            m.recall(1) > 0.8,
            "Anti-SAT recall {:.4} too low",
            m.recall(1)
        );
    }

    #[test]
    fn early_stop_on_perfect_validation() {
        let train_g = antisat_graph("c2670", 0.02, 8, 1);
        let val_g = antisat_graph("c2670", 0.02, 8, 1);
        let cfg = TrainConfig {
            epochs: 500,
            hidden: 24,
            eval_every: 5,
            saint: SaintConfig {
                roots: 200,
                walk_length: 2,
                estimation_rounds: 3,
                seed: 1,
            },
            ..TrainConfig::default()
        };
        let (_, report) = train(&train_g, &val_g, &cfg);
        // Either early-stopped on perfect val or on patience; both far
        // below the epoch cap for this trivial task.
        assert!(
            report.epochs_run < 500,
            "no early stopping ({} epochs)",
            report.epochs_run
        );
    }
}
