//! Training loop: GraphSAINT mini-batches, Adam, validation-based model
//! selection (paper Section IV-C: "the model with the best performance on
//! the validation set is used to evaluate the test set").

use crate::features::CircuitGraph;
use crate::model::{ModelConfig, ModelOptimizer, SageModel};
use crate::saint::{SaintConfig, SaintSampler};
use gnnunlock_neural::{
    inverse_frequency_weights, softmax_cross_entropy_ws, AdamConfig, Metrics, Workspace,
};
use std::time::{Duration, Instant};

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs (one GraphSAINT mini-batch per epoch; paper max:
    /// 2000).
    pub epochs: usize,
    /// Hidden width `H` (paper: 512).
    pub hidden: usize,
    /// Dropout probability (paper: 0.1).
    pub dropout: f64,
    /// Adam learning rate (paper: 0.01).
    pub lr: f32,
    /// GraphSAINT sampler settings.
    pub saint: SaintConfig,
    /// Weight the loss by inverse class frequency (protection nodes are
    /// rare). See DESIGN.md ablations.
    pub class_weighting: bool,
    /// Validate (and checkpoint) every this many epochs.
    pub eval_every: usize,
    /// Stop early after this many evaluations without improvement
    /// (0 = never).
    pub patience: usize,
    /// RNG seed (weights + dropout).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            hidden: 96,
            dropout: 0.1,
            lr: 0.01,
            saint: SaintConfig::default(),
            class_weighting: true,
            eval_every: 10,
            patience: 8,
            seed: 7,
        }
    }
}

impl TrainConfig {
    /// The paper's exact configuration (hidden 512, up to 2000 epochs,
    /// 3000 walk roots). Expect hours of CPU time at full scale.
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 2000,
            hidden: 512,
            saint: SaintConfig {
                roots: 3000,
                walk_length: 2,
                ..SaintConfig::default()
            },
            ..TrainConfig::default()
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Best validation accuracy seen.
    pub best_val_accuracy: f64,
    /// Epochs actually run (≤ configured epochs under early stopping).
    pub epochs_run: usize,
    /// Wall-clock training time.
    pub train_time: Duration,
    /// `(epoch, train_loss, val_accuracy)` at each evaluation point.
    pub history: Vec<(usize, f32, f64)>,
}

/// Everything the training loop carries between epochs, made explicit so
/// training can run as a chain of resumable per-epoch steps (the
/// campaign engine's `train-epoch` stage jobs). The invariant per-epoch
/// setup — sampler construction with its inclusion-probability
/// estimation, class-weight computation, the subgraph-induction scratch
/// — happens once in [`TrainState::new`] (or is restored exactly by
/// [`TrainState::from_checkpoint`]), never inside the epoch loop.
#[derive(Debug)]
pub struct TrainState {
    cfg: TrainConfig,
    model: SageModel,
    opt: ModelOptimizer,
    sampler: SaintSampler,
    class_weights: Option<Vec<f32>>,
    best: SageModel,
    best_val: f64,
    history: Vec<(usize, f32, f64)>,
    evals_since_best: usize,
    epochs_run: usize,
    done: bool,
    elapsed: Duration,
    /// Kernel scratch reused across epochs (transient — never part of a
    /// checkpoint; a fresh or restored state warms it lazily on the
    /// first epoch).
    ws: Workspace,
    /// Largest row count the workspace has been warmed for (0 = cold).
    warmed_rows: usize,
    /// Per-epoch mini-batch label scratch, reused like the workspace.
    labels_buf: Vec<usize>,
}

/// A serializable snapshot of a [`TrainState`] between two epochs:
/// current and best-so-far model weights, full Adam state, the sampler's
/// RNG state and inclusion probabilities, and the selection/early-stop
/// bookkeeping. Restoring it with [`TrainState::from_checkpoint`]
/// continues training **bit-exactly** — a run killed mid-training and
/// resumed from its latest checkpoint produces the same model (and the
/// same report, minus wall-clock) as an uninterrupted one.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// The in-training model.
    pub model: SageModel,
    /// Optimizer state matching `model`.
    pub opt: ModelOptimizer,
    /// Sampler RNG state ([`SaintSampler::rng_state`]).
    pub sampler_rng: [u64; 4],
    /// Sampler inclusion probabilities ([`SaintSampler::inclusion`]).
    pub inclusion: Vec<f32>,
    /// Best-on-validation model so far.
    pub best: SageModel,
    /// Best validation accuracy so far (−1 before the first eval).
    pub best_val: f64,
    /// `(epoch, train_loss, val_accuracy)` at each evaluation point.
    pub history: Vec<(usize, f32, f64)>,
    /// Evaluations since the best one (early-stop counter).
    pub evals_since_best: usize,
    /// Epochs completed.
    pub epochs_run: usize,
    /// Whether training already stopped (early stop or epoch cap).
    pub done: bool,
    /// Accumulated wall-clock seconds (volatile; excluded from
    /// deterministic reports).
    pub elapsed_secs: f64,
}

impl TrainCheckpoint {
    /// The best-on-validation model and report as of this snapshot —
    /// what [`train`] would have returned had training stopped here.
    /// The campaign's finalize (`train`) stage calls this on the last
    /// chain link's checkpoint.
    pub fn finish(&self) -> (SageModel, TrainReport) {
        (
            self.best.clone(),
            TrainReport {
                best_val_accuracy: self.best_val.max(0.0),
                epochs_run: self.epochs_run,
                train_time: Duration::from_secs_f64(self.elapsed_secs.max(0.0)),
                history: self.history.clone(),
            },
        )
    }
}

impl TrainState {
    /// Fresh state for training on `train` with model selection on `val`.
    ///
    /// # Panics
    ///
    /// Panics if the graphs disagree on feature length or class count.
    pub fn new(train: &CircuitGraph, val: &CircuitGraph, cfg: &TrainConfig) -> TrainState {
        assert_eq!(
            train.feature_len(),
            val.feature_len(),
            "feature length mismatch"
        );
        assert_eq!(train.scheme, val.scheme, "label scheme mismatch");
        let classes = train.scheme.num_classes();
        let model = SageModel::new(ModelConfig {
            feature_len: train.feature_len(),
            hidden: cfg.hidden,
            classes,
            dropout: cfg.dropout,
            seed: cfg.seed,
        });
        let opt = model.optimizer(AdamConfig {
            lr: cfg.lr,
            ..AdamConfig::default()
        });
        let sampler = SaintSampler::new(
            &train.adj,
            SaintConfig {
                seed: cfg.seed ^ 0xabcd,
                ..cfg.saint.clone()
            },
        );
        let class_weights = cfg
            .class_weighting
            .then(|| inverse_frequency_weights(&train.labels, classes));
        TrainState {
            cfg: cfg.clone(),
            best: model.clone(),
            model,
            opt,
            sampler,
            class_weights,
            best_val: -1.0,
            history: Vec::new(),
            evals_since_best: 0,
            epochs_run: 0,
            done: false,
            elapsed: Duration::ZERO,
            ws: Workspace::new(),
            warmed_rows: 0,
            labels_buf: Vec::new(),
        }
    }

    /// Restore a state from a checkpoint, continuing bit-exactly where
    /// the snapshotted training left off. `train` must be the same
    /// training graph the checkpointed run used (the class weights are
    /// recomputed from it; everything random is restored from the
    /// snapshot).
    pub fn from_checkpoint(
        train: &CircuitGraph,
        cfg: &TrainConfig,
        ckpt: &TrainCheckpoint,
    ) -> TrainState {
        let classes = train.scheme.num_classes();
        let sampler = SaintSampler::from_parts(
            SaintConfig {
                seed: cfg.seed ^ 0xabcd,
                ..cfg.saint.clone()
            },
            ckpt.sampler_rng,
            ckpt.inclusion.clone(),
        );
        let class_weights = cfg
            .class_weighting
            .then(|| inverse_frequency_weights(&train.labels, classes));
        TrainState {
            cfg: cfg.clone(),
            model: ckpt.model.clone(),
            opt: ckpt.opt.clone(),
            sampler,
            class_weights,
            best: ckpt.best.clone(),
            best_val: ckpt.best_val,
            history: ckpt.history.clone(),
            evals_since_best: ckpt.evals_since_best,
            epochs_run: ckpt.epochs_run,
            done: ckpt.done,
            elapsed: Duration::from_secs_f64(ckpt.elapsed_secs.max(0.0)),
            ws: Workspace::new(),
            warmed_rows: 0,
            labels_buf: Vec::new(),
        }
    }

    /// Snapshot the state between epochs.
    pub fn checkpoint(&self) -> TrainCheckpoint {
        TrainCheckpoint {
            model: self.model.clone(),
            opt: self.opt.clone(),
            sampler_rng: self.sampler.rng_state(),
            inclusion: self.sampler.inclusion().to_vec(),
            best: self.best.clone(),
            best_val: self.best_val,
            history: self.history.clone(),
            evals_since_best: self.evals_since_best,
            epochs_run: self.epochs_run,
            done: self.done,
            elapsed_secs: self.elapsed.as_secs_f64(),
        }
    }

    /// Epochs completed so far.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Heap allocations the kernel workspace has performed so far
    /// (pool-capacity misses). Flat across steady-state epochs — the
    /// zero-allocation contract of the kernel overhaul, asserted by the
    /// workspace-reuse tests.
    pub fn workspace_allocations(&self) -> usize {
        self.ws.allocations()
    }

    /// Whether training has stopped (early stop, perfect validation, or
    /// the epoch cap).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Run one training epoch (one GraphSAINT mini-batch step, plus the
    /// scheduled validation / model selection / early-stop check).
    /// Returns `true` when training is finished — either this epoch
    /// triggered a stop or the epoch cap is reached — after which further
    /// calls are no-ops.
    pub fn step_epoch(&mut self, train: &CircuitGraph, val: &CircuitGraph) -> bool {
        if self.done || self.epochs_run >= self.cfg.epochs {
            self.done = true;
            return true;
        }
        let start = Instant::now();
        // Warm the kernel scratch to the largest shapes any epoch (a
        // sampled subgraph) or evaluation (either full graph) can need,
        // so steady-state epochs allocate nothing — lazily, so fresh
        // and checkpoint-restored states behave identically.
        let need = train.num_nodes().max(val.num_nodes());
        if need > self.warmed_rows {
            self.model.warm_workspace(need, &mut self.ws);
            self.warmed_rows = need;
        }
        let cfg = &self.cfg;
        let epoch = self.epochs_run + 1;
        self.epochs_run = epoch;
        let sub = self.sampler.sample(&train.adj);
        // The whole numeric path of an epoch — gather, forward,
        // loss, backward, optimizer step — runs on workspace-pooled
        // buffers: once the pool has warmed to the largest mini-batch
        // seen, an epoch performs zero kernel-path heap allocation.
        let mut x = self.ws.take(sub.nodes.len(), train.features.cols());
        train.features.gather_rows_into(&sub.nodes, &mut x);
        self.labels_buf.clear();
        self.labels_buf
            .extend(sub.nodes.iter().map(|&v| train.labels[v]));
        let cache = self
            .model
            .forward_ws(&sub.adj, x, Some(cfg.seed ^ epoch as u64), &mut self.ws);
        let loss = softmax_cross_entropy_ws(
            &cache.logits,
            &self.labels_buf,
            Some(&sub.loss_weights),
            self.class_weights.as_deref(),
            &mut self.ws,
        );
        let grads = self
            .model
            .backward_ws(&sub.adj, &cache, &loss.grad, &mut self.ws);
        self.model.apply(&mut self.opt, &grads);
        grads.recycle(&mut self.ws);
        cache.recycle(&mut self.ws);
        self.ws.recycle(loss.grad);

        if epoch.is_multiple_of(cfg.eval_every) || epoch == cfg.epochs {
            let val_acc = evaluate_ws(&self.model, val, &mut self.ws).accuracy();
            self.history.push((epoch, loss.loss, val_acc));
            if val_acc > self.best_val {
                self.best_val = val_acc;
                self.best = self.model.clone();
                self.evals_since_best = 0;
            } else {
                self.evals_since_best += 1;
                if cfg.patience > 0 && self.evals_since_best >= cfg.patience {
                    self.done = true;
                }
            }
            if (self.best_val - 1.0).abs() < f64::EPSILON {
                // Validation is perfect; later epochs cannot improve
                // selection.
                self.done = true;
            }
        }
        if epoch == cfg.epochs {
            self.done = true;
        }
        self.elapsed += start.elapsed();
        self.done
    }

    /// The best-on-validation model and the report, as [`train`] would
    /// return them at this point.
    pub fn finish(&self) -> (SageModel, TrainReport) {
        (
            self.best.clone(),
            TrainReport {
                best_val_accuracy: self.best_val.max(0.0),
                epochs_run: self.epochs_run,
                train_time: self.elapsed,
                history: self.history.clone(),
            },
        )
    }
}

/// Train a GraphSAGE classifier on `train` with model selection on `val`.
///
/// Returns the best-on-validation model and a report. Implemented as a
/// loop over [`TrainState::step_epoch`], so it is step-for-step (and
/// bit-for-bit) identical to running the same training as a chain of
/// checkpointed epoch jobs.
///
/// # Panics
///
/// Panics if the graphs disagree on feature length or class count.
pub fn train(
    train: &CircuitGraph,
    val: &CircuitGraph,
    cfg: &TrainConfig,
) -> (SageModel, TrainReport) {
    let mut state = TrainState::new(train, val, cfg);
    while !state.step_epoch(train, val) {}
    state.finish()
}

/// Full-graph inference metrics of `model` on `graph`.
pub fn evaluate(model: &SageModel, graph: &CircuitGraph) -> Metrics {
    evaluate_ws(model, graph, &mut Workspace::new())
}

/// [`evaluate`] with forward-pass temporaries pooled in `ws` (what the
/// training loop's periodic validation uses).
pub fn evaluate_ws(model: &SageModel, graph: &CircuitGraph, ws: &mut Workspace) -> Metrics {
    let preds = model.predict_ws(&graph.adj, &graph.features, ws);
    Metrics::from_predictions(&preds, &graph.labels, graph.scheme.num_classes())
}

/// Full-graph predictions of `model` on `graph` (class per node).
pub fn predict(model: &SageModel, graph: &CircuitGraph) -> Vec<usize> {
    model.predict(&graph.adj, &graph.features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{netlist_to_graph, LabelScheme};
    use gnnunlock_locking::{lock_antisat, AntiSatConfig};
    use gnnunlock_netlist::generator::BenchmarkSpec;
    use gnnunlock_netlist::CellLibrary;

    fn antisat_graph(bench: &str, scale: f64, key: usize, seed: u64) -> CircuitGraph {
        let design = BenchmarkSpec::named(bench)
            .unwrap()
            .scaled(scale)
            .generate();
        let locked = lock_antisat(&design, &AntiSatConfig::new(key, seed)).unwrap();
        netlist_to_graph(&locked.netlist, CellLibrary::Bench8, LabelScheme::AntiSat)
    }

    /// Small but real end-to-end training run: train on two locked
    /// circuits, validate on a third, test on a fourth — the GNN must
    /// clearly separate Anti-SAT nodes on the unseen circuit.
    #[test]
    fn learns_antisat_on_unseen_circuit() {
        let train_g = crate::features::merge_graphs(&[
            antisat_graph("c2670", 0.03, 8, 1),
            antisat_graph("c5315", 0.03, 8, 2),
        ]);
        let val_g = antisat_graph("c3540", 0.03, 8, 3);
        let test_g = antisat_graph("c7552", 0.03, 8, 4);
        let cfg = TrainConfig {
            epochs: 60,
            hidden: 32,
            eval_every: 5,
            patience: 0,
            saint: SaintConfig {
                roots: 400,
                walk_length: 2,
                estimation_rounds: 5,
                seed: 5,
            },
            ..TrainConfig::default()
        };
        let (model, report) = train(&train_g, &val_g, &cfg);
        assert!(report.epochs_run >= 5);
        let m = evaluate(&model, &test_g);
        assert!(
            m.accuracy() > 0.95,
            "test accuracy {:.4} too low",
            m.accuracy()
        );
        // The Anti-SAT class must actually be found (not all-design).
        assert!(
            m.recall(1) > 0.8,
            "Anti-SAT recall {:.4} too low",
            m.recall(1)
        );
    }

    /// The checkpointed chain must reproduce `train` bit-for-bit: the
    /// same weights, the same history floats, the same epoch count —
    /// whatever block size the chain uses, and across a checkpoint
    /// round trip at every block boundary. This is also the regression
    /// guard for the hoisted per-epoch setup (sampler construction,
    /// class weights, degree normalization, induction scratch): any
    /// drift in the refactored loop shows up as a bit difference here.
    #[test]
    fn checkpoint_chain_reproduces_train_bit_exactly() {
        let train_g = crate::features::merge_graphs(&[
            antisat_graph("c2670", 0.02, 8, 1),
            antisat_graph("c5315", 0.02, 8, 2),
        ]);
        let val_g = antisat_graph("c3540", 0.02, 8, 3);
        let cfg = TrainConfig {
            epochs: 35,
            hidden: 16,
            eval_every: 5,
            patience: 2,
            saint: SaintConfig {
                roots: 150,
                walk_length: 2,
                estimation_rounds: 3,
                seed: 5,
            },
            ..TrainConfig::default()
        };
        let (direct_model, direct_report) = train(&train_g, &val_g, &cfg);

        for block in [1usize, 7, 10, 100] {
            let mut ckpt = None;
            loop {
                let mut state = match &ckpt {
                    None => TrainState::new(&train_g, &val_g, &cfg),
                    Some(c) => TrainState::from_checkpoint(&train_g, &cfg, c),
                };
                let target = state.epochs_run() + block;
                while !state.is_done() && state.epochs_run() < target {
                    state.step_epoch(&train_g, &val_g);
                }
                let done = state.is_done();
                ckpt = Some(state.checkpoint());
                if done {
                    break;
                }
            }
            let (model, report) = ckpt.unwrap().finish();
            assert_eq!(report.epochs_run, direct_report.epochs_run, "block {block}");
            assert_eq!(report.best_val_accuracy, direct_report.best_val_accuracy);
            assert_eq!(report.history, direct_report.history);
            for (a, b) in model.parts().iter().zip(direct_model.parts()) {
                assert_eq!(a.weight.data(), b.weight.data(), "block {block}");
                assert_eq!(a.bias, b.bias);
            }
            // Identical metrics on an unseen circuit, bit for bit.
            let test_g = antisat_graph("c7552", 0.02, 8, 4);
            assert_eq!(evaluate(&model, &test_g), evaluate(&direct_model, &test_g));
        }
    }

    /// The per-epoch kernel path must be allocation-free once the
    /// workspace pool has warmed to the largest mini-batch: the
    /// acceptance contract of the scratch-buffer overhaul.
    #[test]
    fn steady_state_epochs_do_not_allocate_kernel_buffers() {
        let train_g = antisat_graph("c2670", 0.02, 8, 1);
        let val_g = antisat_graph("c3540", 0.02, 8, 3);
        let cfg = TrainConfig {
            epochs: 100,
            hidden: 16,
            eval_every: 1000, // no eval inside the measured window
            patience: 0,
            saint: SaintConfig {
                roots: 400, // every epoch covers ~the whole graph
                walk_length: 2,
                estimation_rounds: 3,
                seed: 5,
            },
            ..TrainConfig::default()
        };
        let mut state = TrainState::new(&train_g, &val_g, &cfg);
        for _ in 0..30 {
            state.step_epoch(&train_g, &val_g);
        }
        let warm = state.workspace_allocations();
        assert!(warm > 0, "cold epochs must have allocated");
        for _ in 0..10 {
            state.step_epoch(&train_g, &val_g);
        }
        assert_eq!(
            state.workspace_allocations(),
            warm,
            "steady-state epochs must not allocate kernel buffers"
        );
    }

    #[test]
    fn early_stop_on_perfect_validation() {
        let train_g = antisat_graph("c2670", 0.02, 8, 1);
        let val_g = antisat_graph("c2670", 0.02, 8, 1);
        let cfg = TrainConfig {
            epochs: 500,
            hidden: 24,
            eval_every: 5,
            saint: SaintConfig {
                roots: 200,
                walk_length: 2,
                estimation_rounds: 3,
                seed: 1,
            },
            ..TrainConfig::default()
        };
        let (_, report) = train(&train_g, &val_g, &cfg);
        // Either early-stopped on perfect val or on patience; both far
        // below the epoch cap for this trivial task.
        assert!(
            report.epochs_run < 500,
            "no early stopping ({} epochs)",
            report.epochs_run
        );
    }
}
