//! GraphSAINT random-walk mini-batch sampling (Zeng et al., ICLR 2020),
//! as used by the paper (Table II: random-walk sampler, walk length 2,
//! 3000 root nodes).
//!
//! Per GraphSAINT, a pre-processing phase samples many subgraphs to
//! estimate each node's inclusion probability; training then weights each
//! sampled node's loss by the inverse of that probability so the
//! mini-batch loss is an unbiased estimator of the full-graph loss. (The
//! aggregator-side edge normalization α is folded into the node weights —
//! a documented simplification; see DESIGN.md.)

use crate::graph::Csr;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the random-walk sampler.
#[derive(Debug, Clone)]
pub struct SaintConfig {
    /// Number of walk roots per mini-batch (paper: 3000).
    pub roots: usize,
    /// Walk length (paper: 2).
    pub walk_length: usize,
    /// Subgraphs sampled in pre-processing to estimate inclusion
    /// probabilities.
    pub estimation_rounds: usize,
    /// Sampler RNG seed.
    pub seed: u64,
}

impl Default for SaintConfig {
    fn default() -> Self {
        SaintConfig {
            roots: 3000,
            walk_length: 2,
            estimation_rounds: 20,
            seed: 0,
        }
    }
}

/// A sampled training subgraph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Original node id per subgraph node.
    pub nodes: Vec<usize>,
    /// Induced adjacency among `nodes`.
    pub adj: Csr,
    /// GraphSAINT loss-normalization weight per subgraph node.
    pub loss_weights: Vec<f32>,
}

/// Random-walk subgraph sampler over a fixed training graph.
#[derive(Debug)]
pub struct SaintSampler {
    config: SaintConfig,
    rng: StdRng,
    /// Estimated inclusion probability per node.
    inclusion: Vec<f32>,
    /// Scratch id-map reused by per-epoch subgraph induction (hoisted
    /// out of the epoch loop; see [`Csr::induced_with_map`]).
    induce_map: Vec<u32>,
}

impl SaintSampler {
    /// Build a sampler, running the inclusion-probability estimation.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no nodes.
    pub fn new(adj: &Csr, config: SaintConfig) -> Self {
        assert!(adj.num_nodes() > 0, "empty training graph");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut counts = vec![0u32; adj.num_nodes()];
        let rounds = config.estimation_rounds.max(1);
        for _ in 0..rounds {
            let nodes = sample_walk_nodes(adj, &config, &mut rng);
            for v in nodes {
                counts[v] += 1;
            }
        }
        let inclusion = counts
            .iter()
            .map(|&c| (c as f32 / rounds as f32).max(1.0 / (rounds as f32 * 4.0)))
            .collect();
        SaintSampler {
            config,
            rng,
            inclusion,
            induce_map: Vec::new(),
        }
    }

    /// Snapshot the sampler's RNG state (for training checkpoints). The
    /// inclusion probabilities are available via
    /// [`SaintSampler::inclusion`]; together with the config they fully
    /// determine the sampler's future behavior.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// The estimated per-node inclusion probabilities.
    pub fn inclusion(&self) -> &[f32] {
        &self.inclusion
    }

    /// Rebuild a sampler from checkpointed parts — the inverse of
    /// [`SaintSampler::rng_state`] + [`SaintSampler::inclusion`]. Skips
    /// the estimation phase entirely: the restored sampler produces
    /// exactly the mini-batch stream the snapshotted one would have.
    pub fn from_parts(config: SaintConfig, rng_state: [u64; 4], inclusion: Vec<f32>) -> Self {
        SaintSampler {
            config,
            rng: StdRng::from_state(rng_state),
            inclusion,
            induce_map: Vec::new(),
        }
    }

    /// Sample one mini-batch subgraph.
    pub fn sample(&mut self, adj: &Csr) -> Subgraph {
        let mut nodes = sample_walk_nodes(adj, &self.config, &mut self.rng);
        nodes.sort_unstable();
        nodes.dedup();
        let sub = adj.induced_with_map(&nodes, &mut self.induce_map);
        // Loss weight ∝ 1 / P(node sampled); normalized to mean 1 so the
        // learning-rate scale is preserved.
        let mut weights: Vec<f32> = nodes.iter().map(|&v| 1.0 / self.inclusion[v]).collect();
        let mean: f32 = weights.iter().sum::<f32>() / weights.len().max(1) as f32;
        if mean > 0.0 {
            for w in &mut weights {
                *w /= mean;
            }
        }
        Subgraph {
            nodes,
            adj: sub,
            loss_weights: weights,
        }
    }
}

/// Visit set of `roots` random walks of `walk_length` steps.
fn sample_walk_nodes(adj: &Csr, config: &SaintConfig, rng: &mut StdRng) -> Vec<usize> {
    let n = adj.num_nodes();
    let roots = config.roots.min(n);
    let mut visited = Vec::with_capacity(roots * (config.walk_length + 1));
    for _ in 0..roots {
        let mut v = rng.random_range(0..n);
        visited.push(v);
        for _ in 0..config.walk_length {
            let neigh = adj.neighbors(v);
            if neigh.is_empty() {
                break;
            }
            v = neigh[rng.random_range(0..neigh.len())] as usize;
            visited.push(v);
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Csr {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn subgraph_is_bounded_and_unique() {
        let g = ring(500);
        let cfg = SaintConfig {
            roots: 50,
            walk_length: 2,
            estimation_rounds: 5,
            seed: 1,
        };
        let mut sampler = SaintSampler::new(&g, cfg);
        let sub = sampler.sample(&g);
        assert!(sub.nodes.len() <= 150);
        assert!(!sub.nodes.is_empty());
        let mut sorted = sub.nodes.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), sub.nodes.len(), "duplicate nodes");
        assert_eq!(sub.adj.num_nodes(), sub.nodes.len());
    }

    #[test]
    fn induced_edges_exist_in_parent() {
        let g = ring(100);
        let mut sampler = SaintSampler::new(
            &g,
            SaintConfig {
                roots: 20,
                walk_length: 2,
                estimation_rounds: 3,
                seed: 2,
            },
        );
        let sub = sampler.sample(&g);
        for v in 0..sub.adj.num_nodes() {
            for &u in sub.adj.neighbors(v) {
                let orig_v = sub.nodes[v];
                let orig_u = sub.nodes[u as usize];
                assert!(
                    g.neighbors(orig_v).contains(&(orig_u as u32)),
                    "edge {orig_v}-{orig_u} not in parent"
                );
            }
        }
    }

    #[test]
    fn loss_weights_mean_one() {
        let g = ring(300);
        let mut sampler = SaintSampler::new(
            &g,
            SaintConfig {
                roots: 60,
                walk_length: 2,
                estimation_rounds: 10,
                seed: 3,
            },
        );
        let sub = sampler.sample(&g);
        let mean: f32 = sub.loss_weights.iter().sum::<f32>() / sub.loss_weights.len() as f32;
        assert!((mean - 1.0).abs() < 1e-3, "mean weight {mean}");
        assert!(sub.loss_weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn rare_nodes_get_higher_weights() {
        // A star center is visited far more often than leaves; its weight
        // must be lower.
        let n = 200;
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        let g = Csr::from_edges(n, &edges);
        let mut sampler = SaintSampler::new(
            &g,
            SaintConfig {
                roots: 40,
                walk_length: 2,
                estimation_rounds: 30,
                seed: 4,
            },
        );
        let sub = sampler.sample(&g);
        let center_pos = sub.nodes.iter().position(|&v| v == 0);
        if let Some(cp) = center_pos {
            let leaf_avg: f32 = sub
                .loss_weights
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != cp)
                .map(|(_, &w)| w)
                .sum::<f32>()
                / (sub.loss_weights.len() - 1).max(1) as f32;
            assert!(
                sub.loss_weights[cp] < leaf_avg,
                "center weight {} vs leaf avg {leaf_avg}",
                sub.loss_weights[cp]
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = ring(100);
        let cfg = SaintConfig {
            roots: 10,
            walk_length: 2,
            estimation_rounds: 3,
            seed: 9,
        };
        let mut a = SaintSampler::new(&g, cfg.clone());
        let mut b = SaintSampler::new(&g, cfg);
        assert_eq!(a.sample(&g).nodes, b.sample(&g).nodes);
    }
}
