//! The GraphSAGE node classifier (paper Table II).
//!
//! Architecture, matching the paper's layer shapes:
//!
//! ```text
//! input layer   [|f̂|, H]      h0 = ReLU(X · W_in + b)
//! hidden 1      [2H, H]        h1 = ReLU([h0 ‖ mean_N(h0)] · W_1 + b)
//! hidden 2      [2H, H]        h2 = ReLU([h1 ‖ mean_N(h1)] · W_2 + b)
//! output layer  [H, #classes]  logits = h2 · W_out + b
//! ```
//!
//! with mean aggregation, concatenation (the `2H` input widths), ReLU and
//! dropout 0.1 during training. The paper uses `H = 512`; the width is
//! configurable so CI-scale experiments stay fast.

use crate::graph::Csr;
use gnnunlock_neural::{
    relu_backward_inplace, relu_inplace, AdamConfig, AdamState, DropoutMask, Linear, Matrix,
    Workspace,
};

/// Hyperparameters of a [`SageModel`].
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Input feature length `|f̂|`.
    pub feature_len: usize,
    /// Hidden width `H` (paper: 512).
    pub hidden: usize,
    /// Number of output classes (2 or 3).
    pub classes: usize,
    /// Dropout probability during training (paper: 0.1).
    pub dropout: f64,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl ModelConfig {
    /// Paper-shaped config with a custom hidden width.
    pub fn new(feature_len: usize, hidden: usize, classes: usize) -> Self {
        ModelConfig {
            feature_len,
            hidden,
            classes,
            dropout: 0.1,
            seed: 1,
        }
    }

    /// The paper's exact configuration (hidden 512).
    pub fn paper(feature_len: usize, classes: usize) -> Self {
        ModelConfig::new(feature_len, 512, classes)
    }
}

/// Two-layer GraphSAGE with input encoder and linear head.
#[derive(Debug, Clone)]
pub struct SageModel {
    /// Configuration used to build the model.
    pub config: ModelConfig,
    encoder: Linear,
    layer1: Linear,
    layer2: Linear,
    head: Linear,
}

/// Saved activations from [`SageModel::forward`], consumed by
/// [`SageModel::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    x: Matrix,
    h0: Matrix,
    cat1: Matrix,
    h1: Matrix,
    cat2: Matrix,
    h2: Matrix,
    /// Logits, `N x classes`.
    pub logits: Matrix,
    masks: Option<[DropoutMask; 3]>,
}

impl ForwardCache {
    /// Return every buffer this cache owns — activations, the gathered
    /// input, dropout masks — to the workspace pool. The training loop
    /// calls this at the end of each epoch so the next epoch's forward
    /// pass is allocation-free.
    pub fn recycle(self, ws: &mut Workspace) {
        let ForwardCache {
            x,
            h0,
            cat1,
            h1,
            cat2,
            h2,
            logits,
            masks,
        } = self;
        for m in [x, h0, cat1, h1, cat2, h2, logits] {
            ws.recycle(m);
        }
        if let Some(masks) = masks {
            for mask in masks {
                mask.recycle(ws);
            }
        }
    }
}

/// Gradients for every parameter tensor of the model.
#[derive(Debug, Clone)]
pub struct ModelGrads {
    enc_w: Matrix,
    enc_b: Vec<f32>,
    l1_w: Matrix,
    l1_b: Vec<f32>,
    l2_w: Matrix,
    l2_b: Vec<f32>,
    head_w: Matrix,
    head_b: Vec<f32>,
}

impl ModelGrads {
    /// Return every gradient buffer to the workspace pool (the inverse
    /// of [`SageModel::backward_ws`]'s takes, called once the optimizer
    /// step has consumed the gradients).
    pub fn recycle(self, ws: &mut Workspace) {
        let ModelGrads {
            enc_w,
            enc_b,
            l1_w,
            l1_b,
            l2_w,
            l2_b,
            head_w,
            head_b,
        } = self;
        for m in [enc_w, l1_w, l2_w, head_w] {
            ws.recycle(m);
        }
        for b in [enc_b, l1_b, l2_b, head_b] {
            let len = b.len();
            ws.recycle(Matrix::from_vec(1, len, b));
        }
    }
}

/// Adam state for every parameter tensor.
#[derive(Debug, Clone)]
pub struct ModelOptimizer {
    cfg: AdamConfig,
    enc_w: AdamState,
    enc_b: AdamState,
    l1_w: AdamState,
    l1_b: AdamState,
    l2_w: AdamState,
    l2_b: AdamState,
    head_w: AdamState,
    head_b: AdamState,
}

impl ModelOptimizer {
    /// The optimizer's hyperparameters.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }

    /// The per-tensor Adam states, in a stable order (encoder w/b,
    /// hidden-1 w/b, hidden-2 w/b, head w/b) — for external
    /// serialization (training checkpoints).
    pub fn states(&self) -> [&AdamState; 8] {
        [
            &self.enc_w,
            &self.enc_b,
            &self.l1_w,
            &self.l1_b,
            &self.l2_w,
            &self.l2_b,
            &self.head_w,
            &self.head_b,
        ]
    }

    /// Reassemble an optimizer from [`ModelOptimizer::states`] order —
    /// the inverse used when restoring a training checkpoint.
    pub fn from_states(cfg: AdamConfig, states: [AdamState; 8]) -> Self {
        let [enc_w, enc_b, l1_w, l1_b, l2_w, l2_b, head_w, head_b] = states;
        ModelOptimizer {
            cfg,
            enc_w,
            enc_b,
            l1_w,
            l1_b,
            l2_w,
            l2_b,
            head_w,
            head_b,
        }
    }
}

impl SageModel {
    /// Build a model with He-initialized weights.
    pub fn new(config: ModelConfig) -> Self {
        let h = config.hidden;
        SageModel {
            encoder: Linear::new(config.feature_len, h, config.seed.wrapping_add(11)),
            layer1: Linear::new(2 * h, h, config.seed.wrapping_add(22)),
            layer2: Linear::new(2 * h, h, config.seed.wrapping_add(33)),
            head: Linear::new(h, config.classes, config.seed.wrapping_add(44)),
            config,
        }
    }

    /// The model's four parameter layers, in forward order: encoder,
    /// hidden 1, hidden 2, head. Together with [`SageModel::from_parts`]
    /// this lets trained models round-trip through an external
    /// serialization format (the campaign persistence codec).
    pub fn parts(&self) -> [&Linear; 4] {
        [&self.encoder, &self.layer1, &self.layer2, &self.head]
    }

    /// Reassemble a model from its configuration and parameter layers
    /// (the inverse of [`SageModel::parts`]).
    ///
    /// # Panics
    ///
    /// Panics if the layer shapes do not match `config` — a corrupt or
    /// mismatched serialization, never a runtime condition.
    pub fn from_parts(
        config: ModelConfig,
        encoder: Linear,
        layer1: Linear,
        layer2: Linear,
        head: Linear,
    ) -> Self {
        let h = config.hidden;
        assert_eq!(
            (encoder.in_dim(), encoder.out_dim()),
            (config.feature_len, h),
            "encoder shape mismatch"
        );
        assert_eq!((layer1.in_dim(), layer1.out_dim()), (2 * h, h));
        assert_eq!((layer2.in_dim(), layer2.out_dim()), (2 * h, h));
        assert_eq!((head.in_dim(), head.out_dim()), (h, config.classes));
        SageModel {
            encoder,
            layer1,
            layer2,
            head,
            config,
        }
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.encoder.num_params()
            + self.layer1.num_params()
            + self.layer2.num_params()
            + self.head.num_params()
    }

    /// Forward pass on a graph with features `x`. When `dropout_seed` is
    /// `Some`, dropout masks are sampled and applied (training mode).
    ///
    /// Allocating convenience around [`SageModel::forward_ws`].
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the config.
    pub fn forward(&self, adj: &Csr, x: &Matrix, dropout_seed: Option<u64>) -> ForwardCache {
        self.forward_ws(adj, x.clone(), dropout_seed, &mut Workspace::new())
    }

    /// [`SageModel::forward`] with every temporary taken from `ws`.
    /// Takes ownership of `x` (it is saved in the cache for the backward
    /// pass and returned to the pool by [`ForwardCache::recycle`]).
    /// Bit-identical to the allocating path; allocation-free once the
    /// workspace is warm. The encoder product uses the sparse-aware
    /// kernel — its input is the featurization matrix, which is mostly
    /// exact zeros (one-hot gate encodings) by construction.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the config.
    pub fn forward_ws(
        &self,
        adj: &Csr,
        x: Matrix,
        dropout_seed: Option<u64>,
        ws: &mut Workspace,
    ) -> ForwardCache {
        let n = x.rows();
        let h = self.config.hidden;
        let mut h0 = self.encoder.forward_ws(&x, true, ws);
        relu_inplace(&mut h0);
        let masks = dropout_seed.map(|seed| {
            [
                DropoutMask::sample_pooled(n, h, self.config.dropout, seed, ws),
                DropoutMask::sample_pooled(n, h, self.config.dropout, seed ^ 0x9e37, ws),
                DropoutMask::sample_pooled(n, h, self.config.dropout, seed ^ 0x79b9, ws),
            ]
        });
        if let Some(m) = &masks {
            m[0].apply(&mut h0);
        }
        let mut agg1 = ws.take(n, h);
        adj.mean_aggregate_into(&h0, &mut agg1);
        let mut cat1 = ws.take(n, 2 * h);
        h0.hconcat_into(&agg1, &mut cat1);
        ws.recycle(agg1);
        let mut h1 = self.layer1.forward_ws(&cat1, false, ws);
        relu_inplace(&mut h1);
        if let Some(m) = &masks {
            m[1].apply(&mut h1);
        }
        let mut agg2 = ws.take(n, h);
        adj.mean_aggregate_into(&h1, &mut agg2);
        let mut cat2 = ws.take(n, 2 * h);
        h1.hconcat_into(&agg2, &mut cat2);
        ws.recycle(agg2);
        let mut h2 = self.layer2.forward_ws(&cat2, false, ws);
        relu_inplace(&mut h2);
        if let Some(m) = &masks {
            m[2].apply(&mut h2);
        }
        let logits = self.head.forward_ws(&h2, false, ws);
        ForwardCache {
            x,
            h0,
            cat1,
            h1,
            cat2,
            h2,
            logits,
            masks,
        }
    }

    /// Backward pass from `grad_logits`; returns gradients for all
    /// parameters.
    ///
    /// Allocating convenience around [`SageModel::backward_ws`].
    pub fn backward(&self, adj: &Csr, cache: &ForwardCache, grad_logits: &Matrix) -> ModelGrads {
        self.backward_ws(adj, cache, grad_logits, &mut Workspace::new())
    }

    /// [`SageModel::backward`] with every temporary taken from (and
    /// every intermediate returned to) `ws`. Recycle the returned
    /// gradients with [`ModelGrads::recycle`] once applied.
    pub fn backward_ws(
        &self,
        adj: &Csr,
        cache: &ForwardCache,
        grad_logits: &Matrix,
        ws: &mut Workspace,
    ) -> ModelGrads {
        let n = grad_logits.rows();
        let h = self.config.hidden;
        let head_g = self.head.backward_ws(&cache.h2, grad_logits, ws);
        let mut g_h2 = head_g.input;
        if let Some(m) = &cache.masks {
            m[2].apply(&mut g_h2);
        }
        relu_backward_inplace(&cache.h2, &mut g_h2);
        let l2_g = self.layer2.backward_ws(&cache.cat2, &g_h2, ws);
        ws.recycle(g_h2);
        let mut g_h1 = ws.take(n, h);
        let mut g_agg2 = ws.take(n, h);
        l2_g.input.hsplit_into(&mut g_h1, &mut g_agg2);
        ws.recycle(l2_g.input);
        let mut agg_back = ws.take(n, h);
        adj.mean_aggregate_backward_into(&g_agg2, &mut agg_back, ws);
        ws.recycle(g_agg2);
        g_h1.add_assign(&agg_back);
        ws.recycle(agg_back);
        if let Some(m) = &cache.masks {
            m[1].apply(&mut g_h1);
        }
        relu_backward_inplace(&cache.h1, &mut g_h1);
        let l1_g = self.layer1.backward_ws(&cache.cat1, &g_h1, ws);
        ws.recycle(g_h1);
        let mut g_h0 = ws.take(n, h);
        let mut g_agg1 = ws.take(n, h);
        l1_g.input.hsplit_into(&mut g_h0, &mut g_agg1);
        ws.recycle(l1_g.input);
        let mut agg_back = ws.take(n, h);
        adj.mean_aggregate_backward_into(&g_agg1, &mut agg_back, ws);
        ws.recycle(g_agg1);
        g_h0.add_assign(&agg_back);
        ws.recycle(agg_back);
        if let Some(m) = &cache.masks {
            m[0].apply(&mut g_h0);
        }
        relu_backward_inplace(&cache.h0, &mut g_h0);
        // Input layer: weight/bias gradients only — the historical path
        // also computed (and discarded) the gradient w.r.t. the raw
        // features, an entire N x feature_len product per epoch. The
        // input is the sparse featurization matrix, like the forward
        // encoder product.
        let (enc_w, enc_b) = self.encoder.backward_weights_ws(&cache.x, &g_h0, true, ws);
        ws.recycle(g_h0);
        ModelGrads {
            enc_w,
            enc_b,
            l1_w: l1_g.weight,
            l1_b: l1_g.bias,
            l2_w: l2_g.weight,
            l2_b: l2_g.bias,
            head_w: head_g.weight,
            head_b: head_g.bias,
        }
    }

    /// Pre-size `ws` for a forward + backward pass of up to `rows`
    /// nodes: take (then recycle) every buffer role at its largest
    /// shape, and pre-size the GEMM packing panel for every product the
    /// model performs. After this tour, any epoch of at most `rows`
    /// nodes runs with zero workspace allocation — the training loop
    /// calls it once at construction with the full-graph row count (the
    /// upper bound of every sampled mini-batch and of full-graph
    /// evaluation).
    pub fn warm_workspace(&self, rows: usize, ws: &mut Workspace) {
        let f = self.config.feature_len;
        let h = self.config.hidden;
        let c = self.config.classes;
        // Peak concurrency per shape class, counted over forward +
        // backward. `rows x H`: h0/h1/h2 + three dropout masks held in
        // the cache, plus g_h1/g_agg/agg_back and the aggregation's
        // scaled-gradient scratch = 10 at the first backward
        // aggregation. `rows x 2H`: cat1/cat2 plus one layer input
        // gradient = 3. Pool buffers are retained for the state's
        // lifetime, so keep the margin small (the reuse tests catch an
        // undercount as a nonzero steady-state allocation).
        let mut shapes: Vec<(usize, usize)> = vec![(rows, f); 2];
        shapes.extend(std::iter::repeat_n((rows, h), 11));
        shapes.extend(std::iter::repeat_n((rows, 2 * h), 4));
        shapes.extend(std::iter::repeat_n((rows, c), 3));
        // Weight and bias gradients.
        shapes.extend_from_slice(&[(f, h), (2 * h, h), (2 * h, h), (h, c)]);
        shapes.extend_from_slice(&[(1, h), (1, h), (1, h), (1, c)]);
        let held: Vec<Matrix> = shapes.iter().map(|&(r, cc)| ws.take(r, cc)).collect();
        for m in held {
            ws.recycle(m);
        }
        // Packing panels: forward products (the sparse encoder packs
        // nothing), and the backward a·bᵀ products against each weight.
        ws.warm_pack(2 * h, h);
        ws.warm_pack(h, c);
        ws.warm_pack(h, 2 * h);
        ws.warm_pack(c, h);
        ws.warm_pack(f, h);
    }

    /// Predicted class per node (inference mode, no dropout).
    pub fn predict(&self, adj: &Csr, x: &Matrix) -> Vec<usize> {
        self.predict_ws(adj, x, &mut Workspace::new())
    }

    /// [`SageModel::predict`] with all forward temporaries pooled in
    /// `ws` (the input is staged through the pool too, so repeated
    /// evaluation on the same graph is allocation-free).
    pub fn predict_ws(&self, adj: &Csr, x: &Matrix, ws: &mut Workspace) -> Vec<usize> {
        let mut staged = ws.take(x.rows(), x.cols());
        staged.data_mut().copy_from_slice(x.data());
        let cache = self.forward_ws(adj, staged, None, ws);
        let preds = argmax_rows(&cache.logits);
        cache.recycle(ws);
        preds
    }

    /// Create an Adam optimizer matching this model's tensor shapes.
    pub fn optimizer(&self, cfg: AdamConfig) -> ModelOptimizer {
        ModelOptimizer {
            cfg,
            enc_w: AdamState::new(self.encoder.weight.data().len()),
            enc_b: AdamState::new(self.encoder.bias.len()),
            l1_w: AdamState::new(self.layer1.weight.data().len()),
            l1_b: AdamState::new(self.layer1.bias.len()),
            l2_w: AdamState::new(self.layer2.weight.data().len()),
            l2_b: AdamState::new(self.layer2.bias.len()),
            head_w: AdamState::new(self.head.weight.data().len()),
            head_b: AdamState::new(self.head.bias.len()),
        }
    }

    /// Apply one optimizer step with `grads`.
    pub fn apply(&mut self, opt: &mut ModelOptimizer, grads: &ModelGrads) {
        let cfg = opt.cfg;
        opt.enc_w
            .step(&cfg, self.encoder.weight.data_mut(), grads.enc_w.data());
        opt.enc_b.step(&cfg, &mut self.encoder.bias, &grads.enc_b);
        opt.l1_w
            .step(&cfg, self.layer1.weight.data_mut(), grads.l1_w.data());
        opt.l1_b.step(&cfg, &mut self.layer1.bias, &grads.l1_b);
        opt.l2_w
            .step(&cfg, self.layer2.weight.data_mut(), grads.l2_w.data());
        opt.l2_b.step(&cfg, &mut self.layer2.bias, &grads.l2_b);
        opt.head_w
            .step(&cfg, self.head.weight.data_mut(), grads.head_w.data());
        opt.head_b.step(&cfg, &mut self.head.bias, &grads.head_b);
    }

    /// Layer shape summary, matching the paper's Table II rows.
    pub fn shape_table(&self) -> Vec<(String, [usize; 2])> {
        vec![
            (
                "Input Layer".into(),
                [self.encoder.in_dim(), self.encoder.out_dim()],
            ),
            (
                "Hidden Layer 1".into(),
                [self.layer1.in_dim(), self.layer1.out_dim()],
            ),
            (
                "Hidden Layer 2".into(),
                [self.layer2.in_dim(), self.layer2.out_dim()],
            ),
            (
                "Output Layer".into(),
                [self.head.in_dim(), self.head.out_dim()],
            ),
        ]
    }
}

/// Row-wise argmax.
pub fn argmax_rows(m: &Matrix) -> Vec<usize> {
    (0..m.rows())
        .map(|r| {
            let row = m.row(r);
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_neural::softmax_cross_entropy;

    fn tiny_graph() -> (Csr, Matrix, Vec<usize>) {
        // Two triangles joined by an edge; labels by triangle.
        let adj = Csr::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let mut x = Matrix::zeros(6, 4);
        for v in 0..6 {
            x.set(v, v % 4, 1.0);
            x.set(v, 3, if v < 3 { 1.0 } else { -1.0 });
        }
        let labels = vec![0, 0, 0, 1, 1, 1];
        (adj, x, labels)
    }

    #[test]
    fn shapes_follow_table_ii() {
        let model = SageModel::new(ModelConfig::new(34, 512, 3));
        let t = model.shape_table();
        assert_eq!(t[0].1, [34, 512]);
        assert_eq!(t[1].1, [1024, 512]);
        assert_eq!(t[2].1, [1024, 512]);
        assert_eq!(t[3].1, [512, 3]);
    }

    #[test]
    fn forward_shapes() {
        let (adj, x, _) = tiny_graph();
        let model = SageModel::new(ModelConfig::new(4, 8, 2));
        let cache = model.forward(&adj, &x, None);
        assert_eq!(cache.logits.rows(), 6);
        assert_eq!(cache.logits.cols(), 2);
    }

    /// End-to-end gradient check through aggregation, concat, ReLU and all
    /// four linear layers.
    #[test]
    fn full_model_gradients_match_finite_differences() {
        let (adj, x, labels) = tiny_graph();
        let model = SageModel::new(ModelConfig {
            dropout: 0.0,
            ..ModelConfig::new(4, 5, 2)
        });
        let cache = model.forward(&adj, &x, None);
        let loss = softmax_cross_entropy(&cache.logits, &labels, None, None);
        let grads = model.backward(&adj, &cache, &loss.grad);
        let f = |m: &SageModel| -> f32 {
            let c = m.forward(&adj, &x, None);
            softmax_cross_entropy(&c.logits, &labels, None, None).loss
        };
        let eps = 1e-2;
        // Check a few coordinates in each tensor.
        let mut checks: Vec<(&str, f32, f32)> = Vec::new();
        {
            let mut mp = model.clone();
            let v = mp.encoder.weight.get(1, 2);
            mp.encoder.weight.set(1, 2, v + eps);
            let mut mm = model.clone();
            mm.encoder.weight.set(1, 2, v - eps);
            checks.push((
                "enc_w",
                (f(&mp) - f(&mm)) / (2.0 * eps),
                grads.enc_w.get(1, 2),
            ));
        }
        {
            let mut mp = model.clone();
            let v = mp.layer1.weight.get(7, 3);
            mp.layer1.weight.set(7, 3, v + eps);
            let mut mm = model.clone();
            mm.layer1.weight.set(7, 3, v - eps);
            checks.push((
                "l1_w",
                (f(&mp) - f(&mm)) / (2.0 * eps),
                grads.l1_w.get(7, 3),
            ));
        }
        {
            let mut mp = model.clone();
            let v = mp.layer2.weight.get(2, 4);
            mp.layer2.weight.set(2, 4, v + eps);
            let mut mm = model.clone();
            mm.layer2.weight.set(2, 4, v - eps);
            checks.push((
                "l2_w",
                (f(&mp) - f(&mm)) / (2.0 * eps),
                grads.l2_w.get(2, 4),
            ));
        }
        {
            let mut mp = model.clone();
            let v = mp.head.weight.get(3, 1);
            mp.head.weight.set(3, 1, v + eps);
            let mut mm = model.clone();
            mm.head.weight.set(3, 1, v - eps);
            checks.push((
                "head_w",
                (f(&mp) - f(&mm)) / (2.0 * eps),
                grads.head_w.get(3, 1),
            ));
        }
        {
            let mut mp = model.clone();
            mp.head.bias[0] += eps;
            let mut mm = model.clone();
            mm.head.bias[0] -= eps;
            checks.push(("head_b", (f(&mp) - f(&mm)) / (2.0 * eps), grads.head_b[0]));
        }
        for (name, numeric, analytic) in checks {
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "{name}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// Training on the toy graph must fit it perfectly.
    #[test]
    fn can_overfit_tiny_graph() {
        let (adj, x, labels) = tiny_graph();
        let mut model = SageModel::new(ModelConfig {
            dropout: 0.0,
            ..ModelConfig::new(4, 16, 2)
        });
        let mut opt = model.optimizer(AdamConfig::default());
        for _ in 0..120 {
            let cache = model.forward(&adj, &x, None);
            let loss = softmax_cross_entropy(&cache.logits, &labels, None, None);
            let grads = model.backward(&adj, &cache, &loss.grad);
            model.apply(&mut opt, &grads);
        }
        assert_eq!(model.predict(&adj, &x), labels);
    }

    #[test]
    fn dropout_changes_training_forward_only() {
        let (adj, x, _) = tiny_graph();
        let model = SageModel::new(ModelConfig {
            dropout: 0.5,
            ..ModelConfig::new(4, 16, 2)
        });
        let train1 = model.forward(&adj, &x, Some(1));
        let train2 = model.forward(&adj, &x, Some(2));
        let infer1 = model.forward(&adj, &x, None);
        let infer2 = model.forward(&adj, &x, None);
        assert_ne!(train1.logits.data(), train2.logits.data());
        assert_eq!(infer1.logits.data(), infer2.logits.data());
    }
}
