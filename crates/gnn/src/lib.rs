//! GraphSAGE + GraphSAINT node classification on netlist graphs — the
//! machine-learning core of the GNNUnlock reproduction.
//!
//! - [`netlist_to_graph`]: the paper's Section IV-B netlist-to-graph
//!   transformation with per-gate feature vectors (`|f̂|` = 13/34/18 for
//!   the Bench8/Lpe65/Nangate45 libraries);
//! - [`Csr`]: adjacency with threaded mean aggregation and its exact
//!   adjoint for backprop;
//! - [`SageModel`]: the paper's Table II architecture (input `[|f̂|,H]`,
//!   two `[2H,H]` mean-with-concat layers, `[H,#classes]` head, ReLU,
//!   dropout);
//! - [`SaintSampler`]: GraphSAINT random-walk mini-batching with
//!   inclusion-probability loss normalization;
//! - [`train`] / [`evaluate`]: Adam training with validation-based model
//!   selection.
//!
//! # Examples
//!
//! ```
//! use gnnunlock_gnn::{netlist_to_graph, LabelScheme};
//! use gnnunlock_locking::{lock_antisat, AntiSatConfig};
//! use gnnunlock_netlist::{generator::BenchmarkSpec, CellLibrary};
//!
//! let design = BenchmarkSpec::named("c2670").unwrap().scaled(0.02).generate();
//! let locked = lock_antisat(&design, &AntiSatConfig::new(8, 1)).unwrap();
//! let graph = netlist_to_graph(&locked.netlist, CellLibrary::Bench8, LabelScheme::AntiSat);
//! assert_eq!(graph.feature_len(), 13);
//! ```

#![warn(missing_docs)]

mod features;
mod graph;
mod model;
mod saint;
mod trainer;

pub use features::{merge_graphs, netlist_to_graph, CircuitGraph, LabelScheme};
pub use graph::Csr;
pub use model::{argmax_rows, ForwardCache, ModelConfig, ModelGrads, ModelOptimizer, SageModel};
pub use saint::{SaintConfig, SaintSampler, Subgraph};
pub use trainer::{
    evaluate, evaluate_ws, predict, train, TrainCheckpoint, TrainConfig, TrainReport, TrainState,
};
