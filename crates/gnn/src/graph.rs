//! CSR adjacency and mean aggregation (the GraphSAGE neighborhood
//! operator), plus block-diagonal merging of multiple circuit graphs.
//!
//! The aggregation kernels follow the same contract as the `Matrix`
//! product family: `_into` variants write caller-provided outputs (zero
//! steady-state allocation with a warm [`Workspace`]), threading
//! partitions *output rows* with deterministic ownership, and every
//! output element accumulates its neighbor rows in ascending CSR order
//! — so the parallel, fused kernels are bit-identical to the historical
//! sum-then-scale passes for any thread count.

use gnnunlock_neural::{Matrix, Workspace};

/// Undirected graph in compressed-sparse-row form.
///
/// # Examples
///
/// ```
/// use gnnunlock_gnn::Csr;
/// let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(0), &[1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    /// `1 / degree` per node (1.0 for degree ≤ 1), precomputed once at
    /// construction so the per-epoch aggregation calls don't re-derive
    /// the degree normalization on every forward/backward pass.
    inv_degree: Vec<f32>,
}

impl Csr {
    /// Build from undirected edges (each pair stored in both directions;
    /// duplicates and self-loops are dropped).
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        Csr::from_raw(offsets, targets)
    }

    fn from_raw(offsets: Vec<usize>, targets: Vec<u32>) -> Self {
        let inv_degree = (0..offsets.len() - 1)
            .map(|v| {
                let d = offsets[v + 1] - offsets[v];
                if d > 1 {
                    1.0 / d as f32
                } else {
                    1.0
                }
            })
            .collect();
        Csr {
            offsets,
            targets,
            inv_degree,
        }
    }

    /// The raw CSR arrays `(offsets, targets)`, for external
    /// serialization (the campaign persistence codec).
    pub fn parts(&self) -> (&[usize], &[u32]) {
        (&self.offsets, &self.targets)
    }

    /// Reassemble a graph from [`Csr::parts`]. `None` when the arrays are
    /// not a valid CSR (a corrupt payload decodes to a cache miss, never
    /// a panic).
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<u32>) -> Option<Csr> {
        if offsets.is_empty() || offsets[0] != 0 || *offsets.last().unwrap() != targets.len() {
            return None;
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        let n = offsets.len() - 1;
        if targets.iter().any(|&t| t as usize >= n) {
            return None;
        }
        Some(Csr::from_raw(offsets, targets))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbors of node `v` (sorted).
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let s = self.offsets[v];
        let e = self.offsets[v + 1];
        unsafe {
            // SAFETY: offsets are monotone and bounded by targets.len() by
            // construction.
            self.targets.get_unchecked(s..e)
        }
    }

    /// `y[i] = Σ_{j ∈ N(i)} x[j]` (sum aggregation), threaded over rows.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != num_nodes`.
    pub fn sum_aggregate(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.num_nodes(), x.cols());
        self.aggregate_into(x, &mut out, false);
        out
    }

    /// [`Csr::sum_aggregate`] into a caller-provided output (fully
    /// overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != num_nodes` or `out` has the wrong shape.
    pub fn sum_aggregate_into(&self, x: &Matrix, out: &mut Matrix) {
        self.aggregate_into(x, out, false);
    }

    /// Mean aggregation `y[i] = mean_{j ∈ N(i)} x[j]` (isolated nodes get a
    /// zero row). Uses the degree normalization precomputed at
    /// construction — bit-identical to dividing in place, since the
    /// stored factor is the same `1.0 / d as f32` value.
    pub fn mean_aggregate(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.num_nodes(), x.cols());
        self.aggregate_into(x, &mut out, true);
        out
    }

    /// [`Csr::mean_aggregate`] into a caller-provided output (fully
    /// overwritten). The degree normalization is fused into the same
    /// row pass — each row is scaled *after* its full neighbor sum,
    /// exactly the historical sum-then-scale op order per element, so
    /// fusing (like threading) changes wall-clock only.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != num_nodes` or `out` has the wrong shape.
    pub fn mean_aggregate_into(&self, x: &Matrix, out: &mut Matrix) {
        self.aggregate_into(x, out, true);
    }

    fn aggregate_into(&self, x: &Matrix, out: &mut Matrix, mean: bool) {
        assert_eq!(x.rows(), self.num_nodes(), "feature row mismatch");
        assert_eq!(
            (out.rows(), out.cols()),
            (self.num_nodes(), x.cols()),
            "aggregate output shape mismatch"
        );
        let cols = x.cols();
        let n_threads = if self.num_nodes() >= 2048 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        } else {
            1
        };
        let rows_per = self.num_nodes().div_ceil(n_threads.max(1)).max(1);
        let out_data = out.data_mut();
        let body = |start: usize, chunk: &mut [f32]| {
            for (local, row) in chunk.chunks_mut(cols.max(1)).enumerate() {
                let v = start + local;
                row.fill(0.0);
                for &n in self.neighbors(v) {
                    let src = x.row(n as usize);
                    for (o, &s) in row.iter_mut().zip(src) {
                        *o += s;
                    }
                }
                if mean {
                    let inv = self.inv_degree[v];
                    if inv != 1.0 {
                        for e in row.iter_mut() {
                            *e *= inv;
                        }
                    }
                }
            }
        };
        if n_threads <= 1 || cols == 0 {
            body(0, out_data);
            return;
        }
        std::thread::scope(|scope| {
            for (t, chunk) in out_data.chunks_mut(rows_per * cols).enumerate() {
                let body = &body;
                scope.spawn(move || body(t * rows_per, chunk));
            }
        });
    }

    /// Backward of [`Csr::mean_aggregate`] w.r.t. its input: for a
    /// symmetric adjacency, `(D⁻¹A)ᵀ g = A D⁻¹ g`.
    pub fn mean_aggregate_backward(&self, grad: &Matrix) -> Matrix {
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(self.num_nodes(), grad.cols());
        self.mean_aggregate_backward_into(grad, &mut out, &mut ws);
        out
    }

    /// [`Csr::mean_aggregate_backward`] into a caller-provided output,
    /// with the degree-scaled gradient staged in workspace scratch
    /// (fully overwritten; allocation-free once `ws` is warm).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn mean_aggregate_backward_into(
        &self,
        grad: &Matrix,
        out: &mut Matrix,
        ws: &mut Workspace,
    ) {
        let mut scaled = ws.take(grad.rows(), grad.cols());
        scaled.data_mut().copy_from_slice(grad.data());
        for v in 0..self.num_nodes() {
            let inv = self.inv_degree[v];
            if inv != 1.0 {
                for e in scaled.row_mut(v) {
                    *e *= inv;
                }
            }
        }
        self.aggregate_into(&scaled, out, false);
        ws.recycle(scaled);
    }

    /// Induced subgraph on `nodes` (order defines new ids). Returns the
    /// sub-CSR.
    pub fn induced(&self, nodes: &[usize]) -> Csr {
        let mut map = Vec::new();
        self.induced_with_map(nodes, &mut map)
    }

    /// [`Csr::induced`] with a caller-owned id-map scratch buffer. The
    /// buffer is maintained all-`u32::MAX` between calls, so repeated
    /// induction (one subgraph per training epoch) touches only
    /// `O(|nodes|)` of it instead of re-zeroing the full-graph map every
    /// mini-batch.
    pub fn induced_with_map(&self, nodes: &[usize], map: &mut Vec<u32>) -> Csr {
        if map.len() != self.num_nodes() {
            map.clear();
            map.resize(self.num_nodes(), u32::MAX);
        }
        for (new, &old) in nodes.iter().enumerate() {
            map[old] = new as u32;
        }
        let mut edges = Vec::new();
        for (new, &old) in nodes.iter().enumerate() {
            for &n in self.neighbors(old) {
                let m = map[n as usize];
                if m != u32::MAX && (new as u32) < m {
                    edges.push((new, m as usize));
                }
            }
        }
        // Restore the all-unmapped invariant for the next caller.
        for &old in nodes {
            map[old] = u32::MAX;
        }
        Csr::from_edges(nodes.len(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Csr {
        Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn csr_basics() {
        let g = path4();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
    }

    #[test]
    fn duplicate_and_self_edges_dropped() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (2, 2), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn mean_aggregation_values() {
        let g = path4();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = g.mean_aggregate(&x);
        assert_eq!(y.get(0, 0), 2.0); // only neighbor 1
        assert_eq!(y.get(1, 0), 2.0); // mean(1, 3)
        assert_eq!(y.get(2, 0), 3.0); // mean(2, 4)
        assert_eq!(y.get(3, 0), 3.0);
    }

    #[test]
    fn isolated_node_aggregates_to_zero() {
        let g = Csr::from_edges(3, &[(0, 1)]);
        let x = Matrix::from_rows(&[&[5.0], &[7.0], &[9.0]]);
        let y = g.mean_aggregate(&x);
        assert_eq!(y.get(2, 0), 0.0);
    }

    /// ⟨A x, g⟩ = ⟨x, Aᵀ g⟩ — the backward operator must be the true
    /// adjoint of the forward one.
    #[test]
    fn mean_backward_is_adjoint() {
        let g = Csr::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (1, 4)]);
        let x = Matrix::xavier(5, 3, 1);
        let grad = Matrix::xavier(5, 3, 2);
        let forward = g.mean_aggregate(&x);
        let backward = g.mean_aggregate_backward(&grad);
        let dot = |a: &Matrix, b: &Matrix| -> f32 {
            a.data().iter().zip(b.data()).map(|(x, y)| x * y).sum()
        };
        assert!(
            (dot(&forward, &grad) - dot(&x, &backward)).abs() < 1e-4,
            "adjoint identity violated"
        );
    }

    /// The degree normalization precomputed at construction must be
    /// bit-identical to dividing per call (the pre-hoist formula):
    /// `1.0 / d as f32` stored once and multiplied is the same float op.
    #[test]
    fn hoisted_degree_normalization_matches_per_call_division() {
        let g = Csr::from_edges(
            64,
            &(0..200)
                .map(|i| ((i * 7) % 64, (i * 13 + 5) % 64))
                .collect::<Vec<_>>(),
        );
        let x = Matrix::xavier(64, 5, 9);
        let hoisted = g.mean_aggregate(&x);
        let mut reference = g.sum_aggregate(&x);
        for v in 0..g.num_nodes() {
            let d = g.degree(v);
            if d > 1 {
                let inv = 1.0 / d as f32;
                for e in reference.row_mut(v) {
                    *e *= inv;
                }
            }
        }
        assert_eq!(hoisted.data(), reference.data());
    }

    #[test]
    fn csr_parts_round_trip_and_reject_corruption() {
        let g = path4();
        let (offsets, targets) = g.parts();
        let back = Csr::from_parts(offsets.to_vec(), targets.to_vec()).unwrap();
        assert_eq!(back, g);
        // Non-monotone offsets, dangling targets, bad tail: all rejected.
        assert!(Csr::from_parts(vec![0, 2, 1], vec![1, 0]).is_none());
        assert!(Csr::from_parts(vec![0, 1], vec![9]).is_none());
        assert!(Csr::from_parts(vec![0, 1], vec![0, 0]).is_none());
        assert!(Csr::from_parts(vec![], vec![]).is_none());
    }

    #[test]
    fn induced_with_map_reuses_scratch() {
        let g = path4();
        let mut map = Vec::new();
        let a = g.induced_with_map(&[1, 2, 3], &mut map);
        assert_eq!(a, g.induced(&[1, 2, 3]));
        // The invariant is restored, so the buffer is reusable as-is.
        assert!(map.iter().all(|&m| m == u32::MAX));
        let b = g.induced_with_map(&[0, 1], &mut map);
        assert_eq!(b, g.induced(&[0, 1]));
    }

    #[test]
    fn induced_subgraph() {
        let g = path4();
        let sub = g.induced(&[1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.neighbors(0), &[1]); // old 1 — old 2
    }

    #[test]
    fn large_aggregation_threads_match_serial() {
        // > 2048 nodes exercises the threaded path.
        let n = 3000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Csr::from_edges(n, &edges);
        let x = Matrix::xavier(n, 4, 3);
        let y = g.sum_aggregate(&x);
        for v in [0usize, 1500, 2999] {
            for c in 0..4 {
                let expected: f32 = g.neighbors(v).iter().map(|&u| x.get(u as usize, c)).sum();
                assert!((y.get(v, c) - expected).abs() < 1e-5);
            }
        }
    }
}
