//! Netlist-to-graph transformation and feature extraction (paper Section
//! IV-B).
//!
//! Nodes are gates; edges are wires between gates (PIs, KIs and POs are
//! *not* nodes). Each node's feature vector `f̂` contains:
//!
//! - one histogram bin per library gate class counting the gates within
//!   two hops (the node itself included),
//! - `IN` (fan-in count) and `OUT` (fan-out count),
//! - 0/1 flags: connected to a PI, connected to a PO, connected to a KI.
//!
//! `|f̂|` therefore equals `library.num_classes() + 5`: 13 for `Bench8`,
//! 34 for `Lpe65`, 18 for `Nangate45` — the paper's Table III values.

use crate::graph::Csr;
use gnnunlock_netlist::{CellLibrary, GateId, InputKind, Netlist, NodeRole};
use gnnunlock_neural::Matrix;

/// Which label set a graph uses (paper Table II: 2 classes for Anti-SAT,
/// 3 for TTLock / SFLL-HD).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelScheme {
    /// `0 = design`, `1 = Anti-SAT block`.
    AntiSat,
    /// `0 = design`, `1 = perturb`, `2 = restore`.
    Sfll,
}

impl LabelScheme {
    /// Number of classes.
    pub fn num_classes(self) -> usize {
        match self {
            LabelScheme::AntiSat => 2,
            LabelScheme::Sfll => 3,
        }
    }

    /// Class index of a role.
    pub fn label_of(self, role: NodeRole) -> usize {
        match (self, role) {
            (LabelScheme::AntiSat, NodeRole::AntiSat) => 1,
            (LabelScheme::AntiSat, _) => 0,
            (LabelScheme::Sfll, NodeRole::Perturb) => 1,
            (LabelScheme::Sfll, NodeRole::Restore) => 2,
            (LabelScheme::Sfll, _) => 0,
        }
    }

    /// Human-readable tag of a class (`DN`/`AN`/`PN`/`RN`).
    pub fn class_tag(self, class: usize) -> &'static str {
        match (self, class) {
            (LabelScheme::AntiSat, 0) | (LabelScheme::Sfll, 0) => "DN",
            (LabelScheme::AntiSat, 1) => "AN",
            (LabelScheme::Sfll, 1) => "PN",
            (LabelScheme::Sfll, 2) => "RN",
            _ => "??",
        }
    }
}

/// A circuit converted to a labelled feature graph.
#[derive(Debug, Clone)]
pub struct CircuitGraph {
    /// Node features, `N x |f̂|`.
    pub features: Matrix,
    /// Ground-truth class per node.
    pub labels: Vec<usize>,
    /// Undirected gate adjacency.
    pub adj: Csr,
    /// Gate behind each node (meaningless after [`merge_graphs`]).
    pub gate_ids: Vec<GateId>,
    /// Library defining the feature layout.
    pub library: CellLibrary,
    /// Labelling scheme.
    pub scheme: LabelScheme,
    /// Name of the source circuit (joined names after merging).
    pub name: String,
}

impl CircuitGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Feature vector length `|f̂|`.
    pub fn feature_len(&self) -> usize {
        self.features.cols()
    }
}

/// Transform a netlist into a [`CircuitGraph`].
///
/// # Panics
///
/// Panics if a gate is not a legal cell of `library` (synthesize first) or
/// the netlist is cyclic.
pub fn netlist_to_graph(nl: &Netlist, library: CellLibrary, scheme: LabelScheme) -> CircuitGraph {
    let gate_ids: Vec<GateId> = nl.gate_ids().collect();
    let mut node_of = vec![usize::MAX; nl.gate_capacity()];
    for (idx, &g) in gate_ids.iter().enumerate() {
        node_of[g.index()] = idx;
    }
    let n = gate_ids.len();
    let edges: Vec<(usize, usize)> = nl
        .gate_edges()
        .into_iter()
        .map(|(a, b)| (node_of[a.index()], node_of[b.index()]))
        .collect();
    let adj = Csr::from_edges(n, &edges);
    let fanout = nl.fanout_map();

    let classes = library.num_classes();
    let flen = library.feature_len();
    let mut features = Matrix::zeros(n, flen);
    // Per-node gate class (for histogram accumulation).
    let class_of: Vec<usize> = gate_ids
        .iter()
        .map(|&g| {
            library
                .feature_class(nl.gate_type(g), nl.gate_inputs(g).len())
                .unwrap_or_else(|| {
                    panic!(
                        "gate {}{} not in library {library}",
                        nl.gate_type(g),
                        nl.gate_inputs(g).len()
                    )
                })
        })
        .collect();

    // Generation-stamped visited set for deduplicating 2-hop neighborhoods
    // without per-node allocation.
    let mut stamp = vec![u32::MAX; n];
    for (idx, &g) in gate_ids.iter().enumerate() {
        let row = features.row_mut(idx);
        // 2-hop gate-type histogram (self + 1-hop + 2-hop, deduplicated).
        stamp[idx] = idx as u32;
        row[class_of[idx]] += 1.0;
        for &n1 in adj.neighbors(idx) {
            if stamp[n1 as usize] != idx as u32 {
                stamp[n1 as usize] = idx as u32;
                row[class_of[n1 as usize]] += 1.0;
            }
            for &n2 in adj.neighbors(n1 as usize) {
                if stamp[n2 as usize] != idx as u32 {
                    stamp[n2 as usize] = idx as u32;
                    row[class_of[n2 as usize]] += 1.0;
                }
            }
        }
        // IN, OUT.
        row[classes] = nl.gate_inputs(g).len() as f32;
        row[classes + 1] = fanout.fanout_count(nl.gate_output(g)) as f32;
        // PI / PO / KI adjacency flags.
        let mut pi = false;
        let mut ki = false;
        for &inp in nl.gate_inputs(g) {
            match nl.input_kind(inp) {
                Some(InputKind::Primary) => pi = true,
                Some(InputKind::Key) => ki = true,
                None => {}
            }
        }
        let po = fanout.feeds_output(nl.gate_output(g));
        row[classes + 2] = f32::from(u8::from(pi));
        row[classes + 3] = f32::from(u8::from(po));
        row[classes + 4] = f32::from(u8::from(ki));
    }

    let labels = gate_ids
        .iter()
        .map(|&g| scheme.label_of(nl.role(g)))
        .collect();
    CircuitGraph {
        features,
        labels,
        adj,
        gate_ids,
        library,
        scheme,
        name: nl.name().to_string(),
    }
}

/// Merge graphs into one block-diagonal graph (paper Section IV-B: "a
/// block-diagonal matrix is created for each dataset").
///
/// # Panics
///
/// Panics if libraries or schemes differ, or `graphs` is empty.
pub fn merge_graphs(graphs: &[CircuitGraph]) -> CircuitGraph {
    assert!(!graphs.is_empty(), "cannot merge zero graphs");
    let library = graphs[0].library;
    let scheme = graphs[0].scheme;
    let flen = graphs[0].feature_len();
    let total: usize = graphs.iter().map(|g| g.num_nodes()).sum();
    let mut features = Matrix::zeros(total, flen);
    let mut labels = Vec::with_capacity(total);
    let mut edges = Vec::new();
    let mut gate_ids = Vec::with_capacity(total);
    let mut offset = 0usize;
    let mut names = Vec::new();
    for g in graphs {
        assert_eq!(g.library, library, "library mismatch in merge");
        assert_eq!(g.scheme, scheme, "scheme mismatch in merge");
        for r in 0..g.num_nodes() {
            features
                .row_mut(offset + r)
                .copy_from_slice(g.features.row(r));
        }
        labels.extend_from_slice(&g.labels);
        gate_ids.extend_from_slice(&g.gate_ids);
        for v in 0..g.num_nodes() {
            for &u in g.adj.neighbors(v) {
                if v < u as usize {
                    edges.push((offset + v, offset + u as usize));
                }
            }
        }
        names.push(g.name.clone());
        offset += g.num_nodes();
    }
    CircuitGraph {
        features,
        labels,
        adj: Csr::from_edges(total, &edges),
        gate_ids,
        library,
        scheme,
        name: names.join("+"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_netlist::GateType;

    /// The paper's Fig. 3b-like toy: XOR tree behind a PO with a KI layer.
    fn toy() -> Netlist {
        let mut nl = Netlist::new("toy");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let k0 = nl.add_key_input("keyinput0");
        let k1 = nl.add_key_input("keyinput1");
        let x0 = nl.add_gate(GateType::Xor, &[a, k0]);
        let x1 = nl.add_gate(GateType::Xnor, &[b, k1]);
        let top = nl.add_gate_with_role(
            GateType::Xor,
            &[nl.gate_output(x0), nl.gate_output(x1)],
            NodeRole::Restore,
        );
        nl.add_output("y", nl.gate_output(top));
        nl
    }

    #[test]
    fn feature_lengths_match_library() {
        let nl = toy();
        let g = netlist_to_graph(&nl, CellLibrary::Bench8, LabelScheme::Sfll);
        assert_eq!(g.feature_len(), 13);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn feature_contents_of_root_node() {
        let nl = toy();
        let g = netlist_to_graph(&nl, CellLibrary::Bench8, LabelScheme::Sfll);
        // Find the root XOR (feeds the PO).
        let root = (0..3)
            .find(|&i| {
                let classes = CellLibrary::Bench8.num_classes();
                g.features.get(i, classes + 3) == 1.0 // PO flag
            })
            .expect("root found");
        let classes = CellLibrary::Bench8.num_classes();
        let xor_class = CellLibrary::Bench8.feature_class(GateType::Xor, 2).unwrap();
        let xnor_class = CellLibrary::Bench8
            .feature_class(GateType::Xnor, 2)
            .unwrap();
        // Neighborhood = {root, x0, x1}: 2 XORs + 1 XNOR.
        assert_eq!(g.features.get(root, xor_class), 2.0);
        assert_eq!(g.features.get(root, xnor_class), 1.0);
        // IN = 2, OUT = 1 (feeds PO only).
        assert_eq!(g.features.get(root, classes), 2.0);
        assert_eq!(g.features.get(root, classes + 1), 1.0);
        // Root reads gate outputs, not PIs/KIs.
        assert_eq!(g.features.get(root, classes + 2), 0.0);
        assert_eq!(g.features.get(root, classes + 4), 0.0);
        // Label: Restore -> class 2.
        assert_eq!(g.labels[root], 2);
    }

    #[test]
    fn leaf_nodes_have_ki_flags() {
        let nl = toy();
        let g = netlist_to_graph(&nl, CellLibrary::Bench8, LabelScheme::Sfll);
        let classes = CellLibrary::Bench8.num_classes();
        let ki_nodes = (0..3)
            .filter(|&i| g.features.get(i, classes + 4) == 1.0)
            .count();
        assert_eq!(ki_nodes, 2);
    }

    #[test]
    fn merge_is_block_diagonal() {
        let nl = toy();
        let g1 = netlist_to_graph(&nl, CellLibrary::Bench8, LabelScheme::Sfll);
        let g2 = g1.clone();
        let merged = merge_graphs(&[g1.clone(), g2]);
        assert_eq!(merged.num_nodes(), 6);
        assert_eq!(merged.adj.num_edges(), 2 * g1.adj.num_edges());
        // No cross-block edges.
        for v in 0..3 {
            for &u in merged.adj.neighbors(v) {
                assert!((u as usize) < 3);
            }
        }
    }

    #[test]
    fn label_scheme_mapping() {
        assert_eq!(LabelScheme::AntiSat.label_of(NodeRole::AntiSat), 1);
        assert_eq!(LabelScheme::AntiSat.label_of(NodeRole::Design), 0);
        assert_eq!(LabelScheme::Sfll.label_of(NodeRole::Perturb), 1);
        assert_eq!(LabelScheme::Sfll.label_of(NodeRole::Restore), 2);
        assert_eq!(LabelScheme::Sfll.class_tag(2), "RN");
        assert_eq!(LabelScheme::AntiSat.class_tag(1), "AN");
    }
}
