//! Backend-agnostic smoke: the same store round trip and sharded toy
//! campaign, run against whichever backend `GNNUNLOCK_STORE_BACKEND`
//! selects. CI executes this binary twice — `local` and `memory` — so
//! every release exercises the [`gnnunlock_engine::StoreBackend`]
//! contract through both implementations, not just the filesystem one.
//!
//! Everything here goes through env-driven construction
//! ([`DiskStore::open`], default [`ShardConfig`]) precisely so the
//! matrix variable is the environment, not the test code.

use gnnunlock_engine::{
    execution_counts, shard_replays, Campaign, CampaignRunner, DiskStore, ExecConfig, JobCtx,
    JobKind, JobOutput, JobValue, ReportOptions, ShardConfig, StageJob, ValueCodec,
};
use std::path::PathBuf;
use std::sync::Arc;

struct Echo;

struct EchoCodec;

impl ValueCodec for EchoCodec {
    fn encode(&self, _kind: JobKind, value: &JobValue) -> Option<Vec<u8>> {
        value
            .downcast_ref::<String>()
            .map(|s| s.as_bytes().to_vec())
    }

    fn decode(&self, _kind: JobKind, bytes: &[u8]) -> Option<JobValue> {
        Some(Arc::new(String::from_utf8(bytes.to_vec()).ok()?) as JobValue)
    }
}

impl CampaignRunner for Echo {
    fn config_salt(&self) -> u64 {
        7
    }

    fn codec(&self) -> Option<Arc<dyn ValueCodec>> {
        Some(Arc::new(EchoCodec))
    }

    fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
        let inputs: Vec<String> = (0..ctx.deps.len())
            .map(|i| ctx.dep::<String>(i).as_ref().clone())
            .collect();
        Ok(Arc::new(format!("{}<-[{}]", job.label(), inputs.join(";"))) as JobValue)
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gnnunlock-backend-matrix-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disk_store_round_trips_on_the_selected_backend() {
    let dir = tmp_dir("store");
    let store = DiskStore::open(&dir).unwrap();
    assert!(!store.contains(JobKind::Train, 0xfeed));
    store
        .save(JobKind::Train, 0xfeed, b"round trip payload")
        .unwrap();
    assert!(store.contains(JobKind::Train, 0xfeed));
    assert_eq!(
        store.load(JobKind::Train, 0xfeed).as_deref(),
        Some(&b"round trip payload"[..]),
        "backend {}",
        store.backend().name()
    );
    assert!(store.usage_bytes() > 0);
    // A second handle on the same root shares the entries — the
    // cross-process story every backend must support.
    let peer = DiskStore::open(&dir).unwrap();
    assert!(peer.contains(JobKind::Train, 0xfeed));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_toy_campaign_completes_on_the_selected_backend() {
    let dir = tmp_dir("sharded");
    let campaign = Campaign::builder("backend-matrix")
        .scheme("antisat")
        .benchmarks(["c1", "c2"])
        .key_sizes([8])
        .build();

    let cold = campaign
        .execute_sharded(
            &Echo,
            ExecConfig::with_workers(2),
            &dir,
            &ShardConfig::new("s0"),
        )
        .unwrap();
    assert!(cold.run.outcome.all_succeeded());
    let report = cold.run.report(ReportOptions::default()).to_json();

    let warm = campaign
        .execute_sharded(
            &Echo,
            ExecConfig::with_workers(2),
            &dir,
            &ShardConfig::new("s1"),
        )
        .unwrap();
    assert!(warm.run.outcome.all_succeeded());
    assert_eq!(
        warm.run.report(ReportOptions::default()).to_json(),
        report,
        "cold and warm shards must agree byte-for-byte on every backend"
    );

    let counts = execution_counts(&shard_replays(&dir).unwrap());
    assert_eq!(counts.len(), campaign.plan().len());
    assert!(counts.values().all(|&n| n == 1), "{counts:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
