//! The backend-conformance suite: every [`StoreBackend`] implementation
//! must discharge the same protocol obligations — atomic last-writer-
//! wins publish, exactly-one-winner claim, rename/swap-arbitrated
//! takeover, and usage accounting that never bills in-flight protocol
//! blobs. The `conformance_*` tests below run each obligation against
//! all three implementations (`local` directories, the in-memory
//! `FaultBackend`, the conditional-put `ObjectStoreBackend`) in one
//! process, so a contract regression names the offending backend.
//!
//! The two env-driven smokes at the bottom additionally run the *same
//! binary* under each `GNNUNLOCK_STORE_BACKEND` value in CI's backends
//! matrix, exercising env-selected construction ([`DiskStore::open`],
//! default [`ShardConfig`]) where the matrix variable is the
//! environment, not the test code.

use gnnunlock_engine::{
    execution_counts, shard_replays, tenant_usage_with, Campaign, CampaignRunner, DiskStore,
    ExecConfig, FaultBackend, JobCtx, JobKind, JobOutput, JobValue, LocalDirBackend,
    ObjectStoreBackend, ReportOptions, ShardConfig, StageJob, StoreBackend, ValueCodec,
};
use std::path::PathBuf;
use std::sync::Arc;

struct Echo;

struct EchoCodec;

impl ValueCodec for EchoCodec {
    fn encode(&self, _kind: JobKind, value: &JobValue) -> Option<Vec<u8>> {
        value
            .downcast_ref::<String>()
            .map(|s| s.as_bytes().to_vec())
    }

    fn decode(&self, _kind: JobKind, bytes: &[u8]) -> Option<JobValue> {
        Some(Arc::new(String::from_utf8(bytes.to_vec()).ok()?) as JobValue)
    }
}

impl CampaignRunner for Echo {
    fn config_salt(&self) -> u64 {
        7
    }

    fn codec(&self) -> Option<Arc<dyn ValueCodec>> {
        Some(Arc::new(EchoCodec))
    }

    fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
        let inputs: Vec<String> = (0..ctx.deps.len())
            .map(|i| ctx.dep::<String>(i).as_ref().clone())
            .collect();
        Ok(Arc::new(format!("{}<-[{}]", job.label(), inputs.join(";"))) as JobValue)
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gnnunlock-backend-matrix-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The three implementations under conformance, each with a root unique
/// to `tag`: `local` needs a real temp directory; the virtual backends
/// use absolute virtual paths.
fn conformance_backends(tag: &str) -> Vec<(&'static str, Arc<dyn StoreBackend>, PathBuf)> {
    let local_root = tmp_dir(&format!("conf-{tag}-local"));
    std::fs::create_dir_all(&local_root).unwrap();
    vec![
        ("local", Arc::new(LocalDirBackend::new()), local_root),
        (
            "memory",
            Arc::new(FaultBackend::new()),
            PathBuf::from(format!("/virtual/conformance/{tag}")),
        ),
        (
            "object",
            Arc::new(ObjectStoreBackend::new()),
            PathBuf::from(format!("/bucket/conformance/{tag}")),
        ),
    ]
}

fn conformance_cleanup(name: &str, root: &PathBuf) {
    if name == "local" {
        let _ = std::fs::remove_dir_all(root);
    }
}

/// Publish is an atomic last-writer-wins swap on every backend: a later
/// publish replaces an earlier one, and racing publishers never leave
/// interleaved bytes under the final name.
#[test]
fn conformance_publish_is_atomic_and_last_writer_wins() {
    for (name, backend, root) in conformance_backends("publish") {
        let path = root.join("objects/train/aa/entry.bin");
        backend.ensure_dir(path.parent().unwrap()).unwrap();
        backend.publish(&path, b"first").unwrap();
        backend.publish(&path, b"second").unwrap();
        assert_eq!(backend.load(&path).unwrap(), b"second", "{name}: LWW");

        let payloads: Vec<Vec<u8>> = (0..8)
            .map(|i| format!("payload-{i:02}").into_bytes())
            .collect();
        std::thread::scope(|s| {
            for payload in &payloads {
                let backend = &backend;
                let path = &path;
                s.spawn(move || backend.publish(path, payload).unwrap());
            }
        });
        let got = backend.load(&path).unwrap();
        assert!(
            payloads.contains(&got),
            "{name}: racing publishes tore the entry: {got:?}"
        );
        conformance_cleanup(name, &root);
    }
}

/// Claim is exactly-one-winner on every backend: of N concurrent
/// claimants on one path, one succeeds and the rest fail
/// `AlreadyExists`, and the surviving content is the winner's in full.
#[test]
fn conformance_claim_has_exactly_one_winner() {
    for (name, backend, root) in conformance_backends("claim") {
        let path = root.join("objects/train/aa/job.lease");
        backend.ensure_dir(path.parent().unwrap()).unwrap();
        let contents: Vec<Vec<u8>> = (0..6)
            .map(|i| format!("gnnunlock-lease owner=w{i} pid={i} gen=0\n").into_bytes())
            .collect();
        let outcomes: Vec<Result<(), std::io::ErrorKind>> = std::thread::scope(|s| {
            let handles: Vec<_> = contents
                .iter()
                .map(|content| {
                    let backend = &backend;
                    let path = &path;
                    s.spawn(move || backend.claim(path, content).map_err(|e| e.kind()))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let winners = outcomes.iter().filter(|o| o.is_ok()).count();
        assert_eq!(
            winners, 1,
            "{name}: exactly one claim must win: {outcomes:?}"
        );
        assert!(
            outcomes
                .iter()
                .all(|o| o.is_ok() || *o == Err(std::io::ErrorKind::AlreadyExists)),
            "{name}: losers must fail AlreadyExists: {outcomes:?}"
        );
        let winner = outcomes.iter().position(|o| o.is_ok()).unwrap();
        assert_eq!(
            backend.load(&path).unwrap(),
            contents[winner],
            "{name}: the winner's content must survive intact"
        );
        conformance_cleanup(name, &root);
    }
}

/// Takeover arbitration: of N concurrent challengers entombing one
/// stale lease to distinct tomb names, exactly one wins (rename on
/// filesystems, the ETag-conditional swap on blobs), losers fail
/// `NotFound` and leave no tomb debris, and the winner's tomb carries
/// the buried bytes.
#[test]
fn conformance_takeover_entomb_arbitrates_one_winner() {
    for (name, backend, root) in conformance_backends("entomb") {
        let lease = root.join("objects/train/aa/job.lease");
        backend.ensure_dir(lease.parent().unwrap()).unwrap();
        let buried = b"gnnunlock-lease owner=dead pid=1 gen=3\n";
        backend.publish(&lease, buried).unwrap();
        let outcomes: Vec<Result<(), std::io::ErrorKind>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    let backend = &backend;
                    let lease = &lease;
                    let tomb = lease.with_file_name(format!("job.lease.tomb-{i}"));
                    s.spawn(move || backend.entomb(lease, &tomb).map_err(|e| e.kind()))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let winners = outcomes.iter().filter(|o| o.is_ok()).count();
        assert_eq!(
            winners, 1,
            "{name}: exactly one entomb must win: {outcomes:?}"
        );
        assert!(
            outcomes
                .iter()
                .all(|o| o.is_ok() || *o == Err(std::io::ErrorKind::NotFound)),
            "{name}: losers must see the source as gone: {outcomes:?}"
        );
        assert!(!backend.contains(&lease), "{name}: the lease itself moved");
        let tombs: Vec<_> = backend
            .list(lease.parent().unwrap(), false)
            .unwrap()
            .into_iter()
            .filter(|m| m.path.to_string_lossy().contains(".tomb-"))
            .collect();
        assert_eq!(tombs.len(), 1, "{name}: losers must leave no tomb debris");
        assert_eq!(
            backend.load(&tombs[0].path).unwrap(),
            buried,
            "{name}: the tomb must carry the buried lease"
        );
        conformance_cleanup(name, &root);
    }
}

/// Usage accounting bills `.bin` entries only: leases, staged temps and
/// tombs — in-flight protocol blobs — never count, on any backend, via
/// either the store's own gauge or the tenant-usage rollup.
#[test]
fn conformance_usage_accounting_excludes_in_flight_protocol_blobs() {
    for (name, backend, root) in conformance_backends("usage") {
        let store = DiskStore::open_with_backend(&root, "", backend.clone()).unwrap();
        store.save(JobKind::Train, 0xabc, b"entry payload").unwrap();
        let billed = store.usage_bytes();
        assert!(billed > 0, "{name}: the entry itself is billed");
        let objects = store.objects_root().join("train");
        for blob in ["job.lease", ".tmp-99-0", "job.lease.tomb-99-0"] {
            backend
                .publish(&objects.join(blob), b"protocol bytes")
                .unwrap();
        }
        assert_eq!(
            store.usage_bytes(),
            billed,
            "{name}: protocol blobs must never be billed"
        );
        let usage = tenant_usage_with(backend.as_ref(), &root).unwrap();
        assert_eq!(
            usage.get("").copied(),
            Some(billed),
            "{name}: tenant rollup must agree: {usage:?}"
        );
        conformance_cleanup(name, &root);
    }
}

#[test]
fn disk_store_round_trips_on_the_selected_backend() {
    let dir = tmp_dir("store");
    let store = DiskStore::open(&dir).unwrap();
    assert!(!store.contains(JobKind::Train, 0xfeed));
    store
        .save(JobKind::Train, 0xfeed, b"round trip payload")
        .unwrap();
    assert!(store.contains(JobKind::Train, 0xfeed));
    assert_eq!(
        store.load(JobKind::Train, 0xfeed).as_deref(),
        Some(&b"round trip payload"[..]),
        "backend {}",
        store.backend().name()
    );
    assert!(store.usage_bytes() > 0);
    // A second handle on the same root shares the entries — the
    // cross-process story every backend must support.
    let peer = DiskStore::open(&dir).unwrap();
    assert!(peer.contains(JobKind::Train, 0xfeed));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_toy_campaign_completes_on_the_selected_backend() {
    let dir = tmp_dir("sharded");
    let campaign = Campaign::builder("backend-matrix")
        .scheme("antisat")
        .benchmarks(["c1", "c2"])
        .key_sizes([8])
        .build();

    let cold = campaign
        .execute_sharded(
            &Echo,
            ExecConfig::with_workers(2),
            &dir,
            &ShardConfig::new("s0"),
        )
        .unwrap();
    assert!(cold.run.outcome.all_succeeded());
    let report = cold.run.report(ReportOptions::default()).to_json();

    let warm = campaign
        .execute_sharded(
            &Echo,
            ExecConfig::with_workers(2),
            &dir,
            &ShardConfig::new("s1"),
        )
        .unwrap();
    assert!(warm.run.outcome.all_succeeded());
    assert_eq!(
        warm.run.report(ReportOptions::default()).to_json(),
        report,
        "cold and warm shards must agree byte-for-byte on every backend"
    );

    let counts = execution_counts(&shard_replays(&dir).unwrap());
    assert_eq!(counts.len(), campaign.plan().len());
    assert!(counts.values().all(|&n| n == 1), "{counts:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
