//! Property tests for the persistence layer: cache-key stability,
//! event-log round trips, store path sanitization, and shard-log
//! merging.

use gnnunlock_engine::{
    fingerprint, fingerprint_fields, merge_shard_events, sanitize_tag, shard_events_file,
    DiskStore, Event, EventLog, JobKind, StageJob,
};
use proptest::prelude::*;
use std::path::Path;

/// Build a printable-ish string from raw bytes (lossy UTF-8), so the
/// generators exercise separators, dots, slashes and control bytes.
fn bytes_to_string(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

fn stage_job(kind_pick: usize, scheme: u64, bench: u64, k: usize, s: u64) -> StageJob {
    let kinds = [
        JobKind::Lock,
        JobKind::Synth,
        JobKind::Featurize,
        JobKind::Dataset,
        JobKind::TrainEpoch,
        JobKind::Train,
        JobKind::Classify,
        JobKind::Remove,
        JobKind::Verify,
        JobKind::Aggregate,
    ];
    StageJob {
        kind: kinds[kind_pick % kinds.len()],
        scheme: format!("scheme{scheme}"),
        benchmark: bench.is_multiple_of(2).then(|| format!("b{bench}")),
        key_bits: (!k.is_multiple_of(3)).then_some(k),
        seed: s.is_multiple_of(2).then_some(s),
        epoch: s.is_multiple_of(3).then_some((s / 3) as usize),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache keys are pure functions of the job spec: recomputing the
    /// fingerprint — as a separate process would — yields the same key,
    /// and any change to a field or the salt changes it.
    #[test]
    fn cache_keys_are_stable_and_sensitive(
        kind_pick in 0usize..10,
        scheme in any::<u64>(),
        bench in any::<u64>(),
        k in 1usize..512,
        s in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let job = stage_job(kind_pick, scheme, bench, k, s);
        let again = stage_job(kind_pick, scheme, bench, k, s);
        prop_assert_eq!(job.fingerprint(salt), again.fingerprint(salt));
        prop_assert_eq!(job.label(), again.label());
        // Salt sensitivity.
        prop_assert_ne!(job.fingerprint(salt), job.fingerprint(salt.wrapping_add(1)));
        // Field sensitivity: a different scheme is a different key.
        let mut other = job.clone();
        other.scheme.push('x');
        prop_assert_ne!(other.fingerprint(salt), job.fingerprint(salt));
    }

    /// Field-joined fingerprints never depend on how strings are
    /// concatenated: moving a boundary changes the hash.
    #[test]
    fn fingerprint_fields_separate_boundaries(
        a in prop::collection::vec(97u8..123, 1..8),
        b in prop::collection::vec(97u8..123, 1..8),
    ) {
        let a = bytes_to_string(&a);
        let b = bytes_to_string(&b);
        let joined = format!("{a}{b}");
        prop_assert_ne!(
            fingerprint_fields(&[&a, &b]),
            fingerprint_fields(&[joined.as_str()])
        );
    }

    /// Event records survive serialize → parse for arbitrary contents,
    /// including labels with quotes, newlines and control characters.
    /// (Ids are JSON numbers — exact below 2^53, far above any graph's
    /// job count; the generator covers the full realistic domain.)
    #[test]
    fn event_log_round_trips(
        variant in 0usize..6,
        id in 0usize..(1 << 53),
        label_bytes in prop::collection::vec(0u8..255, 0..24),
        text_bytes in prop::collection::vec(0u8..255, 0..24),
        n in any::<u64>(),
        flag in any::<bool>(),
        ms_millis in 0u64..10_000_000,
    ) {
        let label = bytes_to_string(&label_bytes);
        let text = bytes_to_string(&text_bytes);
        let n_us = (n % 1_000_000) as usize;
        let event = match variant {
            0 => Event::RunStarted { campaign: text, jobs: n_us, shape: n, resumed: flag },
            1 => Event::JobStarted { id, label },
            2 => Event::CacheHit { id, label, source: text },
            3 => Event::JobFinished {
                id,
                label,
                status: text,
                ms: ms_millis as f64 / 1000.0,
            },
            4 => Event::StageError { id, label, error: text },
            _ => Event::RunFinished {
                succeeded: n_us,
                failed: id % 1000,
                skipped: (n_us / 7) % 1000,
                cancelled: flag as usize,
            },
        };
        let line = event.to_jsonl();
        prop_assert!(!line.contains('\n'), "JSONL must be one line: {line:?}");
        prop_assert_eq!(Event::parse(&line).unwrap(), event);
    }

    /// Merging per-shard event logs is deterministic and loss-free
    /// regardless of how the shards' appends were interleaved in time:
    /// the merged stream is a pure function of the per-shard contents —
    /// every appended record appears exactly once, in its shard's
    /// order, with shards in sorted-id order — and merging twice is
    /// byte-identical.
    #[test]
    fn merge_shard_events_is_deterministic_and_loss_free(
        shard_count in 1usize..4,
        counts in prop::collection::vec(1usize..6, 3..4),
        schedule in prop::collection::vec(0usize..3, 0..32),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "gnnunlock-proptest-merge-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Per-shard streams with provenance-tagged labels.
        let queues: Vec<Vec<Event>> = (0..shard_count)
            .map(|i| {
                (0..counts[i])
                    .map(|j| Event::JobStarted { id: j, label: format!("s{i}-e{j}") })
                    .collect()
            })
            .collect();
        let logs: Vec<EventLog> = (0..shard_count)
            .map(|i| EventLog::open_append(&dir.join(shard_events_file(&format!("w{i}")))).unwrap())
            .collect();

        // Interleave the appends per the generated schedule, then drain
        // stragglers in reverse shard order (adversarial vs the sorted
        // merge).
        let mut cursor = vec![0usize; shard_count];
        for &pick in &schedule {
            let i = pick % shard_count;
            if cursor[i] < queues[i].len() {
                logs[i].append(&queues[i][cursor[i]]);
                cursor[i] += 1;
            }
        }
        for i in (0..shard_count).rev() {
            while cursor[i] < queues[i].len() {
                logs[i].append(&queues[i][cursor[i]]);
                cursor[i] += 1;
            }
        }
        drop(logs);

        // The expected merge depends only on per-shard contents, never
        // on the schedule (ids "w0".."w2" sort lexicographically).
        let mut expected = String::new();
        for queue in &queues {
            for ev in queue {
                expected.push_str(&ev.to_jsonl());
                expected.push('\n');
            }
        }

        let path = merge_shard_events(&dir).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        prop_assert_eq!(&first, &expected, "merge must be loss-free and ordered");
        // Deterministic: a re-merge (with the merged file already
        // present — it must not feed back into itself) is byte-identical.
        let again = merge_shard_events(&dir).unwrap();
        let second = std::fs::read_to_string(&again).unwrap();
        prop_assert_eq!(&first, &second);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Store paths never escape the cache directory, whatever bytes a
    /// custom kind tag contains.
    #[test]
    fn store_paths_never_escape(tag_bytes in prop::collection::vec(0u8..255, 0..32)) {
        let tag = bytes_to_string(&tag_bytes);
        let sanitized = sanitize_tag(&tag);
        prop_assert!(!sanitized.is_empty());
        prop_assert!(
            sanitized.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
            "sanitize_tag({tag:?}) produced {sanitized:?}"
        );
        prop_assert!(!sanitized.contains("..") || sanitized.chars().all(|c| c != '/'));
        // Through the real path builder: the entry path stays under the
        // root and introduces no traversal components.
        let root = Path::new("/cache/root");
        let path = root
            .join("objects")
            .join(&sanitized)
            .join("ab")
            .join("0123456789abcdef.bin");
        prop_assert!(path.starts_with(root));
        prop_assert!(path.components().all(|c| {
            let s = c.as_os_str();
            s != ".." && s != "."
        }));
    }
}

/// The FNV-1a implementation is pinned: these constants must never
/// change across releases, or every shared cache directory silently
/// goes cold (and, worse, a *partial* change could alias old entries).
#[test]
fn fingerprint_constants_are_pinned() {
    assert_eq!(fingerprint(b"gnnunlock"), 0x5a334ccdd9ae54ee);
    assert_eq!(
        fingerprint_fields(&["attack", "antisat", "c7552", "16", "1", "3"]),
        0x2b02ccb201bc8e3e
    );
    // StageJob fields, in order: kind, scheme, benchmark, key, seed,
    // epoch (empty here), salt.
    let job = StageJob {
        kind: JobKind::Attack,
        scheme: "antisat".into(),
        benchmark: Some("c7552".into()),
        key_bits: Some(16),
        seed: Some(1),
        epoch: None,
    };
    assert_eq!(
        job.fingerprint(3),
        fingerprint_fields(&["attack", "antisat", "c7552", "16", "1", "", "3"])
    );
    assert_eq!(job.fingerprint(3), 0x0af13779a4b2aaeb);
}

/// Disk-store entries round-trip through a real directory for arbitrary
/// payloads (deterministic sweep, not a proptest: file I/O per case).
#[test]
fn store_round_trips_binary_payloads() {
    let dir = std::env::temp_dir().join(format!("gnnunlock-proptest-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DiskStore::open(&dir).unwrap();
    for (i, payload) in [
        Vec::new(),
        vec![0u8],
        vec![0xff; 3],
        (0..=255u8).collect::<Vec<u8>>(),
        b"GNNUCV1\n".to_vec(), // payload that mimics the entry magic
    ]
    .into_iter()
    .enumerate()
    {
        let fp = i as u64;
        store
            .save(JobKind::Custom("weird/../tag"), fp, &payload)
            .unwrap();
        assert_eq!(
            store.load(JobKind::Custom("weird/../tag"), fp).as_deref(),
            Some(&payload[..])
        );
    }
    assert_eq!(store.stats().evictions, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
