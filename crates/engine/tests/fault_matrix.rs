//! The deterministic crash/takeover matrix: every crash window of the
//! claim/publish/takeover/heartbeat protocol, reproduced in memory on a
//! [`FaultBackend`] with no sleeps, no SIGKILL choreography and no
//! timing dependence (`tests/sharded.rs` keeps one real-process SIGKILL
//! test as smoke).
//!
//! Strategy: each scenario *constructs* the genuine post-crash state
//! through the real APIs — claim a lease, [`LeaseManager::abandon`] it
//! (the deterministic stand-in for process death: files stay, heartbeat
//! stops), back-date mtimes with [`FaultBackend::age`] instead of
//! sleeping, or fire one injected fault — then runs clean survivor
//! shards over the shared backend and asserts the invariants the
//! protocol promises: the campaign completes, the report is
//! byte-identical to a faultless reference, no job body completes more
//! than once, and no lease or tomb file is left wedged.

use gnnunlock_engine::{
    execution_counts, shard_replays, Campaign, CampaignRunner, Claim, DiskStore, ExecConfig, Fault,
    FaultBackend, FaultOp, FaultRule, JobCtx, JobKind, JobOutput, JobStatus, JobValue,
    LeaseManager, ObjectStoreBackend, ReportOptions, ShardConfig, StageJob, StoreBackend,
    ValueCodec, DEGRADED_PREFIX,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Echo runner + string codec (mirrors the shard/campaign unit tests').
struct Echo;

struct EchoCodec;

impl ValueCodec for EchoCodec {
    fn encode(&self, _kind: JobKind, value: &JobValue) -> Option<Vec<u8>> {
        value
            .downcast_ref::<String>()
            .map(|s| s.as_bytes().to_vec())
    }

    fn decode(&self, _kind: JobKind, bytes: &[u8]) -> Option<JobValue> {
        Some(Arc::new(String::from_utf8(bytes.to_vec()).ok()?) as JobValue)
    }
}

impl CampaignRunner for Echo {
    fn config_salt(&self) -> u64 {
        7
    }

    fn codec(&self) -> Option<Arc<dyn ValueCodec>> {
        Some(Arc::new(EchoCodec))
    }

    fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
        let inputs: Vec<String> = (0..ctx.deps.len())
            .map(|i| ctx.dep::<String>(i).as_ref().clone())
            .collect();
        Ok(Arc::new(format!("{}<-[{}]", job.label(), inputs.join(";"))) as JobValue)
    }
}

fn toy() -> Campaign {
    Campaign::builder("fault-matrix")
        .scheme("antisat")
        .benchmarks(["c1", "c2"])
        .key_sizes([8])
        .build()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gnnunlock-fault-matrix-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The faultless reference report every scenario's shards must match.
fn reference_report() -> String {
    let dir = tmp_dir("reference");
    let backend = Arc::new(FaultBackend::new());
    let run = toy()
        .execute_sharded(
            &Echo,
            ExecConfig::with_workers(2),
            &dir,
            &ShardConfig::new("ref").with_backend(backend),
        )
        .unwrap();
    assert!(run.run.outcome.all_succeeded());
    let report = run.run.report(ReportOptions::default()).to_json();
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Run shards `s0..sN` sequentially over `backend`, asserting each
/// succeeds and reproduces `reference` byte-for-byte.
fn run_survivors<B: StoreBackend + 'static>(
    dir: &std::path::Path,
    backend: &Arc<B>,
    shards: usize,
    ttl: Duration,
    reference: &str,
    scenario: &str,
) {
    for i in 0..shards {
        let run = toy()
            .execute_sharded(
                &Echo,
                ExecConfig::with_workers(2),
                dir,
                &ShardConfig::new(format!("s{i}"))
                    .with_ttl(ttl)
                    .with_backend(backend.clone() as Arc<dyn gnnunlock_engine::StoreBackend>),
            )
            .unwrap_or_else(|e| panic!("{scenario}: shard s{i} failed: {e}"));
        assert!(
            run.run.outcome.all_succeeded(),
            "{scenario}: shard s{i} had failed jobs"
        );
        assert_eq!(
            run.run.report(ReportOptions::default()).to_json(),
            reference,
            "{scenario}: shard s{i} diverged from the faultless reference"
        );
    }
}

/// After a scenario: no lease still claimed, no tomb left behind.
fn assert_no_wedged_protocol_files(backend: &FaultBackend, scenario: &str) {
    let leftovers: Vec<_> = backend
        .paths()
        .into_iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".lease") || n.contains(".tomb-"))
        })
        .collect();
    assert!(
        leftovers.is_empty(),
        "{scenario}: wedged protocol files: {leftovers:?}"
    );
}

/// Every job body completed exactly once across all shard logs.
fn assert_single_execution(dir: &std::path::Path, scenario: &str) {
    let replays = shard_replays(dir).unwrap();
    let counts = execution_counts(&replays);
    assert_eq!(
        counts.len(),
        toy().plan().len(),
        "{scenario}: every job must have completed somewhere"
    );
    assert!(
        counts.values().all(|&n| n == 1),
        "{scenario}: double execution: {counts:?}"
    );
}

/// The store, lease manager and (kind, fp, lease path) of the
/// campaign's first ready job, for pre-seeding crash states.
fn victim_setup(
    dir: &std::path::Path,
    backend: &Arc<FaultBackend>,
    ttl: Duration,
) -> (Arc<DiskStore>, LeaseManager, JobKind, u64, PathBuf) {
    let store = Arc::new(
        DiskStore::open_with_backend(
            dir,
            "",
            backend.clone() as Arc<dyn gnnunlock_engine::StoreBackend>,
        )
        .unwrap(),
    );
    let victim = LeaseManager::new(store.clone(), "victim", ttl);
    let campaign = toy();
    let plan = campaign.plan();
    let fps = campaign.job_fingerprints(&Echo);
    let (job0, deps0) = &plan[0];
    assert!(deps0.is_empty(), "plan[0] must be a ready root");
    let lease = victim.lease_path(job0.kind, fps[0]);
    (store, victim, job0.kind, fps[0], lease)
}

/// Crash window: the owner dies mid-job (lease on disk, heartbeat
/// gone). Survivors must take the job over after the TTL and finish the
/// campaign with no double execution — the in-memory replica of the
/// SIGKILL smoke test, with `age` standing in for the TTL wait.
#[test]
fn dead_owner_lease_is_taken_over_without_sleeps() {
    let dir = tmp_dir("dead-owner");
    let backend = Arc::new(FaultBackend::new());
    let ttl = Duration::from_secs(30);
    let reference = reference_report();

    let (_store, victim, kind, fp, lease) = victim_setup(&dir, &backend, ttl);
    assert!(matches!(victim.try_claim(kind, fp), Claim::Acquired { .. }));
    victim.abandon(); // process death: the lease file stays, unbeaten
    assert!(backend.age(&lease, ttl * 2), "lease must exist to age");

    run_survivors(&dir, &backend, 3, ttl, &reference, "dead-owner");
    assert_single_execution(&dir, "dead-owner");
    assert_no_wedged_protocol_files(&backend, "dead-owner");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash window: a challenger died *between* the tomb rename and the
/// lease re-create. Pre-fix, the orphaned tomb sat until hour-stale GC
/// and its generation was lost; now the next claimant adopts the
/// buried generation, claims immediately, and sweeps the tomb.
#[test]
fn interrupted_takeover_is_completed_by_the_next_claimant() {
    let dir = tmp_dir("interrupted-takeover");
    let backend = Arc::new(FaultBackend::new());
    let ttl = Duration::from_secs(30);
    let reference = reference_report();

    // A stale lease at generation 3 (an owner that died mid-epoch)...
    let (store, victim, kind, fp, lease) = victim_setup(&dir, &backend, ttl);
    backend.insert_raw(&lease, b"gnnunlock-lease owner=old pid=1 gen=3\n");
    backend.age(&lease, ttl * 2);
    drop(victim);
    // ...whose takeover crashes right after the entomb rename.
    backend.inject(FaultRule::on(
        FaultOp::Entomb,
        ".lease",
        Fault::CrashAfterEntomb,
    ));
    let challenger = LeaseManager::new(store.clone(), "challenger", ttl);
    assert_eq!(challenger.try_claim(kind, fp), Claim::Busy);
    challenger.abandon();
    let tombs: Vec<_> = backend
        .paths()
        .into_iter()
        .filter(|p| p.to_string_lossy().contains(".tomb-"))
        .collect();
    assert_eq!(tombs.len(), 1, "the crash leaves exactly the orphan tomb");
    assert!(!backend.contains(&lease), "the lease itself is gone");

    // The next claimant needs no TTL wait: the job is free *now*, the
    // buried generation is adopted (monotonic epochs), the tomb swept.
    let next = LeaseManager::new(store.clone(), "next", ttl);
    assert_eq!(
        next.try_claim(kind, fp),
        Claim::Acquired {
            generation: 4,
            takeover: true
        },
        "orphaned takeover must be completable immediately"
    );
    assert!(
        !backend
            .paths()
            .iter()
            .any(|p| p.to_string_lossy().contains(".tomb-")),
        "successful claim must sweep the orphaned tomb"
    );
    assert!(next.release(kind, fp));
    drop(next);

    run_survivors(&dir, &backend, 3, ttl, &reference, "interrupted-takeover");
    assert_single_execution(&dir, "interrupted-takeover");
    assert_no_wedged_protocol_files(&backend, "interrupted-takeover");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash window: a writer died after staging its entry bytes but before
/// the atomic rename. The final name must stay untouched (no torn entry
/// served to anyone), the campaign re-executes the job cleanly, and the
/// orphaned temp is invisible to byte accounting and collectable by GC.
#[test]
fn crash_before_publish_rename_leaves_no_torn_entry() {
    let dir = tmp_dir("crash-publish");
    let backend = Arc::new(FaultBackend::new());
    let ttl = Duration::from_secs(30);
    let reference = reference_report();

    let (store, victim, _kind, _fp, lease) = victim_setup(&dir, &backend, ttl);
    let entry = lease.with_extension("bin");
    backend.inject(FaultRule::on(
        FaultOp::Publish,
        ".bin",
        Fault::CrashBeforeRename,
    ));
    assert!(backend.publish(&entry, b"half-written payload").is_err());
    assert!(
        !backend.contains(&entry),
        "final name untouched by the crash"
    );
    let orphan = backend
        .paths()
        .into_iter()
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-"))
        })
        .expect("crash leaves the staged temp behind");
    victim.abandon();

    run_survivors(&dir, &backend, 3, ttl, &reference, "crash-publish");
    assert_single_execution(&dir, "crash-publish");
    assert_no_wedged_protocol_files(&backend, "crash-publish");

    // The orphan never counts toward byte budgets, and once stale it is
    // swept by the next GC pass (any budget — orphans are not entries).
    let billed = store.usage_bytes();
    assert!(
        backend.contains(&orphan),
        "orphan survives until it goes stale"
    );
    backend.age(&orphan, Duration::from_secs(2 * 3600));
    store.gc(u64::MAX);
    assert!(!backend.contains(&orphan), "stale orphan must be collected");
    assert_eq!(store.usage_bytes(), billed, "orphans were never billed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash window: a claimant won the create but died mid-write, leaving
/// a *torn* lease file under the claimed name (the legacy
/// create-new-then-write protocol; NFS partial visibility). Torn bytes
/// must never decide ownership: fresh → a live peer (conservative),
/// stale → normal takeover arbitrated by mtime, with the generation
/// parsing as 0.
#[test]
fn torn_lease_files_never_decide_ownership() {
    let dir = tmp_dir("torn-claim");
    let backend = Arc::new(FaultBackend::new());
    let ttl = Duration::from_secs(30);
    let reference = reference_report();

    let (store, victim, kind, fp, lease) = victim_setup(&dir, &backend, ttl);
    drop(victim);
    backend.inject(FaultRule::on(FaultOp::Claim, ".lease", Fault::TornWrite(9)));
    let peer = LeaseManager::new(store.clone(), "peer", ttl);
    // The peer's claim "succeeded" at the backend then the peer died:
    // a torn lease file exists under the claimed name.
    assert_eq!(peer.try_claim(kind, fp), Claim::Busy);
    peer.abandon();
    let torn = backend.read_raw(&lease).expect("torn lease file exists");
    assert!(torn.len() < 20, "file must actually be torn: {torn:?}");

    // Fresh + torn: conservatively a live peer — no spurious takeover.
    let rival = LeaseManager::new(store.clone(), "rival", ttl);
    assert_eq!(rival.try_claim(kind, fp), Claim::Busy);
    assert!(
        rival.peer_holds(kind, fp),
        "fresh torn lease reads as held (scheduling stays conservative)"
    );
    // Stale + torn: the mtime, not the unreadable content, carries the
    // verdict — taken over at generation 0 + 1.
    backend.age(&lease, ttl * 2);
    assert_eq!(
        rival.try_claim(kind, fp),
        Claim::Acquired {
            generation: 1,
            takeover: true
        }
    );
    assert!(rival.release(kind, fp));
    drop(rival);

    run_survivors(&dir, &backend, 3, ttl, &reference, "torn-claim");
    assert_single_execution(&dir, "torn-claim");
    assert_no_wedged_protocol_files(&backend, "torn-claim");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash window: the *owner's own heartbeat* observes a torn read of
/// its lease (reader racing the filesystem, NFS partial page). Pre-fix
/// the owner dropped the lease as lost, stopped heartbeating, and a
/// peer took over a perfectly live owner's job; now a torn observation
/// keeps the lease and the next beat re-judges it.
#[test]
fn torn_heartbeat_read_does_not_abandon_a_live_lease() {
    let dir = tmp_dir("torn-heartbeat");
    let backend = Arc::new(FaultBackend::new());
    let ttl = Duration::from_secs(30);

    let (store, owner, kind, fp, _lease) = victim_setup(&dir, &backend, ttl);
    assert!(matches!(owner.try_claim(kind, fp), Claim::Acquired { .. }));

    // One torn read, one transient error, then clean again.
    backend.inject(FaultRule::on(FaultOp::Load, ".lease", Fault::TornRead(7)));
    backend.inject(FaultRule::on(FaultOp::Load, ".lease", Fault::Transient).after(1));
    owner.force_heartbeat(); // torn observation
    owner.force_heartbeat(); // transient error
    assert_eq!(
        owner.held(),
        1,
        "torn/transient reads must not drop the lease"
    );
    assert_eq!(owner.stats().lost, 0);
    owner.force_heartbeat(); // clean: refreshes
    assert_eq!(owner.held(), 1);

    // A rival still sees a fresh, held lease — no spurious takeover.
    let rival = LeaseManager::new(store.clone(), "rival", ttl);
    assert_eq!(rival.try_claim(kind, fp), Claim::Busy);
    assert_eq!(rival.stats().takeovers, 0);

    // An *intact foreign* observation still means usurped: that path
    // must not have been loosened by torn-tolerance.
    backend.insert_raw(
        &owner.lease_path(kind, fp),
        b"gnnunlock-lease owner=usurper pid=9 gen=7\n",
    );
    owner.force_heartbeat();
    assert_eq!(owner.held(), 0, "intact foreign content is a real loss");
    assert_eq!(owner.stats().lost, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded soak: N pseudo-random schedules of *recoverable* faults
/// (transient errors, delayed visibility, torn reads) thrown at full
/// sharded runs. Recoverable faults may cost duplicate work — a shard
/// that transiently cannot see a peer's entry legitimately re-executes
/// the job — but must never change the report or fail the campaign.
/// `GNNUNLOCK_FAULT_SOAK_SEEDS` (default 6) widens the sweep in CI; a
/// failure names its seed so the exact schedule reproduces.
#[test]
fn recoverable_fault_soak_never_diverges_the_report() {
    let reference = reference_report();
    let seeds: u64 = std::env::var("GNNUNLOCK_FAULT_SOAK_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(6);
    for seed in 1..=seeds {
        let dir = tmp_dir(&format!("soak-{seed}"));
        let backend = Arc::new(FaultBackend::with_rules(
            gnnunlock_engine::recoverable_schedule(seed, 10),
        ));
        for i in 0..2 {
            let run = toy()
                .execute_sharded(
                    &Echo,
                    ExecConfig::with_workers(2),
                    &dir,
                    &ShardConfig::new(format!("s{i}")).with_backend(backend.clone()),
                )
                .unwrap_or_else(|e| panic!("soak seed {seed}: shard s{i} failed: {e}"));
            assert!(
                run.run.outcome.all_succeeded(),
                "soak seed {seed}: shard s{i} had failed jobs"
            );
            assert_eq!(
                run.run.report(ReportOptions::default()).to_json(),
                reference,
                "soak seed {seed}: shard s{i} diverged from the reference"
            );
        }
        // No wedged-files assertion here: a visibility fault during
        // release legitimately strands a lease (the owner counts it
        // lost; it ages out via the normal stale path). Reports and
        // success are the soak invariants.
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Chaos acceptance: a 3-shard campaign over the object-store backend
/// under a seeded schedule of service-shaped faults — latency spikes,
/// short unavailability windows, transient errors — must stay
/// byte-identical to the faultless reference with every job body
/// executed exactly once. The resilience layer's retries absorb the
/// whole schedule, and every backoff pause lands on the service's
/// virtual clock, so the test is timing-free.
#[test]
fn object_backend_chaos_schedule_is_byte_identical_and_exactly_once() {
    let reference = reference_report();
    let dir = tmp_dir("object-chaos");
    let backend = Arc::new(ObjectStoreBackend::with_rules([
        FaultRule::on(FaultOp::Load, ".bin", Fault::Transient),
        FaultRule::on(FaultOp::Publish, ".bin", Fault::Latency(12)).after(1),
        FaultRule::on(FaultOp::Claim, ".lease", Fault::Unavailable(2)).after(2),
        FaultRule::on(FaultOp::Load, ".lease", Fault::Latency(3)).after(4),
        FaultRule::on(FaultOp::Publish, ".bin", Fault::Unavailable(1)).after(3),
        FaultRule::on(FaultOp::Load, ".bin", Fault::SlowRead).after(5),
        FaultRule::on(FaultOp::Load, ".bin", Fault::Transient).after(7),
    ]));

    run_survivors(
        &dir,
        &backend,
        3,
        Duration::from_secs(30),
        &reference,
        "object-chaos",
    );
    assert_single_execution(&dir, "object-chaos");
    assert!(
        backend.service().faults_fired() > 0,
        "the schedule must actually have fired"
    );
    assert!(
        backend.service().virtual_waited() > Duration::ZERO,
        "backoff must be charged to the virtual clock, not slept"
    );
    let wedged: Vec<_> = backend
        .service()
        .keys()
        .into_iter()
        .filter(|k| {
            k.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".lease") || n.contains(".tomb-"))
        })
        .collect();
    assert!(wedged.is_empty(), "object-chaos: wedged blobs: {wedged:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Degradation acceptance: mid-campaign the object store becomes
/// unavailable *for good*. The run must fail cleanly — a
/// `store-degraded` stage error, no panic, no poll-forever — and once
/// the outage clears, a fresh shard over the same bucket (stranded
/// leases aged past the TTL, exactly as wall-clock would) converges to
/// the reference report, proving no lease was left wedged.
#[test]
fn sustained_object_outage_fails_cleanly_and_recovers() {
    let reference = reference_report();
    let dir = tmp_dir("object-outage");
    let ttl = Duration::from_millis(200);
    let backend = Arc::new(ObjectStoreBackend::new());
    // After a handful of healthy operations the service disappears:
    // every subsequent gated op times out, forever.
    backend
        .service()
        .inject(FaultRule::on(FaultOp::Load, "", Fault::Unavailable(usize::MAX)).after(12));

    let run = toy()
        .execute_sharded(
            &Echo,
            ExecConfig::with_workers(2),
            &dir,
            &ShardConfig::new("s0")
                .with_ttl(ttl)
                .with_backend(backend.clone() as Arc<dyn StoreBackend>),
        )
        .expect("the outage must fail jobs, not the run itself");
    assert!(
        !run.run.outcome.all_succeeded(),
        "the campaign cannot survive a permanent outage"
    );
    let degraded_failures: Vec<_> = run
        .run
        .outcome
        .records
        .iter()
        .filter_map(|r| match &r.status {
            JobStatus::Failed(msg) if msg.contains(DEGRADED_PREFIX) => Some(msg.clone()),
            _ => None,
        })
        .collect();
    assert!(
        !degraded_failures.is_empty(),
        "failures must carry the store-degraded marker: {:?}",
        run.run
            .outcome
            .records
            .iter()
            .map(|r| &r.status)
            .collect::<Vec<_>>()
    );

    // Recovery: the outage ends. Stranded leases (owners that could not
    // release through the dead store) age past the TTL — the virtual
    // stand-in for waiting out one TTL — and a clean shard converges.
    backend.service().clear_rules();
    for key in backend.service().keys() {
        let is_protocol = key
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".lease") || n.contains(".tomb-"));
        if is_protocol {
            backend.service().age(&key, ttl * 4);
        }
    }
    let recovery_dir = tmp_dir("object-outage-recovery");
    run_survivors(
        &recovery_dir,
        &backend,
        1,
        ttl,
        &reference,
        "object-outage-recovery",
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&recovery_dir);
}

/// Seeded soak over the object-store backend: the same recoverable-
/// fault schedules as the memory soak — now including the service-
/// shaped latency/unavailability/slow-read kinds — run against the
/// conditional-put substrate. `GNNUNLOCK_FAULT_SOAK_SEEDS` widens the
/// sweep in CI; a failure names its seed.
#[test]
fn object_backend_recoverable_soak_never_diverges_the_report() {
    let reference = reference_report();
    let seeds: u64 = std::env::var("GNNUNLOCK_FAULT_SOAK_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(6);
    for seed in 1..=seeds {
        let dir = tmp_dir(&format!("object-soak-{seed}"));
        let backend = Arc::new(ObjectStoreBackend::with_rules(
            gnnunlock_engine::recoverable_schedule(seed, 10),
        ));
        for i in 0..2 {
            let run = toy()
                .execute_sharded(
                    &Echo,
                    ExecConfig::with_workers(2),
                    &dir,
                    &ShardConfig::new(format!("s{i}"))
                        .with_backend(backend.clone() as Arc<dyn StoreBackend>),
                )
                .unwrap_or_else(|e| panic!("object soak seed {seed}: shard s{i} failed: {e}"));
            assert!(
                run.run.outcome.all_succeeded(),
                "object soak seed {seed}: shard s{i} had failed jobs"
            );
            assert_eq!(
                run.run.report(ReportOptions::default()).to_json(),
                reference,
                "object soak seed {seed}: shard s{i} diverged from the reference"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
