//! Centralized `GNNUNLOCK_*` environment-knob parsing.
//!
//! Every knob the engine (and the crates built on it) reads goes through
//! this module, so parsing, validation and diagnostics live in one
//! place: a knob that is *unset* silently yields its default, while a
//! knob that is *set but malformed* prints one warning to stderr and
//! then falls back — a typo'd `GNNUNLOCK_CACHE_BUDGET_BYTES=10gb` must
//! be visible, not a silent no-op ([`knob_warnings`] counts the
//! fallbacks so tests can assert them).
//!
//! The engine-owned knob names live next to their subsystems
//! ([`crate::CACHE_DIR_ENV`], [`crate::CACHE_BUDGET_ENV`],
//! [`crate::EVENTS_ENV`], [`crate::WORKERS_ENV`]); the distribution
//! knobs introduced with sharded execution are declared here.

use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Environment variable naming this worker process's shard id (lease
/// owner + per-shard event-log name). Default: `pid-<pid>`.
pub const SHARD_ID_ENV: &str = "GNNUNLOCK_SHARD_ID";

/// Environment variable naming the tenant namespace a worker's store
/// entries and leases live under (`tenants/<ns>/objects/` inside the
/// cache dir — see [`crate::DiskStore::open_namespaced`]). Unset or
/// blank: the shared default namespace. External shard workers set this
/// to cohabit a `gnnunlockd` tenant's campaign.
pub const TENANT_ENV: &str = "GNNUNLOCK_TENANT";

/// The tenant namespace named by [`TENANT_ENV`], if set and non-blank.
pub fn tenant_from_env() -> Option<String> {
    std::env::var(TENANT_ENV)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

/// Environment variable setting the lease time-to-live in milliseconds:
/// a lease not heartbeated for this long counts as stale and may be
/// taken over by another shard. Default: 30000 (30 s). Must be ≥ 1.
pub const LEASE_TTL_ENV: &str = "GNNUNLOCK_LEASE_TTL_MS";

/// Environment variable naming the directory where the perf harness
/// (`gnnunlock-bench perf`) writes its `BENCH_*.json` trajectory files.
/// Unset = the current working directory (the repo root when invoked
/// from a checkout, which is where the perf trajectory lives).
pub const BENCH_OUT_ENV: &str = "GNNUNLOCK_BENCH_OUT";

/// The bench output directory named by [`BENCH_OUT_ENV`], if set.
pub fn bench_out_from_env() -> Option<PathBuf> {
    knob_path(BENCH_OUT_ENV)
}

/// Environment variable setting the per-stage wall-clock budget in
/// milliseconds: a stage whose summed execution time exceeds it is
/// marked `over_budget` in the stage-summary event and the timing
/// report section. Observability only — nothing is killed. Unset = no
/// budget.
pub const STAGE_BUDGET_ENV: &str = "GNNUNLOCK_STAGE_BUDGET_MS";

/// Environment variable overriding where a persistent campaign run
/// writes its Chrome `trace_event` timeline JSON. Unset = `trace.json`
/// beside the run's event log (`trace-<shard>.json` for sharded
/// workers); set to a path = write there instead. The trace is timing
/// data — volatile by design — and never feeds the deterministic report.
pub const TRACE_OUT_ENV: &str = "GNNUNLOCK_TRACE_OUT";

/// Environment variable switching telemetry recording off: `off`, `0`
/// or `false` (case-insensitive) disable every metric increment and
/// span recording in the process. Anything else (including unset) keeps
/// telemetry on — recording is cheap relaxed atomics and the default
/// reports are byte-identical either way.
pub const TELEMETRY_ENV: &str = "GNNUNLOCK_TELEMETRY";

/// The trace output path named by [`TRACE_OUT_ENV`], if set.
pub fn trace_out_from_env() -> Option<PathBuf> {
    knob_path(TRACE_OUT_ENV)
}

/// Whether [`TELEMETRY_ENV`] leaves telemetry enabled (the default).
pub fn telemetry_enabled_from_env() -> bool {
    match std::env::var(TELEMETRY_ENV) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        Err(_) => true,
    }
}

/// Apply [`TELEMETRY_ENV`] to the process-wide telemetry switch. Called
/// at the entry points that own a run (persistent campaign execution,
/// the daemon, the bench harness).
pub fn apply_telemetry_env() {
    gnnunlock_telemetry::set_enabled(telemetry_enabled_from_env());
}

static WARNINGS: AtomicUsize = AtomicUsize::new(0);

fn warn(name: &str, value: &str, expected: &str) {
    WARNINGS.fetch_add(1, Ordering::Relaxed);
    eprintln!("[gnnunlock] warning: ignoring {name}={value:?} ({expected} expected)");
}

/// How many malformed knob values this process has warned about and
/// ignored. Lets tests (and health checks) assert that a configuration
/// was fully honored.
pub fn knob_warnings() -> usize {
    WARNINGS.load(Ordering::Relaxed)
}

/// Parse the environment knob `name`. Unset (or empty) yields `None`
/// silently; a set-but-unparsable value warns on stderr (describing the
/// `expected` form) and yields `None`, so callers fall back to their
/// default visibly rather than silently.
pub fn knob<T: FromStr>(name: &str, expected: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            warn(name, &raw, expected);
            None
        }
    }
}

/// [`knob`] with an extra validity predicate: a value that parses but
/// fails `valid` (e.g. `GNNUNLOCK_WORKERS=0`) warns and yields `None`
/// exactly like a parse failure.
pub fn knob_validated<T: FromStr>(
    name: &str,
    expected: &str,
    valid: impl FnOnce(&T) -> bool,
) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse() {
        Ok(v) if valid(&v) => Some(v),
        _ => {
            warn(name, &raw, expected);
            None
        }
    }
}

/// [`knob`] with a default for the unset / malformed cases.
pub fn knob_or<T: FromStr>(name: &str, expected: &str, default: T) -> T {
    knob(name, expected).unwrap_or(default)
}

/// A path-valued knob: unset or empty yields `None`. Paths are not
/// validated (existence is the consumer's concern — a store directory
/// is created on open).
pub fn knob_path(name: &str) -> Option<PathBuf> {
    std::env::var_os(name)
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// The per-stage wall-clock budget named by [`STAGE_BUDGET_ENV`], if
/// set and valid (finite, ≥ 0 milliseconds).
pub fn stage_budget_ms() -> Option<f64> {
    knob_validated(STAGE_BUDGET_ENV, "a budget in milliseconds", |b: &f64| {
        b.is_finite() && *b >= 0.0
    })
}

/// The lease time-to-live named by [`LEASE_TTL_ENV`], if set and valid
/// (a positive integer of milliseconds).
pub fn lease_ttl_from_env() -> Option<Duration> {
    knob_validated(LEASE_TTL_ENV, "positive milliseconds", |n: &u64| *n >= 1)
        .map(Duration::from_millis)
}

/// The shard id named by [`SHARD_ID_ENV`], defaulting to `pid-<pid>` —
/// unique per process on one machine, which is all the lease protocol
/// needs (ownership checks compare the full owner string plus the lease
/// generation).
pub fn shard_id_from_env() -> String {
    std::env::var(SHARD_ID_ENV)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| format!("pid-{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    // Parsing behavior that needs env mutation lives in the dedicated
    // single-threaded integration binary (tests/env_knob_validation.rs):
    // concurrent setenv/getenv from sibling test threads is UB on
    // glibc. Here only the env-independent surface is exercised.
    use super::*;

    #[test]
    fn unset_knobs_are_silent_defaults() {
        assert_eq!(
            knob_or::<u64>("GNNUNLOCK_TEST_UNSET_KNOB", "a number", 7),
            7
        );
        assert!(knob_path("GNNUNLOCK_TEST_UNSET_KNOB").is_none());
        assert!(!shard_id_from_env().is_empty());
    }
}
