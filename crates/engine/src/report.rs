//! Structured JSON run reports.
//!
//! [`RunReport::to_json`] is **deterministic by default**: it contains
//! only content fields (labels, kinds, statuses, dependency lists,
//! outcome counters), so the same campaign produces a byte-identical
//! report whether it ran on 1 worker or 16 — and, because cache
//! provenance is excluded, whether it was computed cold, served warm
//! from a shared `GNNUNLOCK_CACHE_DIR`, or resumed mid-campaign after a
//! crash. Where each result came from (`executed` vs `memory` vs `disk`)
//! is opt-in via [`ReportOptions::with_provenance`]; wall-clock timings
//! via [`ReportOptions::with_timings`].
//!
//! The document carries a `schema` version; `tests/golden/` pins the
//! exact rendering so accidental drift fails CI.

use crate::exec::{JobStatus, RunOutcome};
pub use crate::json::Json;

/// Version of the report document layout (bump on breaking changes;
/// golden tests pin the rendering per version).
///
/// v3 added the per-stage aggregation (`stages`) to the provenance /
/// timing variants; the default document gained no fields, preserving
/// the cold == warm == resumed byte-identity contract.
pub const REPORT_SCHEMA_VERSION: u64 = 3;

/// Rendering options for [`RunReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportOptions {
    /// Include wall-clock timings. Off by default so reports are
    /// byte-identical across worker counts and machines.
    pub with_timings: bool,
    /// Include cache provenance (per-job cache tier, executed/hit
    /// counters). Off by default so cold, warm and resumed runs render
    /// byte-identical reports.
    pub with_provenance: bool,
}

impl ReportOptions {
    /// Enable the volatile timing fields.
    pub fn with_timings(mut self) -> Self {
        self.with_timings = true;
        self
    }

    /// Enable the cache-provenance fields.
    pub fn with_provenance(mut self) -> Self {
        self.with_provenance = true;
        self
    }
}

/// A structured description of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Campaign / run name.
    pub name: String,
    /// The JSON document (already assembled, deterministic part only
    /// unless timings/provenance were requested).
    doc: Json,
}

impl RunReport {
    /// Build a report from a run outcome.
    pub fn from_outcome(name: &str, outcome: &RunOutcome, opts: ReportOptions) -> RunReport {
        let jobs: Vec<Json> = outcome
            .records
            .iter()
            .enumerate()
            .map(|(id, r)| {
                let mut fields = vec![
                    ("id", Json::Num(id as f64)),
                    ("label", Json::Str(r.label.clone())),
                    ("kind", Json::Str(r.kind.tag().to_string())),
                    ("status", Json::Str(r.status.tag().to_string())),
                    (
                        "deps",
                        Json::Arr(r.deps.iter().map(|&d| Json::Num(d as f64)).collect()),
                    ),
                ];
                if let JobStatus::Failed(msg) | JobStatus::Skipped(msg) = &r.status {
                    fields.push(("detail", Json::Str(msg.clone())));
                }
                if opts.with_provenance {
                    fields.push(("cache", Json::Str(r.cache.tag().to_string())));
                }
                if opts.with_timings {
                    fields.push(("ms", Json::Num(r.duration.as_secs_f64() * 1e3)));
                }
                Json::obj(fields)
            })
            .collect();
        let mut counters = vec![
            ("total", Json::Num(outcome.stats.total as f64)),
            ("succeeded", Json::Num(outcome.stats.succeeded() as f64)),
            ("failed", Json::Num(outcome.stats.failed as f64)),
            ("skipped", Json::Num(outcome.stats.skipped as f64)),
            ("cancelled", Json::Num(outcome.stats.cancelled as f64)),
        ];
        if opts.with_provenance {
            counters.push(("executed", Json::Num(outcome.stats.executed as f64)));
            counters.push(("memory_hits", Json::Num(outcome.stats.memory_hits as f64)));
            counters.push(("disk_hits", Json::Num(outcome.stats.disk_hits as f64)));
        }
        let mut top = vec![
            ("campaign", Json::Str(name.to_string())),
            ("schema", Json::Num(REPORT_SCHEMA_VERSION as f64)),
            ("counters", Json::obj(counters)),
        ];
        // Per-stage aggregation (cache provenance and/or timing is
        // volatile across cold/warm runs, so the whole section is
        // opt-in, keeping default reports byte-identical).
        if opts.with_provenance || opts.with_timings {
            let stages: Vec<Json> = outcome
                .stage_summaries()
                .into_iter()
                .map(|s| {
                    let mut fields = vec![
                        ("kind", Json::Str(s.kind)),
                        ("total", Json::Num(s.total as f64)),
                    ];
                    if opts.with_provenance {
                        fields.push(("executed", Json::Num(s.executed as f64)));
                        fields.push(("memory_hits", Json::Num(s.memory_hits as f64)));
                        fields.push(("disk_hits", Json::Num(s.disk_hits as f64)));
                        fields.push(("failed", Json::Num(s.failed as f64)));
                        fields.push(("skipped", Json::Num(s.skipped as f64)));
                        fields.push(("cancelled", Json::Num(s.cancelled as f64)));
                    }
                    if opts.with_timings {
                        fields.push(("ms", Json::Num(s.ms)));
                        // Wall-clock-derived, so it rides with the
                        // timing fields, never the default document.
                        fields.push(("over_budget", Json::Bool(s.over_budget)));
                    }
                    Json::obj(fields)
                })
                .collect();
            top.push(("stages", Json::Arr(stages)));
        }
        top.push(("jobs", Json::Arr(jobs)));
        if opts.with_timings {
            top.push(("wall_ms", Json::Num(outcome.wall_time.as_secs_f64() * 1e3)));
            // Snapshot of the process-wide telemetry registry. Values
            // accumulate across runs in one process and are volatile by
            // nature, so the section rides the timing opt-in and never
            // touches the deterministic default document.
            let metrics: Vec<Json> = gnnunlock_telemetry::Registry::global()
                .snapshot()
                .into_iter()
                .map(|s| {
                    let mut fields = vec![("name", Json::Str(s.name))];
                    if !s.labels.is_empty() {
                        fields.push((
                            "labels",
                            Json::Obj(
                                s.labels
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                    .collect(),
                            ),
                        ));
                    }
                    match s.value {
                        gnnunlock_telemetry::MetricValue::Counter(n) => {
                            fields.push(("value", Json::Num(n as f64)));
                        }
                        gnnunlock_telemetry::MetricValue::Gauge(n) => {
                            fields.push(("value", Json::Num(n as f64)));
                        }
                        gnnunlock_telemetry::MetricValue::Histogram { sum, count, .. } => {
                            fields.push((
                                "value",
                                Json::obj(vec![
                                    ("sum", Json::Num(sum)),
                                    ("count", Json::Num(count as f64)),
                                ]),
                            ));
                        }
                    }
                    Json::obj(fields)
                })
                .collect();
            top.push(("telemetry", Json::Arr(metrics)));
        }
        RunReport {
            name: name.to_string(),
            doc: Json::obj(top),
        }
    }

    /// The JSON document.
    pub fn json(&self) -> &Json {
        &self.doc
    }

    /// Serialize to a JSON string (deterministic unless timings were
    /// requested at build time).
    pub fn to_json(&self) -> String {
        self.doc.render()
    }

    /// Write the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecConfig, Executor};
    use crate::graph::{JobGraph, JobKind, JobValue};
    use std::sync::Arc;

    fn build<'a>() -> JobGraph<'a> {
        let mut g = JobGraph::new();
        let a = g.add("a", JobKind::Lock, Some(9), vec![], |_| {
            Ok(Arc::new(5u64) as JobValue)
        });
        g.add("b", JobKind::Train, None, vec![a], |_| {
            Ok(Arc::new(6u64) as JobValue)
        });
        g
    }

    #[test]
    fn report_is_deterministic_without_timings() {
        let r1 = Executor::new(ExecConfig::with_workers(1)).run(build());
        let r4 = Executor::new(ExecConfig::with_workers(4)).run(build());
        let j1 = RunReport::from_outcome("t", &r1, ReportOptions::default()).to_json();
        let j4 = RunReport::from_outcome("t", &r4, ReportOptions::default()).to_json();
        assert_eq!(j1, j4);
        assert!(j1.contains("\"schema\": 3"));
        assert!(j1.contains("\"succeeded\": 2"));
        assert!(!j1.contains("\"stages\""), "stage section is opt-in");
        // Timing variant has the volatile fields.
        let timed =
            RunReport::from_outcome("t", &r1, ReportOptions::default().with_timings()).to_json();
        assert!(timed.contains("wall_ms"));
    }

    #[test]
    fn provenance_is_opt_in() {
        let exec = Executor::new(ExecConfig::with_workers(1));
        let cold = exec.run(build());
        let warm = exec.run(build());
        // Default reports are identical cold vs warm…
        assert_eq!(
            RunReport::from_outcome("t", &cold, ReportOptions::default()).to_json(),
            RunReport::from_outcome("t", &warm, ReportOptions::default()).to_json(),
        );
        // …while the provenance variant distinguishes them.
        let opts = ReportOptions::default().with_provenance();
        let cold_p = RunReport::from_outcome("t", &cold, opts).to_json();
        let warm_p = RunReport::from_outcome("t", &warm, opts).to_json();
        assert_ne!(cold_p, warm_p);
        assert!(cold_p.contains("\"cache\": \"none\"") && cold_p.contains("\"executed\": 2"));
        assert!(warm_p.contains("\"cache\": \"memory\"") && warm_p.contains("\"memory_hits\": 1"));
        // The provenance variant aggregates per stage kind.
        assert!(cold_p.contains("\"stages\""));
        assert!(cold_p.contains("\"kind\": \"lock\"") && cold_p.contains("\"kind\": \"train\""));
    }
}
