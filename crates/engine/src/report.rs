//! Structured JSON run reports.
//!
//! [`RunReport::to_json`] is **deterministic by default**: it contains
//! only content fields (labels, kinds, statuses, cache flags, counters),
//! so the same campaign produces a byte-identical report whether it ran
//! on 1 worker or 16. Wall-clock timings and the worker count are opt-in
//! via [`ReportOptions::with_timings`] for profiling runs.
//!
//! No serde in the dependency tree, so the module carries its own tiny
//! JSON value type with insertion-ordered objects and full string
//! escaping.

use crate::exec::{JobStatus, RunOutcome};
use std::fmt::Write as _;

/// A JSON value with deterministic (insertion-ordered) objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (rendered via shortest-roundtrip `{}`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Rendering options for [`RunReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportOptions {
    /// Include wall-clock timings and the worker count. Off by default so
    /// reports are byte-identical across worker counts and machines.
    pub with_timings: bool,
}

impl ReportOptions {
    /// Enable the volatile timing fields.
    pub fn with_timings(mut self) -> Self {
        self.with_timings = true;
        self
    }
}

/// A structured description of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Campaign / run name.
    pub name: String,
    /// The JSON document (already assembled, deterministic part only
    /// unless timings were requested).
    doc: Json,
}

impl RunReport {
    /// Build a report from a run outcome.
    pub fn from_outcome(name: &str, outcome: &RunOutcome, opts: ReportOptions) -> RunReport {
        let jobs: Vec<Json> = outcome
            .records
            .iter()
            .enumerate()
            .map(|(id, r)| {
                let mut fields = vec![
                    ("id", Json::Num(id as f64)),
                    ("label", Json::Str(r.label.clone())),
                    ("kind", Json::Str(r.kind.tag().to_string())),
                    ("status", Json::Str(r.status.tag().to_string())),
                    ("cached", Json::Bool(r.cached)),
                    (
                        "deps",
                        Json::Arr(r.deps.iter().map(|&d| Json::Num(d as f64)).collect()),
                    ),
                ];
                if let JobStatus::Failed(msg) | JobStatus::Skipped(msg) = &r.status {
                    fields.push(("detail", Json::Str(msg.clone())));
                }
                if opts.with_timings {
                    fields.push(("ms", Json::Num(r.duration.as_secs_f64() * 1e3)));
                }
                Json::obj(fields)
            })
            .collect();
        let counters = Json::obj(vec![
            ("total", Json::Num(outcome.stats.total as f64)),
            ("executed", Json::Num(outcome.stats.executed as f64)),
            ("cache_hits", Json::Num(outcome.stats.cache_hits as f64)),
            ("failed", Json::Num(outcome.stats.failed as f64)),
            ("skipped", Json::Num(outcome.stats.skipped as f64)),
            ("cancelled", Json::Num(outcome.stats.cancelled as f64)),
        ]);
        let mut top = vec![
            ("campaign", Json::Str(name.to_string())),
            ("counters", counters),
            ("jobs", Json::Arr(jobs)),
        ];
        if opts.with_timings {
            top.push(("wall_ms", Json::Num(outcome.wall_time.as_secs_f64() * 1e3)));
        }
        RunReport {
            name: name.to_string(),
            doc: Json::obj(top),
        }
    }

    /// The JSON document.
    pub fn json(&self) -> &Json {
        &self.doc
    }

    /// Serialize to a JSON string (deterministic unless timings were
    /// requested at build time).
    pub fn to_json(&self) -> String {
        self.doc.render()
    }

    /// Write the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecConfig, Executor};
    use crate::graph::{JobGraph, JobKind, JobValue};
    use std::sync::Arc;

    #[test]
    fn json_escaping_and_shapes() {
        let doc = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd\u{1}".into())),
            ("n", Json::Num(3.0)),
            ("x", Json::Num(0.5)),
            ("b", Json::Bool(true)),
            ("v", Json::Arr(vec![Json::Null])),
            ("e", Json::Obj(vec![])),
        ]);
        let s = doc.render();
        assert!(s.contains(r#""a\"b\\c\nd\u0001""#));
        assert!(s.contains("\"n\": 3"));
        assert!(s.contains("\"x\": 0.5"));
        assert!(s.contains("\"e\": {}"));
    }

    #[test]
    fn report_is_deterministic_without_timings() {
        let build = || {
            let mut g = JobGraph::new();
            let a = g.add("a", JobKind::Lock, Some(9), vec![], |_| {
                Ok(Arc::new(5u64) as JobValue)
            });
            g.add("b", JobKind::Train, None, vec![a], |_| {
                Ok(Arc::new(6u64) as JobValue)
            });
            g
        };
        let r1 = Executor::new(ExecConfig::with_workers(1)).run(build());
        let r4 = Executor::new(ExecConfig::with_workers(4)).run(build());
        let j1 = RunReport::from_outcome("t", &r1, ReportOptions::default()).to_json();
        let j4 = RunReport::from_outcome("t", &r4, ReportOptions::default()).to_json();
        assert_eq!(j1, j4);
        // Timing variant has the volatile fields.
        let timed =
            RunReport::from_outcome("t", &r1, ReportOptions::default().with_timings()).to_json();
        assert!(timed.contains("wall_ms"));
    }
}
