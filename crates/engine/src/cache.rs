//! Content-addressed result cache: an in-memory tier with an optional
//! on-disk tier behind it.
//!
//! Results are keyed on `(JobKind, fingerprint)` where the fingerprint is
//! a content hash of everything that determines the job's output (scheme,
//! benchmark, key size, seed, scale, hyperparameters…). Sharing one cache
//! across [`crate::Executor`] runs lets repeated campaigns skip redundant
//! locking / synthesis / dataset / training work entirely; attaching a
//! [`DiskStore`] + [`ValueCodec`] (see [`ResultCache::with_disk`])
//! extends that reuse across *processes* sharing a cache directory.
//!
//! The disk tier inherits its [`crate::StoreBackend`] from the attached
//! [`DiskStore`]: every persist and disk probe goes through the store's
//! backend, so a cache built on a [`DiskStore::open_with_backend`]
//! handle (or under `GNNUNLOCK_STORE_BACKEND=memory`) runs entirely
//! against that backend with no cache-side plumbing — including fault
//! injection via [`crate::FaultBackend`], which the cache tolerates the
//! same way it tolerates real I/O errors: persistence is best-effort,
//! the memory tier stays authoritative.

use crate::codec::ValueCodec;
use crate::graph::{JobKind, JobValue};
use crate::store::DiskStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Where a cache lookup was satisfied (recorded per job; provenance is
/// excluded from deterministic reports so cold, warm and resumed runs
/// stay byte-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// Not served from the cache — the job body executed.
    None,
    /// Served from the in-process memory tier.
    Memory,
    /// Served from the on-disk store.
    Disk,
}

impl CacheSource {
    /// Stable lowercase tag for provenance reports and events.
    pub fn tag(&self) -> &'static str {
        match self {
            CacheSource::None => "none",
            CacheSource::Memory => "memory",
            CacheSource::Disk => "disk",
        }
    }

    /// Whether this is a cache hit of any tier.
    pub fn is_hit(&self) -> bool {
        !matches!(self, CacheSource::None)
    }
}

/// Monotonic counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served by the memory tier.
    pub hits: usize,
    /// Lookups served by the disk tier (decoded and promoted to memory).
    pub disk_hits: usize,
    /// Lookups that found nothing in any tier.
    pub misses: usize,
    /// Values stored in the memory tier.
    pub insertions: usize,
    /// Values persisted to the disk tier.
    pub persisted: usize,
}

/// Thread-safe content-addressed cache of job results.
#[derive(Default)]
pub struct ResultCache {
    map: Mutex<HashMap<(JobKind, u64), JobValue>>,
    disk: Option<(Arc<DiskStore>, Arc<dyn ValueCodec>)>,
    hits: AtomicUsize,
    disk_hits: AtomicUsize,
    misses: AtomicUsize,
    insertions: AtomicUsize,
    persisted: AtomicUsize,
}

impl ResultCache {
    /// An empty in-memory cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// An empty cache backed by an on-disk store. Values the `codec`
    /// declines to encode live in the memory tier only.
    pub fn with_disk(store: Arc<DiskStore>, codec: Arc<dyn ValueCodec>) -> Self {
        ResultCache {
            disk: Some((store, codec)),
            ..ResultCache::default()
        }
    }

    /// The attached disk store, if any.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.disk.as_ref().map(|(s, _)| s)
    }

    /// Look up a result together with the tier that served it. A disk
    /// hit is decoded and promoted into the memory tier.
    pub fn lookup(&self, kind: JobKind, fingerprint: u64) -> Option<(JobValue, CacheSource)> {
        if let Some(v) = self.map.lock().unwrap().get(&(kind, fingerprint)).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some((v, CacheSource::Memory));
        }
        if let Some((store, codec)) = &self.disk {
            if let Some(bytes) = store.load(kind, fingerprint) {
                if let Some(value) = codec.decode(kind, &bytes) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    self.map
                        .lock()
                        .unwrap()
                        .insert((kind, fingerprint), value.clone());
                    return Some((value, CacheSource::Disk));
                }
                // Structurally intact entry the codec doesn't recognize
                // (e.g. written by a different pipeline): evict it and
                // recompute, so the subsequent put can persist a
                // readable replacement (put skips the disk write when
                // an entry file is already present).
                store.evict_entry(kind, fingerprint);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Look up a result, counting a hit or miss.
    pub fn get(&self, kind: JobKind, fingerprint: u64) -> Option<JobValue> {
        self.lookup(kind, fingerprint).map(|(v, _)| v)
    }

    /// Store a result (last writer wins; values are cheap `Arc` clones).
    /// With a disk tier attached, encodable values are also persisted —
    /// best-effort: an I/O failure leaves the memory tier authoritative
    /// and is visible in [`crate::StoreStats::save_errors`]. An entry a
    /// peer process already published is not re-written (deterministic
    /// jobs make same-address entries byte-identical), only pinned into
    /// this run's GC live set.
    pub fn put(&self, kind: JobKind, fingerprint: u64, value: JobValue) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .unwrap()
            .insert((kind, fingerprint), value.clone());
        if let Some((store, codec)) = &self.disk {
            if store.contains(kind, fingerprint) {
                store.mark_live(kind, fingerprint);
            } else if let Some(bytes) = codec.encode(kind, &value) {
                if store.save(kind, fingerprint, &bytes).is_ok() {
                    self.persisted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Number of entries in the memory tier.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
        }
    }

    /// Drop all memory-tier entries (counters and disk entries are
    /// preserved).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hit_miss_and_insert_counters() {
        let cache = ResultCache::new();
        assert!(cache.get(JobKind::Lock, 1).is_none());
        cache.put(JobKind::Lock, 1, Arc::new(42u64));
        let (v, src) = cache.lookup(JobKind::Lock, 1).expect("hit");
        assert_eq!(*v.downcast::<u64>().unwrap(), 42);
        assert_eq!(src, CacheSource::Memory);
        // Same fingerprint under a different kind is a different entry.
        assert!(cache.get(JobKind::Train, 1).is_none());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                disk_hits: 0,
                misses: 2,
                insertions: 1,
                persisted: 0,
            }
        );
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    /// Codec for plain `String` values, used by cache/executor tests.
    struct StringCodec;

    impl ValueCodec for StringCodec {
        fn encode(&self, _kind: JobKind, value: &JobValue) -> Option<Vec<u8>> {
            value
                .downcast_ref::<String>()
                .map(|s| s.as_bytes().to_vec())
        }

        fn decode(&self, _kind: JobKind, bytes: &[u8]) -> Option<JobValue> {
            Some(Arc::new(String::from_utf8(bytes.to_vec()).ok()?) as JobValue)
        }
    }

    #[test]
    fn disk_tier_survives_memory_clear() {
        let dir = std::env::temp_dir().join(format!("gnnunlock-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let cache = ResultCache::with_disk(store.clone(), Arc::new(StringCodec));

        cache.put(JobKind::Train, 5, Arc::new("hello".to_string()));
        assert_eq!(store.stats().saves, 1);
        // Memory tier serves first…
        assert_eq!(
            cache.lookup(JobKind::Train, 5).unwrap().1,
            CacheSource::Memory
        );
        // …and after a clear (≈ a new process) the disk tier takes over.
        cache.clear();
        let (v, src) = cache.lookup(JobKind::Train, 5).expect("disk hit");
        assert_eq!(src, CacheSource::Disk);
        assert_eq!(v.downcast_ref::<String>().unwrap(), "hello");
        // The disk hit was promoted to memory.
        assert_eq!(
            cache.lookup(JobKind::Train, 5).unwrap().1,
            CacheSource::Memory
        );
        assert_eq!(cache.stats().disk_hits, 1);
        // Unencodable values (not Strings) stay memory-only.
        cache.put(JobKind::Lock, 6, Arc::new(42u64));
        assert_eq!(store.stats().saves, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
