//! Content-addressed in-memory result cache.
//!
//! Results are keyed on `(JobKind, fingerprint)` where the fingerprint is
//! a content hash of everything that determines the job's output (scheme,
//! benchmark, key size, seed, scale, hyperparameters…). Sharing one cache
//! across [`crate::Executor`] runs lets repeated campaigns skip redundant
//! locking / synthesis / dataset / training work entirely.

use crate::graph::{JobKind, JobValue};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Monotonic counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a value.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Values stored.
    pub insertions: usize,
}

/// Thread-safe content-addressed cache of job results.
#[derive(Default)]
pub struct ResultCache {
    map: Mutex<HashMap<(JobKind, u64), JobValue>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    insertions: AtomicUsize,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Look up a result, counting a hit or miss.
    pub fn get(&self, kind: JobKind, fingerprint: u64) -> Option<JobValue> {
        let found = self.map.lock().unwrap().get(&(kind, fingerprint)).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a result (last writer wins; values are cheap `Arc` clones).
    pub fn put(&self, kind: JobKind, fingerprint: u64, value: JobValue) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.map.lock().unwrap().insert((kind, fingerprint), value);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
        }
    }

    /// Drop all entries (counters are preserved).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hit_miss_and_insert_counters() {
        let cache = ResultCache::new();
        assert!(cache.get(JobKind::Lock, 1).is_none());
        cache.put(JobKind::Lock, 1, Arc::new(42u64));
        let v = cache.get(JobKind::Lock, 1).expect("hit");
        assert_eq!(*v.downcast::<u64>().unwrap(), 42);
        // Same fingerprint under a different kind is a different entry.
        assert!(cache.get(JobKind::Train, 1).is_none());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                insertions: 1
            }
        );
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
