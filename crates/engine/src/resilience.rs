//! Deterministic retry / timeout / degradation layer around every
//! [`StoreBackend`].
//!
//! [`crate::DiskStore::open_opts`] wraps whatever backend it is handed
//! in a [`ResilientBackend`], so the policy below applies uniformly to
//! `local`, `memory` and `object` substrates:
//!
//! - **[`RetryPolicy`]** — transient failures ([`io::ErrorKind::WouldBlock`],
//!   `Interrupted`, `TimedOut`) retry with exponential backoff and
//!   seeded jitter. The backoff schedule is a pure function of the
//!   knobs and the attempt number — same knobs, same waits, at any
//!   worker count — and every pause goes through
//!   [`StoreBackend::backoff_wait`], so deterministic backends charge a
//!   virtual clock instead of sleeping. A per-op deadline bounds the
//!   total (virtual) pause budget; attempts and deadline are capped by
//!   the `GNNUNLOCK_STORE_RETRY_*` knobs.
//! - **[`HealthTracker`]** — a consecutive-failure circuit breaker.
//!   Only *exhausted* retries count as failures (verdict errors like
//!   `AlreadyExists` or `NotFound` prove the service is answering);
//!   after `GNNUNLOCK_STORE_BREAKER_THRESHOLD` of them the breaker
//!   trips open and operations fail fast with a `store-degraded` error
//!   instead of hammering a dead substrate. While open, every
//!   `GNNUNLOCK_STORE_BREAKER_PROBE_EVERY`-th rejected operation is
//!   admitted as a half-open probe; one probe success closes the
//!   breaker.
//! - **Publish spill queue** — publishes are content-addressed and
//!   idempotent, so ones that fail degraded/exhausted are buffered (up
//!   to [`SPILL_CAP`] entries) and replayed after the next successful
//!   operation — cache writes lost to an outage heal on recovery.
//!
//! Degradation is surfaced, never hidden: the failed operation still
//! errors (callers decide whether persistence was best-effort), shard
//! bodies convert a degraded store into a clean `store-degraded` stage
//! error instead of polling forever, and the daemon records the backend
//! error in the campaign's status file.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

use crate::backend::{is_transient_kind, FileMeta, StoreBackend};
use crate::metrics;

/// Maximum retry attempts per logical operation (default 4; minimum 1).
pub const STORE_RETRY_ATTEMPTS_ENV: &str = "GNNUNLOCK_STORE_RETRY_ATTEMPTS";
/// First backoff pause in milliseconds (default 10; 0 disables pauses).
pub const STORE_RETRY_BASE_MS_ENV: &str = "GNNUNLOCK_STORE_RETRY_BASE_MS";
/// Per-operation budget for the *sum* of backoff pauses, in
/// milliseconds (default 30000).
pub const STORE_RETRY_DEADLINE_MS_ENV: &str = "GNNUNLOCK_STORE_RETRY_DEADLINE_MS";
/// Seed for the deterministic backoff jitter (default 0x5EED).
pub const STORE_RETRY_JITTER_SEED_ENV: &str = "GNNUNLOCK_STORE_RETRY_JITTER_SEED";
/// Consecutive exhausted-retry failures that trip the breaker open
/// (default 3; minimum 1).
pub const STORE_BREAKER_THRESHOLD_ENV: &str = "GNNUNLOCK_STORE_BREAKER_THRESHOLD";
/// While open, admit every n-th rejected operation as a half-open probe
/// (default 8; minimum 1).
pub const STORE_BREAKER_PROBE_EVERY_ENV: &str = "GNNUNLOCK_STORE_BREAKER_PROBE_EVERY";

/// Marker prefix of every fail-fast error emitted while the breaker is
/// open — what shard bodies and the daemon grep for.
pub const DEGRADED_PREFIX: &str = "store-degraded";

/// Bound on the publish spill queue (entries, not bytes — entries are
/// small cache payloads; overflow drops the *newest* publish and counts
/// it, so the queue never reorders).
pub const SPILL_CAP: usize = 256;

/// A fail-fast error for an operation rejected by an open breaker.
pub fn degraded_error(backend: &str, op: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionRefused,
        format!("{DEGRADED_PREFIX}: {backend} backend circuit breaker is open ({op} rejected)"),
    )
}

/// Whether `e` is the resilience layer's fail-fast degradation error —
/// a *store* verdict, not an entry verdict: loads treat it as a miss
/// without evicting, shard bodies fail the job cleanly.
pub fn is_degraded(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::ConnectionRefused && e.to_string().starts_with(DEGRADED_PREFIX)
}

/// Deterministic exponential backoff with seeded jitter, attempt caps
/// and a per-op deadline. All parameters come from the
/// `GNNUNLOCK_STORE_RETRY_*` knobs (malformed values warn via
/// [`crate::env`] and fall back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (>= 1).
    pub attempts: u32,
    /// First backoff pause; attempt `n` waits `base * 2^(n-1)` scaled
    /// by jitter.
    pub base: Duration,
    /// Budget for the sum of pauses of one operation.
    pub deadline: Duration,
    /// Jitter seed: the pause for attempt `n` is a pure function of
    /// `(seed, n)`.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            deadline: Duration::from_secs(30),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The policy selected by the `GNNUNLOCK_STORE_RETRY_*` knobs.
    pub fn from_env() -> Self {
        let d = RetryPolicy::default();
        RetryPolicy {
            attempts: crate::env::knob_validated::<u32>(
                STORE_RETRY_ATTEMPTS_ENV,
                "a positive attempt count",
                |&n| n >= 1,
            )
            .unwrap_or(d.attempts),
            base: Duration::from_millis(
                crate::env::knob::<u64>(STORE_RETRY_BASE_MS_ENV, "milliseconds")
                    .unwrap_or(d.base.as_millis() as u64),
            ),
            deadline: Duration::from_millis(
                crate::env::knob_validated::<u64>(
                    STORE_RETRY_DEADLINE_MS_ENV,
                    "a positive millisecond budget",
                    |&ms| ms >= 1,
                )
                .unwrap_or(d.deadline.as_millis() as u64),
            ),
            jitter_seed: crate::env::knob::<u64>(STORE_RETRY_JITTER_SEED_ENV, "an integer seed")
                .unwrap_or(d.jitter_seed),
        }
    }

    /// The pause before retry attempt `attempt + 1` (1-based): the
    /// exponential step `base * 2^(attempt-1)` scaled into [50%, 100%]
    /// by jitter derived from `(jitter_seed, attempt)` alone.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let full_us = (self.base.as_micros() as u64).saturating_mul(1u64 << shift);
        let mut x = self
            .jitter_seed
            .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        let frac = x % 513; // 0..=512
        Duration::from_micros(full_us / 2 + (full_us / 2) * frac / 512)
    }

    /// Run `body` under this policy: transient failures retry (pausing
    /// through `backend`'s clock) until they succeed, a verdict error
    /// occurs, attempts run out, or the summed pauses would exceed the
    /// deadline. Retries and pauses are counted into
    /// `store_retries_total{op}` / `store_backoff_ms`.
    pub fn run<T>(
        &self,
        backend: &dyn StoreBackend,
        op: &'static str,
        mut body: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let mut waited = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match body() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient_kind(e.kind()) && attempt < self.attempts.max(1) => {
                    let pause = self.backoff(attempt);
                    if waited + pause > self.deadline {
                        return Err(io::Error::new(
                            e.kind(),
                            format!(
                                "{op}: retry deadline exceeded after {attempt} attempts \
                                 ({} ms budget): {e}",
                                self.deadline.as_millis()
                            ),
                        ));
                    }
                    waited += pause;
                    metrics::store_retry(op).inc();
                    metrics::store_backoff_ms().observe(pause.as_secs_f64() * 1e3);
                    backend.backoff_wait(pause);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Circuit-breaker state, in the order the `store_breaker_state` gauge
/// reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every operation admitted.
    Closed = 0,
    /// A probe is in flight; other operations rejected.
    HalfOpen = 1,
    /// Tripped: operations fail fast, probes admitted periodically.
    Open = 2,
}

#[derive(Debug)]
struct HealthInner {
    state: BreakerState,
    consecutive_failures: u32,
    rejected_since_probe: u32,
    trips: u64,
}

/// Per-backend consecutive-failure circuit breaker with half-open
/// probes. Deliberately clock-free: "time open" is measured in rejected
/// operations, not seconds, so the breaker matrix is as deterministic
/// as the retry matrix.
#[derive(Debug)]
pub struct HealthTracker {
    threshold: u32,
    probe_every: u32,
    inner: Mutex<HealthInner>,
}

impl HealthTracker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// probing every `probe_every`-th rejected operation.
    pub fn new(threshold: u32, probe_every: u32) -> Self {
        HealthTracker {
            threshold: threshold.max(1),
            probe_every: probe_every.max(1),
            inner: Mutex::new(HealthInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                rejected_since_probe: 0,
                trips: 0,
            }),
        }
    }

    /// The breaker selected by the `GNNUNLOCK_STORE_BREAKER_*` knobs.
    pub fn from_env() -> Self {
        HealthTracker::new(
            crate::env::knob_validated::<u32>(
                STORE_BREAKER_THRESHOLD_ENV,
                "a positive failure threshold",
                |&n| n >= 1,
            )
            .unwrap_or(3),
            crate::env::knob_validated::<u32>(
                STORE_BREAKER_PROBE_EVERY_ENV,
                "a positive probe period",
                |&n| n >= 1,
            )
            .unwrap_or(8),
        )
    }

    /// Consecutive exhausted failures that trip the breaker.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Rejected operations between half-open probes while tripped.
    pub fn probe_every(&self) -> u32 {
        self.probe_every
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.inner.lock().unwrap().trips
    }

    /// Admission decision for the next operation: `true` = run it
    /// (possibly as the half-open probe), `false` = fail fast.
    pub fn admit(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                inner.rejected_since_probe += 1;
                if inner.rejected_since_probe >= self.probe_every {
                    inner.rejected_since_probe = 0;
                    inner.state = BreakerState::HalfOpen;
                    metrics::store_breaker_state().set(BreakerState::HalfOpen as i64);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report an admitted operation's outcome. `healthy` means the
    /// service answered (success *or* a verdict error); only exhausted
    /// retries report `false`.
    pub fn record(&self, healthy: bool) {
        let mut inner = self.inner.lock().unwrap();
        match (inner.state, healthy) {
            (BreakerState::HalfOpen, true) | (BreakerState::Closed, true) => {
                if inner.state == BreakerState::HalfOpen {
                    metrics::store_breaker_state().set(BreakerState::Closed as i64);
                }
                inner.state = BreakerState::Closed;
                inner.consecutive_failures = 0;
            }
            (BreakerState::HalfOpen, false) => {
                inner.state = BreakerState::Open;
                metrics::store_breaker_state().set(BreakerState::Open as i64);
            }
            (BreakerState::Closed, false) => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.state = BreakerState::Open;
                    inner.trips += 1;
                    metrics::store_breaker_state().set(BreakerState::Open as i64);
                }
            }
            (BreakerState::Open, _) => {}
        }
    }
}

/// A [`StoreBackend`] wrapping another with the retry policy, circuit
/// breaker and publish spill queue described in the [module
/// docs](self). Constructed by [`crate::DiskStore::open_opts`] around
/// every backend it is handed.
#[derive(Debug)]
pub struct ResilientBackend {
    inner: Arc<dyn StoreBackend>,
    policy: RetryPolicy,
    health: HealthTracker,
    spill: Mutex<VecDeque<(PathBuf, Vec<u8>)>>,
}

impl ResilientBackend {
    /// Wrap `inner` with the env-selected policy and breaker.
    pub fn wrap(inner: Arc<dyn StoreBackend>) -> Arc<Self> {
        ResilientBackend::with_policy(inner, RetryPolicy::from_env(), HealthTracker::from_env())
    }

    /// Wrap `inner` with an explicit policy and breaker.
    pub fn with_policy(
        inner: Arc<dyn StoreBackend>,
        policy: RetryPolicy,
        health: HealthTracker,
    ) -> Arc<Self> {
        Arc::new(ResilientBackend {
            inner,
            policy,
            health,
            spill: Mutex::new(VecDeque::new()),
        })
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn StoreBackend> {
        &self.inner
    }

    /// The breaker guarding the wrapped backend.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Publishes currently buffered for replay.
    pub fn spilled(&self) -> usize {
        self.spill.lock().unwrap().len()
    }

    fn guarded<T>(&self, op: &'static str, body: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        if !self.health.admit() {
            return Err(degraded_error(self.inner.name(), op));
        }
        let out = self.policy.run(self.inner.as_ref(), op, body);
        // Exhausted retries (still-transient error) are the only
        // unhealthy outcome; a verdict error proves the service
        // answered.
        let healthy = !matches!(&out, Err(e) if is_transient_kind(e.kind()));
        self.health.record(healthy);
        if healthy {
            self.drain_spill();
        }
        out
    }

    /// Replay buffered publishes until the queue is empty or the
    /// backend fails again. Publishes are content-addressed, so a late
    /// replay of an entry that was since republished is a no-op
    /// overwrite with identical bytes.
    fn drain_spill(&self) {
        loop {
            let Some((path, bytes)) = self.spill.lock().unwrap().pop_front() else {
                return;
            };
            match self.policy.run(self.inner.as_ref(), "spill_drain", || {
                self.inner.publish(&path, &bytes)
            }) {
                Ok(()) => metrics::store_event("spill_drained").inc(),
                Err(_) => {
                    self.spill.lock().unwrap().push_front((path, bytes));
                    return;
                }
            }
        }
    }
}

impl StoreBackend for ResilientBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn ensure_dir(&self, dir: &Path) -> io::Result<()> {
        self.guarded("ensure_dir", || self.inner.ensure_dir(dir))
    }

    fn publish(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let out = self.guarded("publish", || self.inner.publish(path, bytes));
        if let Err(e) = &out {
            if is_degraded(e) || is_transient_kind(e.kind()) {
                let mut spill = self.spill.lock().unwrap();
                if spill.len() < SPILL_CAP {
                    spill.push_back((path.to_path_buf(), bytes.to_vec()));
                    metrics::store_event("spilled").inc();
                } else {
                    metrics::store_event("spill_dropped").inc();
                }
            }
        }
        out
    }

    fn claim(&self, path: &Path, content: &[u8]) -> io::Result<()> {
        self.guarded("claim", || self.inner.claim(path, content))
    }

    fn entomb(&self, path: &Path, tomb: &Path) -> io::Result<()> {
        self.guarded("entomb", || self.inner.entomb(path, tomb))
    }

    fn load(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.guarded("load", || self.inner.load(path))
    }

    fn contains(&self, path: &Path) -> bool {
        self.inner.contains(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.guarded("remove", || self.inner.remove(path))
    }

    fn refresh(&self, path: &Path) -> io::Result<()> {
        self.guarded("refresh", || self.inner.refresh(path))
    }

    fn mtime(&self, path: &Path) -> io::Result<SystemTime> {
        self.guarded("mtime", || self.inner.mtime(path))
    }

    fn list(&self, dir: &Path, recursive: bool) -> io::Result<Vec<FileMeta>> {
        self.guarded("list", || self.inner.list(dir, recursive))
    }

    fn backoff_wait(&self, pause: Duration) {
        self.inner.backoff_wait(pause);
    }

    fn degraded(&self) -> bool {
        self.health.state() == BreakerState::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Fault, FaultBackend, FaultOp, FaultRule};

    fn policy() -> RetryPolicy {
        RetryPolicy::default()
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let p = policy();
        for attempt in 1..=6 {
            assert_eq!(p.backoff(attempt), p.backoff(attempt), "pure function");
            let full = p.base * 2u32.pow(attempt - 1);
            assert!(p.backoff(attempt) >= full / 2 && p.backoff(attempt) <= full);
        }
        let other = RetryPolicy {
            jitter_seed: 99,
            ..policy()
        };
        assert!(
            (1..=6).any(|a| other.backoff(a) != p.backoff(a)),
            "different seeds must jitter differently"
        );
    }

    #[test]
    fn transient_errors_retry_timing_free_until_success() {
        let b = FaultBackend::with_rules([
            FaultRule::on(FaultOp::Load, ".bin", Fault::Transient),
            FaultRule::on(FaultOp::Load, ".bin", Fault::Latency(5)).after(1),
        ]);
        let path = Path::new("/v/x.bin");
        b.publish(path, b"payload").unwrap();
        let got = policy()
            .run(&b, "load", || b.load(path))
            .expect("two transients inside a 4-attempt budget");
        assert_eq!(got, b"payload");
        // Two pauses were charged to the virtual clock, not slept.
        assert!(b.virtual_waited() >= Duration::from_millis(5));
    }

    #[test]
    fn verdict_errors_are_never_retried() {
        let b = FaultBackend::new();
        let path = Path::new("/v/x.lease");
        b.claim(path, b"mine").unwrap();
        let mut calls = 0;
        let err = policy()
            .run(&b, "claim", || {
                calls += 1;
                b.claim(path, b"theirs")
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(calls, 1, "a verdict is not a transient failure");
    }

    #[test]
    fn deadline_bounds_the_summed_pauses() {
        let b = FaultBackend::with_rules(
            (0..8).map(|i| FaultRule::on(FaultOp::Load, "", Fault::Transient).after(i)),
        );
        b.publish(Path::new("/v/x"), b"p").unwrap();
        let tight = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            deadline: Duration::from_millis(12),
            ..policy()
        };
        let err = tight
            .run(&b, "load", || b.load(Path::new("/v/x")))
            .unwrap_err();
        assert!(is_transient_kind(err.kind()));
        assert!(err.to_string().contains("deadline exceeded"), "got: {err}");
        assert!(b.virtual_waited() <= Duration::from_millis(12));
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_probe() {
        let h = HealthTracker::new(2, 3);
        assert_eq!(h.state(), BreakerState::Closed);
        assert!(h.admit());
        h.record(false);
        assert_eq!(h.state(), BreakerState::Closed, "one failure is not enough");
        assert!(h.admit());
        h.record(false);
        assert_eq!(h.state(), BreakerState::Open);
        assert_eq!(h.trips(), 1);
        // Two rejections, then the third admission is the probe.
        assert!(!h.admit());
        assert!(!h.admit());
        assert!(h.admit(), "every 3rd rejected op probes");
        assert_eq!(h.state(), BreakerState::HalfOpen);
        assert!(!h.admit(), "only one probe in flight");
        h.record(true);
        assert_eq!(h.state(), BreakerState::Closed);
        // A healthy verdict resets the failure streak.
        h.record(false);
        h.record(true);
        h.record(false);
        assert_eq!(h.state(), BreakerState::Closed);
    }

    #[test]
    fn degraded_backend_fails_fast_and_spills_publishes() {
        let inner = Arc::new(FaultBackend::new());
        // A long outage: every gated operation times out.
        inner.inject(FaultRule::on(
            FaultOp::Load,
            "",
            Fault::Unavailable(usize::MAX),
        ));
        let wrapped = ResilientBackend::with_policy(
            inner.clone() as Arc<dyn StoreBackend>,
            RetryPolicy {
                attempts: 2,
                ..policy()
            },
            HealthTracker::new(2, 4),
        );
        // Two exhausted loads trip the breaker...
        assert!(wrapped.load(Path::new("/v/a")).is_err());
        assert!(wrapped.load(Path::new("/v/b")).is_err());
        assert!(wrapped.degraded());
        // ...after which operations fail fast with the degraded marker
        // and publishes are buffered for replay.
        let err = wrapped
            .publish(Path::new("/v/x.bin"), b"payload")
            .unwrap_err();
        assert!(is_degraded(&err), "got: {err}");
        assert_eq!(wrapped.spilled(), 1);
        assert!(!inner.contains(Path::new("/v/x.bin")));
        // Recovery: the outage ends; the 4th rejected op probes, the
        // probe succeeds, the breaker closes, and the spill drains.
        inner.clear_rules();
        let mut attempts = 0;
        while wrapped.degraded() && attempts < 16 {
            let _ = wrapped.load(Path::new("/v/x.bin"));
            attempts += 1;
        }
        assert!(!wrapped.degraded(), "breaker must close after a probe");
        assert_eq!(wrapped.spilled(), 0, "spill drains on recovery");
        assert_eq!(inner.read_raw(Path::new("/v/x.bin")).unwrap(), b"payload");
        // All of the above ran timing-free.
        assert_eq!(wrapped.health().trips(), 1, "one trip for the whole outage");
    }
}
