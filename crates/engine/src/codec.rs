//! Value codecs: turning dynamically-typed job outputs into bytes and
//! back, so the [`crate::DiskStore`] can persist them.
//!
//! The engine is type-agnostic — job values are `Arc<dyn Any>` — so
//! persistence needs help from whoever knows the concrete types: a
//! [`ValueCodec`] supplied by the campaign runner
//! ([`crate::CampaignRunner::codec`]). A codec may decline any value
//! (return `None`), in which case that job simply isn't persisted and
//! will be recomputed by cold processes; deterministic stages make that
//! safe, merely slower.
//!
//! [`ByteWriter`] / [`ByteReader`] are the little-endian primitives both
//! the store's entry headers and downstream codecs are built on. Reads
//! are all checked (`Option`), so a truncated or alien payload decodes
//! to `None` instead of panicking — the cache treats that as a miss.

use crate::graph::{JobKind, JobValue};

/// Encodes/decodes job outputs for on-disk persistence.
///
/// Implementations must be *self-consistent*: `decode(kind,
/// encode(kind, v))` must reproduce a value observationally identical to
/// `v` (dependents downcast it to the same concrete type and read the
/// same contents). When one `JobKind` can carry several concrete types
/// (e.g. different pipelines sharing a cache directory), prefix the
/// payload with a type tag and dispatch on it in `decode`.
pub trait ValueCodec: Send + Sync {
    /// Encode `value`, or `None` when this value should not be
    /// persisted.
    fn encode(&self, kind: JobKind, value: &JobValue) -> Option<Vec<u8>>;

    /// Decode a payload previously produced by `encode` for the same
    /// `kind`. `None` means the payload is unrecognized; the cache
    /// treats the entry as a miss.
    fn decode(&self, kind: JobKind, bytes: &[u8]) -> Option<JobValue>;
}

/// Little-endian byte-stream writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` (as `u64`, platform-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f32` (raw bits — bit-exact round trip).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Append an `f64` (raw bits — bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a `bool`.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// Checked little-endian byte-stream reader; every method returns
/// `None` on underrun or malformed data.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed (codecs should check this
    /// last to reject trailing garbage).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` (rejects values over `usize::MAX`).
    pub fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// Read an `f32` (raw bits).
    pub fn f32(&mut self) -> Option<f32> {
        Some(f32::from_bits(self.u32()?))
    }

    /// Read an `f64` (raw bits).
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Read a `bool` (strictly 0 or 1).
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.usize()?;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.usize(123_456);
        w.f32(-0.25);
        w.f64(std::f64::consts::PI);
        w.bool(true);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.usize(), Some(123_456));
        assert_eq!(r.f32(), Some(-0.25));
        assert_eq!(r.f64(), Some(std::f64::consts::PI));
        assert_eq!(r.bool(), Some(true));
        assert_eq!(r.str().as_deref(), Some("héllo"));
        assert_eq!(r.bytes(), Some(&[1u8, 2, 3][..]));
        assert!(r.is_exhausted());
        // Reads past the end fail instead of panicking.
        assert_eq!(r.u8(), None);
    }

    #[test]
    fn truncated_and_malformed_reads_fail() {
        let mut w = ByteWriter::new();
        w.str("payload");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
        assert_eq!(r.str(), None);
        // A bool byte outside {0,1} is malformed.
        let mut r = ByteReader::new(&[9]);
        assert_eq!(r.bool(), None);
        // Absurd length prefix: fails cleanly.
        let absurd_len = u64::MAX.to_le_bytes();
        let mut r = ByteReader::new(&absurd_len);
        assert_eq!(r.bytes(), None);
    }
}
