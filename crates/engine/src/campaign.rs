//! Campaigns: declarative {benchmark × scheme × key size × seed}
//! matrices expanded into job graphs.
//!
//! A [`Campaign`] captures the *shape* of an experiment — which
//! benchmarks, locking schemes, key sizes and lock seeds, and which
//! pipeline stages (lock → synth → dataset → train → attack → verify →
//! aggregate) apply — without knowing anything about netlists or GNNs.
//! A [`CampaignRunner`] supplies the semantics of each stage; the
//! GNNUnlock implementation lives in `gnnunlock-core::campaign`, keeping
//! this crate std-only and dependency-free.
//!
//! The expansion is deterministic: job ids, labels and dependency lists
//! depend only on the campaign spec, so one campaign run on 1 worker and
//! one on 16 produce byte-identical [`crate::RunReport`]s.

use crate::cache::ResultCache;
use crate::codec::ValueCodec;
use crate::events::{Event, EventLog, EVENTS_FILE};
use crate::exec::{ExecConfig, Executor, RunOutcome};
use crate::graph::{fingerprint_fields, JobCtx, JobGraph, JobId, JobKind, JobOutput};
use crate::report::{ReportOptions, RunReport};
use crate::store::DiskStore;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// One planned unit of campaign work, interpreted by a
/// [`CampaignRunner`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StageJob {
    /// Pipeline stage.
    pub kind: JobKind,
    /// Locking scheme tag (runner-defined vocabulary, e.g. `antisat`).
    pub scheme: String,
    /// Benchmark name, for per-benchmark stages.
    pub benchmark: Option<String>,
    /// Key size, for per-instance stages.
    pub key_bits: Option<usize>,
    /// Lock-seed index, for per-instance stages.
    pub seed: Option<u64>,
}

impl StageJob {
    /// Stable human-readable label, e.g. `attack/antisat/c7552/k16/s1`.
    pub fn label(&self) -> String {
        let mut s = format!("{}/{}", self.kind.tag(), self.scheme);
        if let Some(b) = &self.benchmark {
            s.push('/');
            s.push_str(b);
        }
        if let Some(k) = self.key_bits {
            s.push_str(&format!("/k{k}"));
        }
        if let Some(seed) = self.seed {
            s.push_str(&format!("/s{seed}"));
        }
        s
    }

    /// Content fingerprint of this job under `salt` (the runner's
    /// configuration identity).
    pub fn fingerprint(&self, salt: u64) -> u64 {
        fingerprint_fields(&[
            self.kind.tag(),
            &self.scheme,
            self.benchmark.as_deref().unwrap_or(""),
            &self.key_bits.map(|k| k.to_string()).unwrap_or_default(),
            &self.seed.map(|s| s.to_string()).unwrap_or_default(),
            &salt.to_string(),
        ])
    }
}

/// Stage semantics for a campaign.
///
/// Implementations receive each [`StageJob`] together with its
/// dependencies' outputs (in the order listed by the plan) and return the
/// stage's output. They must be deterministic for cache correctness: the
/// output may be served from the result cache whenever `(stage kind,
/// fingerprint)` matches, and [`CampaignRunner::config_salt`] is the
/// place to fold in every configuration bit that affects outputs (scale,
/// library, training hyperparameters…).
pub trait CampaignRunner: Sync {
    /// Configuration identity mixed into every job fingerprint.
    fn config_salt(&self) -> u64 {
        0
    }

    /// The codec used to persist this runner's stage outputs on disk
    /// ([`Campaign::execute_persistent`] / [`Campaign::resume`]).
    /// `None` (the default) keeps results in memory only; persistent
    /// runs still stream events and write the version-gated store
    /// directory, but every job recomputes in a fresh process.
    fn codec(&self) -> Option<Arc<dyn ValueCodec>> {
        None
    }

    /// Execute one stage job.
    fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput;
}

/// Builder for [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    name: String,
    schemes: Vec<String>,
    benchmarks: Vec<String>,
    key_sizes: Vec<usize>,
    seeds: Vec<u64>,
    synth: bool,
    verify: bool,
}

impl CampaignBuilder {
    /// Start a campaign named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignBuilder {
            name: name.into(),
            schemes: Vec::new(),
            benchmarks: Vec::new(),
            key_sizes: Vec::new(),
            seeds: vec![0],
            synth: false,
            verify: true,
        }
    }

    /// Add a locking-scheme axis value (runner vocabulary).
    pub fn scheme(mut self, tag: impl Into<String>) -> Self {
        self.schemes.push(tag.into());
        self
    }

    /// Add benchmark axis values.
    pub fn benchmarks<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.benchmarks.extend(names.into_iter().map(Into::into));
        self
    }

    /// Add key-size axis values.
    pub fn key_sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.key_sizes.extend(sizes);
        self
    }

    /// Lock-seed indices (default: the single seed 0).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Include the synthesis stage between lock and dataset (Verilog
    /// flows). Off by default.
    pub fn with_synthesis(mut self, yes: bool) -> Self {
        self.synth = yes;
        self
    }

    /// Include the SAT-verification stage after each attack. On by
    /// default.
    pub fn with_verification(mut self, yes: bool) -> Self {
        self.verify = yes;
        self
    }

    /// Expand the matrix into a [`Campaign`].
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty — an empty campaign is always a
    /// caller bug.
    pub fn build(self) -> Campaign {
        assert!(!self.schemes.is_empty(), "campaign has no schemes");
        assert!(!self.benchmarks.is_empty(), "campaign has no benchmarks");
        assert!(!self.key_sizes.is_empty(), "campaign has no key sizes");
        assert!(!self.seeds.is_empty(), "campaign has no seeds");
        let mut plan: Vec<(StageJob, Vec<usize>)> = Vec::new();
        let mut push = |job: StageJob, deps: Vec<usize>| -> usize {
            plan.push((job, deps));
            plan.len() - 1
        };
        let job =
            |kind, scheme: &str, benchmark: Option<&str>, k: Option<usize>, s: Option<u64>| {
                StageJob {
                    kind,
                    scheme: scheme.to_string(),
                    benchmark: benchmark.map(str::to_string),
                    key_bits: k,
                    seed: s,
                }
            };

        for scheme in &self.schemes {
            // Per-instance lock (and optional synth) jobs.
            let mut shard_ids = Vec::new();
            for b in &self.benchmarks {
                for &k in &self.key_sizes {
                    for &s in &self.seeds {
                        let lock = push(
                            job(JobKind::Lock, scheme, Some(b), Some(k), Some(s)),
                            vec![],
                        );
                        let tail = if self.synth {
                            push(
                                job(JobKind::Synth, scheme, Some(b), Some(k), Some(s)),
                                vec![lock],
                            )
                        } else {
                            lock
                        };
                        shard_ids.push(tail);
                    }
                }
            }
            // One dataset-assembly job per scheme.
            let dataset = push(job(JobKind::Dataset, scheme, None, None, None), shard_ids);
            // Leave-one-out: train per target benchmark, then attack (and
            // optionally verify) each of the target's instances.
            let mut tails = Vec::new();
            let mut trains = Vec::new();
            for b in &self.benchmarks {
                let train = push(
                    job(JobKind::Train, scheme, Some(b), None, None),
                    vec![dataset],
                );
                trains.push(train);
                for &k in &self.key_sizes {
                    for &s in &self.seeds {
                        let attack = push(
                            job(JobKind::Attack, scheme, Some(b), Some(k), Some(s)),
                            vec![train, dataset],
                        );
                        let tail = if self.verify {
                            push(
                                job(JobKind::Verify, scheme, Some(b), Some(k), Some(s)),
                                vec![attack],
                            )
                        } else {
                            attack
                        };
                        tails.push(tail);
                    }
                }
            }
            // Per-scheme aggregation over train reports + attack/verify
            // outcomes.
            let mut agg_deps = trains;
            agg_deps.extend(tails);
            push(job(JobKind::Aggregate, scheme, None, None, None), agg_deps);
        }
        Campaign {
            name: self.name,
            schemes: self.schemes,
            plan,
        }
    }
}

/// A fully expanded campaign: a deterministic list of stage jobs with
/// explicit dependencies, ready to execute against any runner.
pub struct Campaign {
    /// Campaign name (report header).
    pub name: String,
    schemes: Vec<String>,
    plan: Vec<(StageJob, Vec<usize>)>,
}

impl Campaign {
    /// Start building a campaign.
    pub fn builder(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder::new(name)
    }

    /// The planned jobs and their dependency indices.
    pub fn plan(&self) -> &[(StageJob, Vec<usize>)] {
        &self.plan
    }

    /// Content hash of the campaign's *shape*: every planned label and
    /// dependency list. Mixed into job fingerprints so two
    /// differently-shaped campaigns sharing one runner and cache never
    /// collide (a dataset job's own fields don't mention the axis sets
    /// that feed it). Also recorded in the event log's `run-started`
    /// record, so [`Campaign::resume`] can refuse to continue a log
    /// written by a differently-shaped campaign.
    pub fn shape_fingerprint(&self) -> u64 {
        let fields: Vec<String> = self
            .plan
            .iter()
            .map(|(job, deps)| format!("{}:{deps:?}", job.label()))
            .collect();
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        fingerprint_fields(&refs)
    }

    /// Execute the campaign on `executor` with `runner` semantics.
    pub fn execute<R: CampaignRunner>(&self, runner: &R, executor: &Executor) -> CampaignRun {
        let salt = fingerprint_fields(&[
            &runner.config_salt().to_string(),
            &self.shape_fingerprint().to_string(),
        ]);
        let mut graph = JobGraph::new();
        for (stage_job, deps) in &self.plan {
            let dep_ids: Vec<JobId> = deps.iter().map(|&d| JobId(d)).collect();
            graph.add(
                stage_job.label(),
                stage_job.kind,
                Some(stage_job.fingerprint(salt)),
                dep_ids,
                move |ctx| runner.run(stage_job, ctx),
            );
        }
        let outcome = executor.run(graph);
        let aggregates = self
            .plan
            .iter()
            .enumerate()
            .filter(|(_, (j, _))| j.kind == JobKind::Aggregate)
            .map(|(i, (j, _))| (j.scheme.clone(), JobId(i)))
            .collect();
        CampaignRun {
            name: self.name.clone(),
            schemes: self.schemes.clone(),
            aggregates,
            outcome,
        }
    }

    /// Build the executor + event log a persistent run uses: a
    /// [`DiskStore`] rooted at `dir` behind the result cache (when the
    /// runner supplies a codec) and the campaign event log at
    /// `dir/events.jsonl`.
    fn persistent_executor<R: CampaignRunner>(
        &self,
        runner: &R,
        cfg: ExecConfig,
        dir: &Path,
        append_events: bool,
    ) -> io::Result<(Executor, Arc<EventLog>)> {
        let store = Arc::new(DiskStore::open(dir)?);
        let cache = match runner.codec() {
            Some(codec) => ResultCache::with_disk(store, codec),
            None => ResultCache::new(),
        };
        let events_path = dir.join(EVENTS_FILE);
        let log = Arc::new(if append_events {
            EventLog::open_append(&events_path)?
        } else {
            EventLog::create(&events_path)?
        });
        let executor = Executor::new(cfg)
            .with_cache(Arc::new(cache))
            .with_events(log.clone());
        Ok((executor, log))
    }

    fn execute_logged<R: CampaignRunner>(
        &self,
        runner: &R,
        executor: &Executor,
        log: &EventLog,
        resumed: bool,
    ) -> CampaignRun {
        log.append(&Event::RunStarted {
            campaign: self.name.clone(),
            jobs: self.plan.len(),
            shape: self.shape_fingerprint(),
            resumed,
        });
        let run = self.execute(runner, executor);
        let stats = run.outcome.stats;
        log.append(&Event::RunFinished {
            succeeded: stats.succeeded(),
            failed: stats.failed,
            skipped: stats.skipped,
            cancelled: stats.cancelled,
        });
        run
    }

    /// Execute the campaign with persistence rooted at `dir`: results
    /// the runner's [`ValueCodec`] can encode are written to the
    /// content-addressed [`DiskStore`] (shareable across processes via
    /// `GNNUNLOCK_CACHE_DIR`), and every job transition streams to
    /// `dir/events.jsonl`, truncating any previous log.
    ///
    /// Determinism: the default [`RunReport`] of a persistent run is
    /// byte-identical to an in-memory run of the same campaign — cold,
    /// warm-from-disk, or resumed.
    ///
    /// # Errors
    ///
    /// Fails when the store cannot be opened (including a schema-version
    /// mismatch) or the event log cannot be created.
    pub fn execute_persistent<R: CampaignRunner>(
        &self,
        runner: &R,
        cfg: ExecConfig,
        dir: &Path,
    ) -> io::Result<CampaignRun> {
        let (executor, log) = self.persistent_executor(runner, cfg, dir, false)?;
        Ok(self.execute_logged(runner, &executor, &log, false))
    }

    /// Resume an interrupted persistent campaign from `dir`: replay the
    /// event log to validate that it belongs to this campaign shape and
    /// count the jobs the crashed run already finished, then re-execute
    /// against the store — persisted results are served from disk, the
    /// rest recompute deterministically. The event log is appended to,
    /// starting with a `run-started` record marked `resumed`.
    ///
    /// # Errors
    ///
    /// Fails when the log's recorded shape fingerprint does not match
    /// this campaign (resuming the wrong directory), or on store/log
    /// I/O errors.
    pub fn resume<R: CampaignRunner>(
        &self,
        runner: &R,
        cfg: ExecConfig,
        dir: &Path,
    ) -> io::Result<(CampaignRun, ResumeInfo)> {
        let replay = EventLog::replay(&dir.join(EVENTS_FILE))?;
        if let Some(shape) = replay.last_shape() {
            if shape != self.shape_fingerprint() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "event log in {} was written by a different campaign \
                         (shape {:016x}, expected {:016x})",
                        dir.display(),
                        shape,
                        self.shape_fingerprint()
                    ),
                ));
            }
        }
        let info = ResumeInfo {
            prior_completed: replay.completed_ids().len(),
            log_truncated: replay.truncated,
        };
        let (executor, log) = self.persistent_executor(runner, cfg, dir, true)?;
        let run = self.execute_logged(runner, &executor, &log, true);
        Ok((run, info))
    }
}

/// What [`Campaign::resume`] recovered from the interrupted run's event
/// log before re-executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeInfo {
    /// Jobs the prior run(s) completed (executed ok or cache-served).
    pub prior_completed: usize,
    /// Whether the log ended in a torn record — the signature of a
    /// writer killed mid-event. The consistent prefix was still used.
    pub log_truncated: bool,
}

/// The result of executing a [`Campaign`].
pub struct CampaignRun {
    /// Campaign name.
    pub name: String,
    /// Scheme tags, in campaign order.
    pub schemes: Vec<String>,
    /// `(scheme, aggregate job id)` pairs, in campaign order.
    pub aggregates: Vec<(String, JobId)>,
    /// Raw executor outcome (records, values, counters).
    pub outcome: RunOutcome,
}

impl CampaignRun {
    /// The aggregate output of `scheme`, downcast to the runner's
    /// aggregate type. `None` if the scheme is unknown or its aggregation
    /// did not succeed.
    pub fn aggregate<T: Send + Sync + 'static>(&self, scheme: &str) -> Option<Arc<T>> {
        let (_, id) = self.aggregates.iter().find(|(s, _)| s == scheme)?;
        self.outcome.value::<T>(*id)
    }

    /// Build the run report (deterministic unless timings are enabled).
    pub fn report(&self, opts: ReportOptions) -> RunReport {
        RunReport::from_outcome(&self.name, &self.outcome, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use crate::graph::JobValue;

    /// Toy runner: every stage emits a string describing itself and its
    /// inputs, so aggregate values encode the whole dependency story.
    struct EchoRunner;

    impl CampaignRunner for EchoRunner {
        fn config_salt(&self) -> u64 {
            7
        }

        fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
            let inputs: Vec<String> = (0..ctx.deps.len())
                .map(|i| ctx.dep::<String>(i).as_ref().clone())
                .collect();
            Ok(Arc::new(format!("{}<-[{}]", job.label(), inputs.join(";"))) as JobValue)
        }
    }

    fn tiny() -> Campaign {
        Campaign::builder("tiny")
            .scheme("antisat")
            .benchmarks(["c1", "c2"])
            .key_sizes([8])
            .seeds([0, 1])
            .build()
    }

    #[test]
    fn plan_has_expected_shape() {
        let c = tiny();
        // 4 locks + 1 dataset + 2 trains + 4 attacks + 4 verifies + 1 agg.
        assert_eq!(c.plan().len(), 16);
        let (agg, agg_deps) = c.plan().last().unwrap();
        assert_eq!(agg.kind, JobKind::Aggregate);
        // 2 trains + 4 verify tails.
        assert_eq!(agg_deps.len(), 6);
        // Synthesis off: no synth jobs.
        assert!(c.plan().iter().all(|(j, _)| j.kind != JobKind::Synth));
        // With synthesis: one synth per lock.
        let c_synth = Campaign::builder("s")
            .scheme("sfll")
            .benchmarks(["c1"])
            .key_sizes([8])
            .with_synthesis(true)
            .build();
        assert_eq!(
            c_synth
                .plan()
                .iter()
                .filter(|(j, _)| j.kind == JobKind::Synth)
                .count(),
            1
        );
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let c = tiny();
        let run1 = c.execute(&EchoRunner, &Executor::new(ExecConfig::with_workers(1)));
        let run4 = c.execute(&EchoRunner, &Executor::new(ExecConfig::with_workers(4)));
        assert_eq!(
            run1.report(ReportOptions::default()).to_json(),
            run4.report(ReportOptions::default()).to_json()
        );
        let a1 = run1.aggregate::<String>("antisat").unwrap();
        let a4 = run4.aggregate::<String>("antisat").unwrap();
        assert_eq!(a1, a4);
    }

    #[test]
    fn repeated_execution_hits_the_cache() {
        let c = tiny();
        let exec = Executor::new(ExecConfig::with_workers(4));
        let first = c.execute(&EchoRunner, &exec);
        assert_eq!(first.outcome.stats.cache_hits(), 0);
        let second = c.execute(&EchoRunner, &exec);
        assert_eq!(second.outcome.stats.cache_hits(), c.plan().len());
        assert_eq!(second.outcome.stats.executed, 0);
        assert_eq!(
            second.aggregate::<String>("antisat"),
            first.aggregate::<String>("antisat")
        );
    }

    /// Codec persisting the echo runner's `String` stage values.
    struct EchoCodec;

    impl ValueCodec for EchoCodec {
        fn encode(&self, _kind: JobKind, value: &crate::JobValue) -> Option<Vec<u8>> {
            value
                .downcast_ref::<String>()
                .map(|s| s.as_bytes().to_vec())
        }

        fn decode(&self, _kind: JobKind, bytes: &[u8]) -> Option<crate::JobValue> {
            Some(Arc::new(String::from_utf8(bytes.to_vec()).ok()?) as crate::JobValue)
        }
    }

    /// EchoRunner with on-disk persistence.
    struct PersistentEcho;

    impl CampaignRunner for PersistentEcho {
        fn config_salt(&self) -> u64 {
            7
        }

        fn codec(&self) -> Option<Arc<dyn ValueCodec>> {
            Some(Arc::new(EchoCodec))
        }

        fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
            EchoRunner.run(job, ctx)
        }
    }

    #[test]
    fn persistent_execution_reuses_the_store_across_executors() {
        let dir =
            std::env::temp_dir().join(format!("gnnunlock-campaign-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = tiny();

        let cold = c
            .execute_persistent(&PersistentEcho, ExecConfig::with_workers(2), &dir)
            .unwrap();
        assert!(cold.outcome.all_succeeded());
        assert_eq!(cold.outcome.stats.executed, c.plan().len());

        // A fresh executor (≈ a fresh process) is served from disk.
        let warm = c
            .execute_persistent(&PersistentEcho, ExecConfig::with_workers(2), &dir)
            .unwrap();
        assert_eq!(warm.outcome.stats.disk_hits, c.plan().len());
        assert_eq!(warm.outcome.stats.executed, 0);
        assert_eq!(
            cold.report(ReportOptions::default()).to_json(),
            warm.report(ReportOptions::default()).to_json(),
            "cold and warm default reports must be byte-identical"
        );

        // Resume validates the shape and reports prior completions.
        let (resumed, info) = c
            .resume(&PersistentEcho, ExecConfig::with_workers(2), &dir)
            .unwrap();
        assert!(info.prior_completed >= c.plan().len());
        assert!(!info.log_truncated);
        assert_eq!(
            resumed.report(ReportOptions::default()).to_json(),
            cold.report(ReportOptions::default()).to_json(),
        );
        // A differently-shaped campaign refuses the directory.
        let other = Campaign::builder("other")
            .scheme("sfll")
            .benchmarks(["x"])
            .key_sizes([4])
            .build();
        let err = match other.resume(&PersistentEcho, ExecConfig::with_workers(1), &dir) {
            Err(e) => e,
            Ok(_) => panic!("resuming a foreign log must fail"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn labels_and_fingerprints_are_stable() {
        let j = StageJob {
            kind: JobKind::Attack,
            scheme: "antisat".into(),
            benchmark: Some("c7552".into()),
            key_bits: Some(16),
            seed: Some(1),
        };
        assert_eq!(j.label(), "attack/antisat/c7552/k16/s1");
        assert_eq!(j.fingerprint(3), j.fingerprint(3));
        assert_ne!(j.fingerprint(3), j.fingerprint(4));
    }
}
