//! Campaigns: declarative {benchmark × scheme × key size × seed}
//! matrices expanded into job graphs.
//!
//! A [`Campaign`] captures the *shape* of an experiment — which
//! benchmarks, locking schemes, key sizes and lock seeds, and which
//! pipeline stages (parse → lock → synth → featurize → dataset →
//! `train-epoch` checkpoint chain → train → classify → remove → verify
//! → aggregate) apply — without knowing anything about netlists or
//! GNNs.
//! A [`CampaignRunner`] supplies the semantics of each stage; the
//! GNNUnlock implementation lives in `gnnunlock-core::campaign`, keeping
//! this crate std-only and dependency-free.
//!
//! The expansion is deterministic: job ids, labels and dependency lists
//! depend only on the campaign spec, so one campaign run on 1 worker and
//! one on 16 produce byte-identical [`crate::RunReport`]s.

use crate::cache::ResultCache;
use crate::codec::ValueCodec;
use crate::events::{Event, EventLog, EVENTS_FILE};
use crate::exec::{ExecConfig, Executor, RunOutcome};
use crate::graph::{fingerprint_fields, JobCtx, JobGraph, JobId, JobKind, JobOutput};
use crate::report::{ReportOptions, RunReport};
use crate::store::DiskStore;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// One planned unit of campaign work, interpreted by a
/// [`CampaignRunner`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StageJob {
    /// Pipeline stage.
    pub kind: JobKind,
    /// Locking scheme tag (runner-defined vocabulary, e.g. `antisat`).
    pub scheme: String,
    /// Benchmark name, for per-benchmark stages.
    pub benchmark: Option<String>,
    /// Key size, for per-instance stages.
    pub key_bits: Option<usize>,
    /// Lock-seed index, for per-instance stages.
    pub seed: Option<u64>,
    /// Checkpoint-chain link index, for `train-epoch` stages.
    pub epoch: Option<usize>,
}

impl StageJob {
    /// Stable human-readable label, e.g. `classify/antisat/c7552/k16/s1`
    /// or `train-epoch/antisat/c7552/e3`. Scheme-free jobs (`parse`)
    /// omit the scheme segment: `parse/c7552`.
    pub fn label(&self) -> String {
        let mut s = self.kind.tag().to_string();
        if !self.scheme.is_empty() {
            s.push('/');
            s.push_str(&self.scheme);
        }
        if let Some(b) = &self.benchmark {
            s.push('/');
            s.push_str(b);
        }
        if let Some(k) = self.key_bits {
            s.push_str(&format!("/k{k}"));
        }
        if let Some(seed) = self.seed {
            s.push_str(&format!("/s{seed}"));
        }
        if let Some(e) = self.epoch {
            s.push_str(&format!("/e{e}"));
        }
        s
    }

    /// Content fingerprint of this job's *own* fields under `salt` (the
    /// runner's per-stage configuration identity). The full cache key of
    /// a planned job is the Merkle composition of this value with its
    /// dependencies' keys (see [`Campaign::execute`]), so a job's
    /// address captures everything upstream that feeds it.
    ///
    /// `parse` jobs exclude the scheme: the original, pre-locking
    /// netlist is scheme-independent, so campaigns of different schemes
    /// (and different tables sharing a cache directory) reuse each
    /// other's parse results.
    pub fn fingerprint(&self, salt: u64) -> u64 {
        let scheme = if self.kind == JobKind::Parse {
            ""
        } else {
            self.scheme.as_str()
        };
        fingerprint_fields(&[
            self.kind.tag(),
            scheme,
            self.benchmark.as_deref().unwrap_or(""),
            &self.key_bits.map(|k| k.to_string()).unwrap_or_default(),
            &self.seed.map(|s| s.to_string()).unwrap_or_default(),
            &self.epoch.map(|e| e.to_string()).unwrap_or_default(),
            &salt.to_string(),
        ])
    }
}

/// Stage semantics for a campaign.
///
/// Implementations receive each [`StageJob`] together with its
/// dependencies' outputs (in the order listed by the plan) and return the
/// stage's output. They must be deterministic for cache correctness: the
/// output may be served from the result cache whenever `(stage kind,
/// fingerprint)` matches, and [`CampaignRunner::config_salt`] is the
/// place to fold in every configuration bit that affects outputs (scale,
/// library, training hyperparameters…).
pub trait CampaignRunner: Sync {
    /// Configuration identity mixed into every job fingerprint.
    fn config_salt(&self) -> u64 {
        0
    }

    /// Configuration identity of one *stage*, mixed into that stage's
    /// own fingerprint before Merkle composition. Defaults to
    /// [`CampaignRunner::config_salt`]; runners that want cross-campaign
    /// stage reuse override this to fold in only the configuration bits
    /// that actually affect the stage's output (e.g. a `parse` stage
    /// depends on the benchmark scale but not on training
    /// hyperparameters, so two campaigns differing only in epochs share
    /// parse entries).
    fn stage_salt(&self, kind: JobKind) -> u64 {
        let _ = kind;
        self.config_salt()
    }

    /// The codec used to persist this runner's stage outputs on disk
    /// ([`Campaign::execute_persistent`] / [`Campaign::resume`]).
    /// `None` (the default) keeps results in memory only; persistent
    /// runs still stream events and write the version-gated store
    /// directory, but every job recomputes in a fresh process.
    fn codec(&self) -> Option<Arc<dyn ValueCodec>> {
        None
    }

    /// Execute one stage job.
    fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput;
}

/// Builder for [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    name: String,
    schemes: Vec<String>,
    benchmarks: Vec<String>,
    key_sizes: Vec<usize>,
    seeds: Vec<u64>,
    synth: bool,
    verify: bool,
    epoch_jobs: usize,
    targets: Option<Vec<String>>,
}

impl CampaignBuilder {
    /// Start a campaign named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignBuilder {
            name: name.into(),
            schemes: Vec::new(),
            benchmarks: Vec::new(),
            key_sizes: Vec::new(),
            seeds: vec![0],
            synth: false,
            verify: true,
            epoch_jobs: 1,
            targets: None,
        }
    }

    /// Add a locking-scheme axis value (runner vocabulary).
    pub fn scheme(mut self, tag: impl Into<String>) -> Self {
        self.schemes.push(tag.into());
        self
    }

    /// Add benchmark axis values.
    pub fn benchmarks<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.benchmarks.extend(names.into_iter().map(Into::into));
        self
    }

    /// Add key-size axis values.
    pub fn key_sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.key_sizes.extend(sizes);
        self
    }

    /// Lock-seed indices (default: the single seed 0).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Include the synthesis stage between lock and dataset (Verilog
    /// flows). Off by default.
    pub fn with_synthesis(mut self, yes: bool) -> Self {
        self.synth = yes;
        self
    }

    /// Include the removal + SAT-verification stages after each
    /// classification. On by default.
    pub fn with_verification(mut self, yes: bool) -> Self {
        self.verify = yes;
        self
    }

    /// Split each target's training into `n` chained `train-epoch`
    /// checkpoint jobs (clamped to ≥ 1; default 1 = one block). Each
    /// link resumes from its predecessor's checkpoint, so a killed run
    /// restarts mid-training from the last persisted link instead of
    /// from scratch.
    pub fn train_checkpoints(mut self, n: usize) -> Self {
        self.epoch_jobs = n.max(1);
        self
    }

    /// Attack only these benchmarks (default: every benchmark). The
    /// dataset stages (parse → lock → featurize → dataset) still cover
    /// the full benchmark axis — leave-one-out training needs every
    /// instance — but training chains, classification, removal,
    /// verification and aggregation are planned for the listed targets
    /// only. Unknown names are ignored.
    pub fn attack_targets<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        targets: I,
    ) -> Self {
        self.targets = Some(targets.into_iter().map(Into::into).collect());
        self
    }

    /// Expand the matrix into a [`Campaign`].
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty — an empty campaign is always a
    /// caller bug.
    pub fn build(self) -> Campaign {
        assert!(!self.schemes.is_empty(), "campaign has no schemes");
        assert!(!self.benchmarks.is_empty(), "campaign has no benchmarks");
        assert!(!self.key_sizes.is_empty(), "campaign has no key sizes");
        assert!(!self.seeds.is_empty(), "campaign has no seeds");
        let mut plan: Vec<(StageJob, Vec<usize>)> = Vec::new();
        let mut push = |job: StageJob, deps: Vec<usize>| -> usize {
            plan.push((job, deps));
            plan.len() - 1
        };
        let job = |kind,
                   scheme: &str,
                   benchmark: Option<&str>,
                   k: Option<usize>,
                   s: Option<u64>,
                   e: Option<usize>| StageJob {
            kind,
            scheme: scheme.to_string(),
            benchmark: benchmark.map(str::to_string),
            key_bits: k,
            seed: s,
            epoch: e,
        };

        // One parse job per benchmark, planned once for the whole
        // campaign: the original netlist is shared by every
        // {scheme × key size × seed} cell of that benchmark (and, via
        // its scheme-free content address, by other campaigns in the
        // same cache directory). Parse jobs carry no scheme at all, so
        // a multi-scheme campaign never plans duplicate parse work.
        let parse_ids: Vec<usize> = self
            .benchmarks
            .iter()
            .map(|b| push(job(JobKind::Parse, "", Some(b), None, None, None), vec![]))
            .collect();

        for scheme in &self.schemes {
            let mut feat_ids = Vec::new();
            for (bi, b) in self.benchmarks.iter().enumerate() {
                let parse = parse_ids[bi];
                for &k in &self.key_sizes {
                    for &s in &self.seeds {
                        let lock = push(
                            job(JobKind::Lock, scheme, Some(b), Some(k), Some(s), None),
                            vec![parse],
                        );
                        let tail = if self.synth {
                            push(
                                job(JobKind::Synth, scheme, Some(b), Some(k), Some(s), None),
                                vec![lock],
                            )
                        } else {
                            lock
                        };
                        feat_ids.push(push(
                            job(JobKind::Featurize, scheme, Some(b), Some(k), Some(s), None),
                            vec![tail, parse],
                        ));
                    }
                }
            }
            // One dataset-assembly job per scheme.
            let dataset = push(
                job(JobKind::Dataset, scheme, None, None, None, None),
                feat_ids,
            );
            // Leave-one-out per target benchmark: a chain of resumable
            // train-epoch checkpoint jobs, a finalize job, then classify
            // (and optionally remove + verify) each of the target's
            // instances.
            let mut tails = Vec::new();
            let mut trains = Vec::new();
            let attacked: Vec<&String> = self
                .benchmarks
                .iter()
                .filter(|b| self.targets.as_ref().is_none_or(|t| t.contains(b)))
                .collect();
            for b in attacked {
                let mut prev = None;
                for e in 0..self.epoch_jobs {
                    let deps = match prev {
                        None => vec![dataset],
                        Some(p) => vec![dataset, p],
                    };
                    prev = Some(push(
                        job(JobKind::TrainEpoch, scheme, Some(b), None, None, Some(e)),
                        deps,
                    ));
                }
                // Finalize also depends on the dataset so a runner can
                // complete training itself if the planned chain was
                // shorter than its configuration expects.
                let train = push(
                    job(JobKind::Train, scheme, Some(b), None, None, None),
                    vec![prev.expect("epoch_jobs >= 1"), dataset],
                );
                trains.push(train);
                for &k in &self.key_sizes {
                    for &s in &self.seeds {
                        let classify = push(
                            job(JobKind::Classify, scheme, Some(b), Some(k), Some(s), None),
                            vec![train, dataset],
                        );
                        let tail = if self.verify {
                            let remove = push(
                                job(JobKind::Remove, scheme, Some(b), Some(k), Some(s), None),
                                vec![classify, dataset],
                            );
                            push(
                                job(JobKind::Verify, scheme, Some(b), Some(k), Some(s), None),
                                vec![remove, dataset],
                            )
                        } else {
                            classify
                        };
                        tails.push(tail);
                    }
                }
            }
            // Per-scheme aggregation over train reports + per-cell
            // outcomes.
            let mut agg_deps = trains;
            agg_deps.extend(tails);
            push(
                job(JobKind::Aggregate, scheme, None, None, None, None),
                agg_deps,
            );
        }
        Campaign {
            name: self.name,
            schemes: self.schemes,
            plan,
        }
    }
}

/// A fully expanded campaign: a deterministic list of stage jobs with
/// explicit dependencies, ready to execute against any runner.
pub struct Campaign {
    /// Campaign name (report header).
    pub name: String,
    schemes: Vec<String>,
    plan: Vec<(StageJob, Vec<usize>)>,
}

impl Campaign {
    /// Start building a campaign.
    pub fn builder(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder::new(name)
    }

    /// The planned jobs and their dependency indices.
    pub fn plan(&self) -> &[(StageJob, Vec<usize>)] {
        &self.plan
    }

    /// The campaign's scheme tags, in plan order.
    pub fn schemes(&self) -> &[String] {
        &self.schemes
    }

    /// Content hash of the campaign's *shape*: every planned label and
    /// dependency list. Mixed into job fingerprints so two
    /// differently-shaped campaigns sharing one runner and cache never
    /// collide (a dataset job's own fields don't mention the axis sets
    /// that feed it). Also recorded in the event log's `run-started`
    /// record, so [`Campaign::resume`] can refuse to continue a log
    /// written by a differently-shaped campaign.
    pub fn shape_fingerprint(&self) -> u64 {
        let fields: Vec<String> = self
            .plan
            .iter()
            .map(|(job, deps)| format!("{}:{deps:?}", job.label()))
            .collect();
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        fingerprint_fields(&refs)
    }

    /// Merkle-composed cache keys for every planned job: a job's key is
    /// the hash of its own fields (salted per stage by the runner) plus
    /// its dependencies' keys, so the address captures the entire input
    /// cone — two campaigns that plan an identical sub-DAG (same
    /// benchmark, same upstream configuration) share those entries
    /// through a common cache directory, while any upstream difference
    /// changes every downstream key and can never alias.
    pub fn job_fingerprints<R: CampaignRunner>(&self, runner: &R) -> Vec<u64> {
        let mut fps: Vec<u64> = Vec::with_capacity(self.plan.len());
        for (stage_job, deps) in &self.plan {
            let own = stage_job.fingerprint(runner.stage_salt(stage_job.kind));
            let mut fields: Vec<String> = Vec::with_capacity(1 + deps.len());
            fields.push(format!("{own:016x}"));
            fields.extend(deps.iter().map(|&d| format!("{:016x}", fps[d])));
            let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
            fps.push(fingerprint_fields(&refs));
        }
        fps
    }

    /// Execute the campaign on `executor` with `runner` semantics.
    pub fn execute<R: CampaignRunner>(&self, runner: &R, executor: &Executor) -> CampaignRun {
        let fps = self.job_fingerprints(runner);
        let mut graph = JobGraph::new();
        for (i, (stage_job, deps)) in self.plan.iter().enumerate() {
            let dep_ids: Vec<JobId> = deps.iter().map(|&d| JobId(d)).collect();
            graph.add(
                stage_job.label(),
                stage_job.kind,
                Some(fps[i]),
                dep_ids,
                move |ctx| runner.run(stage_job, ctx),
            );
        }
        self.finish_run(executor.run(graph))
    }

    /// Assemble a [`CampaignRun`] from an executed outcome: the
    /// per-scheme aggregate-job map plus campaign metadata. Shared by
    /// [`Campaign::execute`] and the sharded path so the two can never
    /// drift.
    pub(crate) fn finish_run(&self, outcome: RunOutcome) -> CampaignRun {
        let aggregates = self
            .plan
            .iter()
            .enumerate()
            .filter(|(_, (j, _))| j.kind == JobKind::Aggregate)
            .map(|(i, (j, _))| (j.scheme.clone(), JobId(i)))
            .collect();
        CampaignRun {
            name: self.name.clone(),
            schemes: self.schemes.clone(),
            aggregates,
            outcome,
        }
    }

    /// Build the executor + event log a persistent run uses: a
    /// [`DiskStore`] rooted at `dir` behind the result cache (when the
    /// runner supplies a codec) and the campaign event log at
    /// `dir/events.jsonl`.
    fn persistent_executor<R: CampaignRunner>(
        &self,
        runner: &R,
        cfg: ExecConfig,
        dir: &Path,
        append_events: bool,
    ) -> io::Result<(Executor, Arc<EventLog>)> {
        let store = Arc::new(DiskStore::open(dir)?);
        let cache = match runner.codec() {
            Some(codec) => ResultCache::with_disk(store, codec),
            None => ResultCache::new(),
        };
        let events_path = dir.join(EVENTS_FILE);
        let log = Arc::new(if append_events {
            EventLog::open_append(&events_path)?
        } else {
            EventLog::create(&events_path)?
        });
        let executor = Executor::new(cfg)
            .with_cache(Arc::new(cache))
            .with_events(log.clone());
        Ok((executor, log))
    }

    /// Emit the `run-started` record a logged run opens with.
    pub(crate) fn emit_run_started(&self, log: &EventLog, resumed: bool) {
        log.append(&Event::RunStarted {
            campaign: self.name.clone(),
            jobs: self.plan.len(),
            shape: self.shape_fingerprint(),
            resumed,
        });
    }

    /// Emit the per-stage summaries and the terminal `run-finished`
    /// record a logged run drains into.
    pub(crate) fn emit_run_finished(log: &EventLog, run: &CampaignRun) {
        for s in run.outcome.stage_summaries() {
            log.append(&Event::StageSummary {
                kind: s.kind,
                total: s.total,
                executed: s.executed,
                memory_hits: s.memory_hits,
                disk_hits: s.disk_hits,
                failed: s.failed,
                skipped: s.skipped,
                cancelled: s.cancelled,
                ms: s.ms,
                over_budget: s.over_budget,
            });
        }
        let stats = run.outcome.stats;
        log.append(&Event::RunFinished {
            succeeded: stats.succeeded(),
            failed: stats.failed,
            skipped: stats.skipped,
            cancelled: stats.cancelled,
        });
    }

    fn execute_logged<R: CampaignRunner>(
        &self,
        runner: &R,
        executor: &Executor,
        log: &EventLog,
        resumed: bool,
    ) -> CampaignRun {
        self.emit_run_started(log, resumed);
        let run = self.execute(runner, executor);
        Self::emit_run_finished(log, &run);
        run
    }

    /// Execute the campaign with persistence rooted at `dir`: results
    /// the runner's [`ValueCodec`] can encode are written to the
    /// content-addressed [`DiskStore`] (shareable across processes via
    /// `GNNUNLOCK_CACHE_DIR`), and every job transition streams to
    /// `dir/events.jsonl`, truncating any previous log.
    ///
    /// Determinism: the default [`RunReport`] of a persistent run is
    /// byte-identical to an in-memory run of the same campaign — cold,
    /// warm-from-disk, or resumed.
    ///
    /// # Errors
    ///
    /// Fails when the store cannot be opened (including a schema-version
    /// mismatch) or the event log cannot be created.
    pub fn execute_persistent<R: CampaignRunner>(
        &self,
        runner: &R,
        cfg: ExecConfig,
        dir: &Path,
    ) -> io::Result<CampaignRun> {
        crate::env::apply_telemetry_env();
        let (executor, log) = self.persistent_executor(runner, cfg, dir, false)?;
        let run = self.execute_logged(runner, &executor, &log, false);
        Self::gc_store(&executor);
        write_trace(dir, &run.outcome, "trace.json");
        Ok(run)
    }

    /// Enforce the `GNNUNLOCK_CACHE_BUDGET_BYTES` size budget after a
    /// persistent run: evict least-recently-used store entries down to
    /// the budget, never touching entries this run produced or consumed.
    fn gc_store(executor: &Executor) {
        if let Some(store) = executor.cache().store() {
            store.gc_from_env();
        }
    }

    /// Resume an interrupted persistent campaign from `dir`: replay the
    /// event log to validate that it belongs to this campaign shape and
    /// count the jobs the crashed run already finished, then re-execute
    /// against the store — persisted results are served from disk, the
    /// rest recompute deterministically. The event log is appended to,
    /// starting with a `run-started` record marked `resumed`.
    ///
    /// # Errors
    ///
    /// Fails when the log's recorded shape fingerprint does not match
    /// this campaign (resuming the wrong directory), or on store/log
    /// I/O errors.
    pub fn resume<R: CampaignRunner>(
        &self,
        runner: &R,
        cfg: ExecConfig,
        dir: &Path,
    ) -> io::Result<(CampaignRun, ResumeInfo)> {
        crate::env::apply_telemetry_env();
        let replay = EventLog::replay(&dir.join(EVENTS_FILE))?;
        if let Some(shape) = replay.last_shape() {
            if shape != self.shape_fingerprint() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "event log in {} was written by a different campaign \
                         (shape {:016x}, expected {:016x})",
                        dir.display(),
                        shape,
                        self.shape_fingerprint()
                    ),
                ));
            }
        }
        let info = ResumeInfo {
            prior_completed: replay.completed_ids().len(),
            log_truncated: replay.truncated,
        };
        let (executor, log) = self.persistent_executor(runner, cfg, dir, true)?;
        let run = self.execute_logged(runner, &executor, &log, true);
        Self::gc_store(&executor);
        write_trace(dir, &run.outcome, "trace.json");
        Ok((run, info))
    }
}

/// Write a run's Chrome `trace_event` timeline beside its event log:
/// `dir/<default_name>`, or the path named by
/// [`crate::env::TRACE_OUT_ENV`] when set. Best-effort and skipped
/// entirely when telemetry is off — the trace is volatile timing data
/// and never feeds the deterministic report.
pub(crate) fn write_trace(dir: &Path, outcome: &RunOutcome, default_name: &str) {
    if !gnnunlock_telemetry::enabled() {
        return;
    }
    let path = crate::env::trace_out_from_env().unwrap_or_else(|| dir.join(default_name));
    let _ = std::fs::write(
        &path,
        gnnunlock_telemetry::chrome_trace_json(&outcome.spans),
    );
}

/// What [`Campaign::resume`] recovered from the interrupted run's event
/// log before re-executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeInfo {
    /// Jobs the prior run(s) completed (executed ok or cache-served).
    pub prior_completed: usize,
    /// Whether the log ended in a torn record — the signature of a
    /// writer killed mid-event. The consistent prefix was still used.
    pub log_truncated: bool,
}

/// The result of executing a [`Campaign`].
pub struct CampaignRun {
    /// Campaign name.
    pub name: String,
    /// Scheme tags, in campaign order.
    pub schemes: Vec<String>,
    /// `(scheme, aggregate job id)` pairs, in campaign order.
    pub aggregates: Vec<(String, JobId)>,
    /// Raw executor outcome (records, values, counters).
    pub outcome: RunOutcome,
}

impl CampaignRun {
    /// The aggregate output of `scheme`, downcast to the runner's
    /// aggregate type. `None` if the scheme is unknown or its aggregation
    /// did not succeed.
    pub fn aggregate<T: Send + Sync + 'static>(&self, scheme: &str) -> Option<Arc<T>> {
        let (_, id) = self.aggregates.iter().find(|(s, _)| s == scheme)?;
        self.outcome.value::<T>(*id)
    }

    /// Build the run report (deterministic unless timings are enabled).
    pub fn report(&self, opts: ReportOptions) -> RunReport {
        RunReport::from_outcome(&self.name, &self.outcome, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use crate::graph::JobValue;

    /// Toy runner: every stage emits a string describing itself and its
    /// inputs, so aggregate values encode the whole dependency story.
    struct EchoRunner;

    impl CampaignRunner for EchoRunner {
        fn config_salt(&self) -> u64 {
            7
        }

        fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
            let inputs: Vec<String> = (0..ctx.deps.len())
                .map(|i| ctx.dep::<String>(i).as_ref().clone())
                .collect();
            Ok(Arc::new(format!("{}<-[{}]", job.label(), inputs.join(";"))) as JobValue)
        }
    }

    fn tiny() -> Campaign {
        Campaign::builder("tiny")
            .scheme("antisat")
            .benchmarks(["c1", "c2"])
            .key_sizes([8])
            .seeds([0, 1])
            .build()
    }

    #[test]
    fn plan_has_expected_shape() {
        let c = tiny();
        // 2 parses + 4 locks + 4 featurizes + 1 dataset + 2×(1 epoch +
        // 1 train) + 4 classifies + 4 removes + 4 verifies + 1 agg.
        assert_eq!(c.plan().len(), 28);
        let (agg, agg_deps) = c.plan().last().unwrap();
        assert_eq!(agg.kind, JobKind::Aggregate);
        // 2 trains + 4 verify tails.
        assert_eq!(agg_deps.len(), 6);
        // One parse per benchmark, shared by both seed cells.
        let parses: Vec<usize> = c
            .plan()
            .iter()
            .enumerate()
            .filter(|(_, (j, _))| j.kind == JobKind::Parse)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(parses.len(), 2);
        for parse in parses {
            let dependents = c
                .plan()
                .iter()
                .filter(|(j, deps)| j.kind == JobKind::Lock && deps.contains(&parse))
                .count();
            assert_eq!(dependents, 2, "both seed cells share one parse");
        }
        // Synthesis off: no synth jobs.
        assert!(c.plan().iter().all(|(j, _)| j.kind != JobKind::Synth));
        // With synthesis: one synth per lock.
        let c_synth = Campaign::builder("s")
            .scheme("sfll")
            .benchmarks(["c1"])
            .key_sizes([8])
            .with_synthesis(true)
            .build();
        assert_eq!(
            c_synth
                .plan()
                .iter()
                .filter(|(j, _)| j.kind == JobKind::Synth)
                .count(),
            1
        );
        // Multi-scheme campaigns still plan one parse per benchmark.
        let c_multi = Campaign::builder("m")
            .scheme("antisat")
            .scheme("sfll")
            .benchmarks(["c1"])
            .key_sizes([8])
            .build();
        assert_eq!(
            c_multi
                .plan()
                .iter()
                .filter(|(j, _)| j.kind == JobKind::Parse)
                .count(),
            1
        );
        // A deeper checkpoint chain adds train-epoch links.
        let c_chain = Campaign::builder("chain")
            .scheme("antisat")
            .benchmarks(["c1"])
            .key_sizes([8])
            .train_checkpoints(4)
            .build();
        assert_eq!(
            c_chain
                .plan()
                .iter()
                .filter(|(j, _)| j.kind == JobKind::TrainEpoch)
                .count(),
            4
        );
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let c = tiny();
        let run1 = c.execute(&EchoRunner, &Executor::new(ExecConfig::with_workers(1)));
        let run4 = c.execute(&EchoRunner, &Executor::new(ExecConfig::with_workers(4)));
        assert_eq!(
            run1.report(ReportOptions::default()).to_json(),
            run4.report(ReportOptions::default()).to_json()
        );
        let a1 = run1.aggregate::<String>("antisat").unwrap();
        let a4 = run4.aggregate::<String>("antisat").unwrap();
        assert_eq!(a1, a4);
    }

    #[test]
    fn repeated_execution_hits_the_cache() {
        let c = tiny();
        let exec = Executor::new(ExecConfig::with_workers(4));
        let first = c.execute(&EchoRunner, &exec);
        assert_eq!(first.outcome.stats.cache_hits(), 0);
        let second = c.execute(&EchoRunner, &exec);
        assert_eq!(second.outcome.stats.cache_hits(), c.plan().len());
        assert_eq!(second.outcome.stats.executed, 0);
        assert_eq!(
            second.aggregate::<String>("antisat"),
            first.aggregate::<String>("antisat")
        );
    }

    /// Codec persisting the echo runner's `String` stage values.
    struct EchoCodec;

    impl ValueCodec for EchoCodec {
        fn encode(&self, _kind: JobKind, value: &crate::JobValue) -> Option<Vec<u8>> {
            value
                .downcast_ref::<String>()
                .map(|s| s.as_bytes().to_vec())
        }

        fn decode(&self, _kind: JobKind, bytes: &[u8]) -> Option<crate::JobValue> {
            Some(Arc::new(String::from_utf8(bytes.to_vec()).ok()?) as crate::JobValue)
        }
    }

    /// EchoRunner with on-disk persistence.
    struct PersistentEcho;

    impl CampaignRunner for PersistentEcho {
        fn config_salt(&self) -> u64 {
            7
        }

        fn codec(&self) -> Option<Arc<dyn ValueCodec>> {
            Some(Arc::new(EchoCodec))
        }

        fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
            EchoRunner.run(job, ctx)
        }
    }

    #[test]
    fn persistent_execution_reuses_the_store_across_executors() {
        let dir =
            std::env::temp_dir().join(format!("gnnunlock-campaign-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = tiny();

        let cold = c
            .execute_persistent(&PersistentEcho, ExecConfig::with_workers(2), &dir)
            .unwrap();
        assert!(cold.outcome.all_succeeded());
        assert_eq!(cold.outcome.stats.executed, c.plan().len());

        // A fresh executor (≈ a fresh process) is served from disk.
        let warm = c
            .execute_persistent(&PersistentEcho, ExecConfig::with_workers(2), &dir)
            .unwrap();
        assert_eq!(warm.outcome.stats.disk_hits, c.plan().len());
        assert_eq!(warm.outcome.stats.executed, 0);
        assert_eq!(
            cold.report(ReportOptions::default()).to_json(),
            warm.report(ReportOptions::default()).to_json(),
            "cold and warm default reports must be byte-identical"
        );

        // Resume validates the shape and reports prior completions.
        let (resumed, info) = c
            .resume(&PersistentEcho, ExecConfig::with_workers(2), &dir)
            .unwrap();
        assert!(info.prior_completed >= c.plan().len());
        assert!(!info.log_truncated);
        assert_eq!(
            resumed.report(ReportOptions::default()).to_json(),
            cold.report(ReportOptions::default()).to_json(),
        );
        // A differently-shaped campaign refuses the directory.
        let other = Campaign::builder("other")
            .scheme("sfll")
            .benchmarks(["x"])
            .key_sizes([4])
            .build();
        let err = match other.resume(&PersistentEcho, ExecConfig::with_workers(1), &dir) {
            Err(e) => e,
            Ok(_) => panic!("resuming a foreign log must fail"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn labels_and_fingerprints_are_stable() {
        let j = StageJob {
            kind: JobKind::Classify,
            scheme: "antisat".into(),
            benchmark: Some("c7552".into()),
            key_bits: Some(16),
            seed: Some(1),
            epoch: None,
        };
        assert_eq!(j.label(), "classify/antisat/c7552/k16/s1");
        assert_eq!(j.fingerprint(3), j.fingerprint(3));
        assert_ne!(j.fingerprint(3), j.fingerprint(4));
        let e = StageJob {
            kind: JobKind::TrainEpoch,
            scheme: "antisat".into(),
            benchmark: Some("c7552".into()),
            key_bits: None,
            seed: None,
            epoch: Some(3),
        };
        assert_eq!(e.label(), "train-epoch/antisat/c7552/e3");
        // Parse addresses are scheme-free: different schemes share them.
        let parse = |scheme: &str| StageJob {
            kind: JobKind::Parse,
            scheme: scheme.into(),
            benchmark: Some("c7552".into()),
            key_bits: None,
            seed: None,
            epoch: None,
        };
        assert_eq!(
            parse("antisat").fingerprint(3),
            parse("sfll").fingerprint(3)
        );
    }

    /// Merkle composition: a change anywhere upstream changes every
    /// downstream cache key, and identical sub-DAGs across differently
    /// shaped campaigns share keys.
    #[test]
    fn job_fingerprints_compose_over_dependencies() {
        let a = Campaign::builder("a")
            .scheme("antisat")
            .benchmarks(["c1", "c2"])
            .key_sizes([8])
            .build();
        let b = Campaign::builder("b")
            .scheme("antisat")
            .benchmarks(["c1", "c2"])
            .key_sizes([8, 16])
            .build();
        let fa = a.job_fingerprints(&EchoRunner);
        let fb = b.job_fingerprints(&EchoRunner);
        let find = |c: &Campaign, fps: &[u64], label: &str| -> u64 {
            let i = c
                .plan()
                .iter()
                .position(|(j, _)| j.label() == label)
                .unwrap_or_else(|| panic!("no job {label}"));
            fps[i]
        };
        // The shared cells address identically across the two shapes…
        for label in [
            "parse/c1",
            "lock/antisat/c1/k8/s0",
            "featurize/antisat/c1/k8/s0",
        ] {
            assert_eq!(find(&a, &fa, label), find(&b, &fb, label));
        }
        // …while the dataset (whose input cone differs) does not.
        assert_eq!(
            find(&a, &fa, "dataset/antisat"),
            find(&a, &a.job_fingerprints(&EchoRunner), "dataset/antisat"),
        );
        assert_ne!(
            find(&a, &fa, "dataset/antisat"),
            find(&b, &fb, "dataset/antisat"),
        );
        // Downstream of the dataset, everything differs too.
        assert_ne!(
            find(&a, &fa, "train/antisat/c1"),
            find(&b, &fb, "train/antisat/c1"),
        );
    }
}
