//! Campaigns: declarative {benchmark × scheme × key size × seed}
//! matrices expanded into job graphs.
//!
//! A [`Campaign`] captures the *shape* of an experiment — which
//! benchmarks, locking schemes, key sizes and lock seeds, and which
//! pipeline stages (lock → synth → dataset → train → attack → verify →
//! aggregate) apply — without knowing anything about netlists or GNNs.
//! A [`CampaignRunner`] supplies the semantics of each stage; the
//! GNNUnlock implementation lives in `gnnunlock-core::campaign`, keeping
//! this crate std-only and dependency-free.
//!
//! The expansion is deterministic: job ids, labels and dependency lists
//! depend only on the campaign spec, so one campaign run on 1 worker and
//! one on 16 produce byte-identical [`crate::RunReport`]s.

use crate::exec::{Executor, RunOutcome};
use crate::graph::{fingerprint_fields, JobCtx, JobGraph, JobId, JobKind, JobOutput};
use crate::report::{ReportOptions, RunReport};
use std::sync::Arc;

/// One planned unit of campaign work, interpreted by a
/// [`CampaignRunner`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StageJob {
    /// Pipeline stage.
    pub kind: JobKind,
    /// Locking scheme tag (runner-defined vocabulary, e.g. `antisat`).
    pub scheme: String,
    /// Benchmark name, for per-benchmark stages.
    pub benchmark: Option<String>,
    /// Key size, for per-instance stages.
    pub key_bits: Option<usize>,
    /// Lock-seed index, for per-instance stages.
    pub seed: Option<u64>,
}

impl StageJob {
    /// Stable human-readable label, e.g. `attack/antisat/c7552/k16/s1`.
    pub fn label(&self) -> String {
        let mut s = format!("{}/{}", self.kind.tag(), self.scheme);
        if let Some(b) = &self.benchmark {
            s.push('/');
            s.push_str(b);
        }
        if let Some(k) = self.key_bits {
            s.push_str(&format!("/k{k}"));
        }
        if let Some(seed) = self.seed {
            s.push_str(&format!("/s{seed}"));
        }
        s
    }

    /// Content fingerprint of this job under `salt` (the runner's
    /// configuration identity).
    pub fn fingerprint(&self, salt: u64) -> u64 {
        fingerprint_fields(&[
            self.kind.tag(),
            &self.scheme,
            self.benchmark.as_deref().unwrap_or(""),
            &self.key_bits.map(|k| k.to_string()).unwrap_or_default(),
            &self.seed.map(|s| s.to_string()).unwrap_or_default(),
            &salt.to_string(),
        ])
    }
}

/// Stage semantics for a campaign.
///
/// Implementations receive each [`StageJob`] together with its
/// dependencies' outputs (in the order listed by the plan) and return the
/// stage's output. They must be deterministic for cache correctness: the
/// output may be served from the result cache whenever `(stage kind,
/// fingerprint)` matches, and [`CampaignRunner::config_salt`] is the
/// place to fold in every configuration bit that affects outputs (scale,
/// library, training hyperparameters…).
pub trait CampaignRunner: Sync {
    /// Configuration identity mixed into every job fingerprint.
    fn config_salt(&self) -> u64 {
        0
    }

    /// Execute one stage job.
    fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput;
}

/// Builder for [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    name: String,
    schemes: Vec<String>,
    benchmarks: Vec<String>,
    key_sizes: Vec<usize>,
    seeds: Vec<u64>,
    synth: bool,
    verify: bool,
}

impl CampaignBuilder {
    /// Start a campaign named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignBuilder {
            name: name.into(),
            schemes: Vec::new(),
            benchmarks: Vec::new(),
            key_sizes: Vec::new(),
            seeds: vec![0],
            synth: false,
            verify: true,
        }
    }

    /// Add a locking-scheme axis value (runner vocabulary).
    pub fn scheme(mut self, tag: impl Into<String>) -> Self {
        self.schemes.push(tag.into());
        self
    }

    /// Add benchmark axis values.
    pub fn benchmarks<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.benchmarks.extend(names.into_iter().map(Into::into));
        self
    }

    /// Add key-size axis values.
    pub fn key_sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.key_sizes.extend(sizes);
        self
    }

    /// Lock-seed indices (default: the single seed 0).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Include the synthesis stage between lock and dataset (Verilog
    /// flows). Off by default.
    pub fn with_synthesis(mut self, yes: bool) -> Self {
        self.synth = yes;
        self
    }

    /// Include the SAT-verification stage after each attack. On by
    /// default.
    pub fn with_verification(mut self, yes: bool) -> Self {
        self.verify = yes;
        self
    }

    /// Expand the matrix into a [`Campaign`].
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty — an empty campaign is always a
    /// caller bug.
    pub fn build(self) -> Campaign {
        assert!(!self.schemes.is_empty(), "campaign has no schemes");
        assert!(!self.benchmarks.is_empty(), "campaign has no benchmarks");
        assert!(!self.key_sizes.is_empty(), "campaign has no key sizes");
        assert!(!self.seeds.is_empty(), "campaign has no seeds");
        let mut plan: Vec<(StageJob, Vec<usize>)> = Vec::new();
        let mut push = |job: StageJob, deps: Vec<usize>| -> usize {
            plan.push((job, deps));
            plan.len() - 1
        };
        let job =
            |kind, scheme: &str, benchmark: Option<&str>, k: Option<usize>, s: Option<u64>| {
                StageJob {
                    kind,
                    scheme: scheme.to_string(),
                    benchmark: benchmark.map(str::to_string),
                    key_bits: k,
                    seed: s,
                }
            };

        for scheme in &self.schemes {
            // Per-instance lock (and optional synth) jobs.
            let mut shard_ids = Vec::new();
            for b in &self.benchmarks {
                for &k in &self.key_sizes {
                    for &s in &self.seeds {
                        let lock = push(
                            job(JobKind::Lock, scheme, Some(b), Some(k), Some(s)),
                            vec![],
                        );
                        let tail = if self.synth {
                            push(
                                job(JobKind::Synth, scheme, Some(b), Some(k), Some(s)),
                                vec![lock],
                            )
                        } else {
                            lock
                        };
                        shard_ids.push(tail);
                    }
                }
            }
            // One dataset-assembly job per scheme.
            let dataset = push(job(JobKind::Dataset, scheme, None, None, None), shard_ids);
            // Leave-one-out: train per target benchmark, then attack (and
            // optionally verify) each of the target's instances.
            let mut tails = Vec::new();
            let mut trains = Vec::new();
            for b in &self.benchmarks {
                let train = push(
                    job(JobKind::Train, scheme, Some(b), None, None),
                    vec![dataset],
                );
                trains.push(train);
                for &k in &self.key_sizes {
                    for &s in &self.seeds {
                        let attack = push(
                            job(JobKind::Attack, scheme, Some(b), Some(k), Some(s)),
                            vec![train, dataset],
                        );
                        let tail = if self.verify {
                            push(
                                job(JobKind::Verify, scheme, Some(b), Some(k), Some(s)),
                                vec![attack],
                            )
                        } else {
                            attack
                        };
                        tails.push(tail);
                    }
                }
            }
            // Per-scheme aggregation over train reports + attack/verify
            // outcomes.
            let mut agg_deps = trains;
            agg_deps.extend(tails);
            push(job(JobKind::Aggregate, scheme, None, None, None), agg_deps);
        }
        Campaign {
            name: self.name,
            schemes: self.schemes,
            plan,
        }
    }
}

/// A fully expanded campaign: a deterministic list of stage jobs with
/// explicit dependencies, ready to execute against any runner.
pub struct Campaign {
    /// Campaign name (report header).
    pub name: String,
    schemes: Vec<String>,
    plan: Vec<(StageJob, Vec<usize>)>,
}

impl Campaign {
    /// Start building a campaign.
    pub fn builder(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder::new(name)
    }

    /// The planned jobs and their dependency indices.
    pub fn plan(&self) -> &[(StageJob, Vec<usize>)] {
        &self.plan
    }

    /// Content hash of the campaign's *shape*: every planned label and
    /// dependency list. Mixed into job fingerprints so two
    /// differently-shaped campaigns sharing one runner and cache never
    /// collide (a dataset job's own fields don't mention the axis sets
    /// that feed it).
    fn shape_fingerprint(&self) -> u64 {
        let fields: Vec<String> = self
            .plan
            .iter()
            .map(|(job, deps)| format!("{}:{deps:?}", job.label()))
            .collect();
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        fingerprint_fields(&refs)
    }

    /// Execute the campaign on `executor` with `runner` semantics.
    pub fn execute<R: CampaignRunner>(&self, runner: &R, executor: &Executor) -> CampaignRun {
        let salt = fingerprint_fields(&[
            &runner.config_salt().to_string(),
            &self.shape_fingerprint().to_string(),
        ]);
        let mut graph = JobGraph::new();
        for (stage_job, deps) in &self.plan {
            let dep_ids: Vec<JobId> = deps.iter().map(|&d| JobId(d)).collect();
            graph.add(
                stage_job.label(),
                stage_job.kind,
                Some(stage_job.fingerprint(salt)),
                dep_ids,
                move |ctx| runner.run(stage_job, ctx),
            );
        }
        let outcome = executor.run(graph);
        let aggregates = self
            .plan
            .iter()
            .enumerate()
            .filter(|(_, (j, _))| j.kind == JobKind::Aggregate)
            .map(|(i, (j, _))| (j.scheme.clone(), JobId(i)))
            .collect();
        CampaignRun {
            name: self.name.clone(),
            schemes: self.schemes.clone(),
            aggregates,
            outcome,
        }
    }
}

/// The result of executing a [`Campaign`].
pub struct CampaignRun {
    /// Campaign name.
    pub name: String,
    /// Scheme tags, in campaign order.
    pub schemes: Vec<String>,
    /// `(scheme, aggregate job id)` pairs, in campaign order.
    pub aggregates: Vec<(String, JobId)>,
    /// Raw executor outcome (records, values, counters).
    pub outcome: RunOutcome,
}

impl CampaignRun {
    /// The aggregate output of `scheme`, downcast to the runner's
    /// aggregate type. `None` if the scheme is unknown or its aggregation
    /// did not succeed.
    pub fn aggregate<T: Send + Sync + 'static>(&self, scheme: &str) -> Option<Arc<T>> {
        let (_, id) = self.aggregates.iter().find(|(s, _)| s == scheme)?;
        self.outcome.value::<T>(*id)
    }

    /// Build the run report (deterministic unless timings are enabled).
    pub fn report(&self, opts: ReportOptions) -> RunReport {
        RunReport::from_outcome(&self.name, &self.outcome, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use crate::graph::JobValue;

    /// Toy runner: every stage emits a string describing itself and its
    /// inputs, so aggregate values encode the whole dependency story.
    struct EchoRunner;

    impl CampaignRunner for EchoRunner {
        fn config_salt(&self) -> u64 {
            7
        }

        fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
            let inputs: Vec<String> = (0..ctx.deps.len())
                .map(|i| ctx.dep::<String>(i).as_ref().clone())
                .collect();
            Ok(Arc::new(format!("{}<-[{}]", job.label(), inputs.join(";"))) as JobValue)
        }
    }

    fn tiny() -> Campaign {
        Campaign::builder("tiny")
            .scheme("antisat")
            .benchmarks(["c1", "c2"])
            .key_sizes([8])
            .seeds([0, 1])
            .build()
    }

    #[test]
    fn plan_has_expected_shape() {
        let c = tiny();
        // 4 locks + 1 dataset + 2 trains + 4 attacks + 4 verifies + 1 agg.
        assert_eq!(c.plan().len(), 16);
        let (agg, agg_deps) = c.plan().last().unwrap();
        assert_eq!(agg.kind, JobKind::Aggregate);
        // 2 trains + 4 verify tails.
        assert_eq!(agg_deps.len(), 6);
        // Synthesis off: no synth jobs.
        assert!(c.plan().iter().all(|(j, _)| j.kind != JobKind::Synth));
        // With synthesis: one synth per lock.
        let c_synth = Campaign::builder("s")
            .scheme("sfll")
            .benchmarks(["c1"])
            .key_sizes([8])
            .with_synthesis(true)
            .build();
        assert_eq!(
            c_synth
                .plan()
                .iter()
                .filter(|(j, _)| j.kind == JobKind::Synth)
                .count(),
            1
        );
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let c = tiny();
        let run1 = c.execute(&EchoRunner, &Executor::new(ExecConfig::with_workers(1)));
        let run4 = c.execute(&EchoRunner, &Executor::new(ExecConfig::with_workers(4)));
        assert_eq!(
            run1.report(ReportOptions::default()).to_json(),
            run4.report(ReportOptions::default()).to_json()
        );
        let a1 = run1.aggregate::<String>("antisat").unwrap();
        let a4 = run4.aggregate::<String>("antisat").unwrap();
        assert_eq!(a1, a4);
    }

    #[test]
    fn repeated_execution_hits_the_cache() {
        let c = tiny();
        let exec = Executor::new(ExecConfig::with_workers(4));
        let first = c.execute(&EchoRunner, &exec);
        assert_eq!(first.outcome.stats.cache_hits, 0);
        let second = c.execute(&EchoRunner, &exec);
        assert_eq!(second.outcome.stats.cache_hits, c.plan().len());
        assert_eq!(second.outcome.stats.executed, 0);
        assert_eq!(
            second.aggregate::<String>("antisat"),
            first.aggregate::<String>("antisat")
        );
    }

    #[test]
    fn labels_and_fingerprints_are_stable() {
        let j = StageJob {
            kind: JobKind::Attack,
            scheme: "antisat".into(),
            benchmark: Some("c7552".into()),
            key_bits: Some(16),
            seed: Some(1),
        };
        assert_eq!(j.label(), "attack/antisat/c7552/k16/s1");
        assert_eq!(j.fingerprint(3), j.fingerprint(3));
        assert_ne!(j.fingerprint(3), j.fingerprint(4));
    }
}
