//! The dependency-aware parallel executor.
//!
//! Workers claim ready jobs (lowest [`JobId`] first) from a shared queue,
//! execute them outside the lock, then release dependents. Results and
//! job records are indexed by `JobId`, so the outcome — and any report
//! derived from it — is identical for every worker count: parallelism
//! changes only wall-clock time, never content.
//!
//! With an [`EventLog`] attached ([`Executor::with_events`]) the
//! executor streams one JSONL record per job transition — started,
//! finished, cache-hit, and a `stage-error` record carrying the job id
//! and failure text for every failed job (including panicking bodies) —
//! flushed per event, so long campaigns are observable and a crashed
//! run's progress is replayable.

use crate::cache::{CacheSource, ResultCache};
use crate::cancel::CancelToken;
use crate::events::{Event, EventLog};
use crate::graph::{JobCtx, JobGraph, JobId, JobKind, JobValue};
use crate::metrics;
use crate::pool::default_workers;
use gnnunlock_telemetry as telemetry;
use gnnunlock_telemetry::SpanRecord;
use std::collections::BTreeSet;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads (1 = run inline-style, still through the same
    /// scheduler, guaranteeing identical results).
    pub workers: usize,
    /// Cancellation token shared with job bodies.
    pub cancel: CancelToken,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: default_workers(),
            cancel: CancelToken::new(),
        }
    }
}

impl ExecConfig {
    /// A config with `workers` threads and a fresh cancel token.
    pub fn with_workers(workers: usize) -> Self {
        ExecConfig {
            workers: workers.max(1),
            cancel: CancelToken::new(),
        }
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran (or was cache-served) to completion.
    Succeeded,
    /// The body returned an error.
    Failed(String),
    /// Not run because a dependency did not succeed.
    Skipped(String),
    /// Not run because the run was cancelled first.
    Cancelled,
}

impl JobStatus {
    /// Stable lowercase tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            JobStatus::Succeeded => "ok",
            JobStatus::Failed(_) => "failed",
            JobStatus::Skipped(_) => "skipped",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// Per-job record of one run.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's label.
    pub label: String,
    /// Pipeline stage.
    pub kind: JobKind,
    /// Dependency indices.
    pub deps: Vec<usize>,
    /// Terminal status.
    pub status: JobStatus,
    /// Which cache tier served the result, if any (provenance — volatile
    /// across cold/warm runs, so excluded from deterministic reports).
    pub cache: CacheSource,
    /// Wall-clock execution time (≈0 for cache hits; volatile — excluded
    /// from deterministic reports).
    pub duration: Duration,
}

impl JobRecord {
    /// Whether the result came from any cache tier.
    pub fn cached(&self) -> bool {
        self.cache.is_hit()
    }
}

/// Aggregate counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Jobs in the graph.
    pub total: usize,
    /// Jobs whose bodies actually ran.
    pub executed: usize,
    /// Jobs served from the in-memory cache tier.
    pub memory_hits: usize,
    /// Jobs served from the on-disk cache tier.
    pub disk_hits: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs skipped because a dependency did not succeed.
    pub skipped: usize,
    /// Jobs cancelled before they could run.
    pub cancelled: usize,
}

impl RunStats {
    /// Jobs served from any cache tier.
    pub fn cache_hits(&self) -> usize {
        self.memory_hits + self.disk_hits
    }

    /// Jobs that reached success (executed or cache-served).
    pub fn succeeded(&self) -> usize {
        self.executed + self.cache_hits()
    }
}

/// Per-stage-kind aggregate of one run: how many jobs of the stage ran,
/// where their results came from, and how long their bodies took.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Stage kind tag (`parse`, `train-epoch`, …).
    pub kind: String,
    /// Jobs of this stage in the graph.
    pub total: usize,
    /// Jobs whose bodies actually ran.
    pub executed: usize,
    /// Jobs served from the in-memory cache tier.
    pub memory_hits: usize,
    /// Jobs served from the on-disk cache tier.
    pub disk_hits: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs skipped because a dependency did not succeed.
    pub skipped: usize,
    /// Jobs cancelled before they could run.
    pub cancelled: usize,
    /// Summed wall-clock execution milliseconds (volatile).
    pub ms: f64,
    /// Whether `ms` exceeded the per-stage wall-clock budget
    /// (`GNNUNLOCK_STAGE_BUDGET_MS`). Observability only — over-budget
    /// stages are marked in the stage-summary event and the timing
    /// report section, never killed. Always `false` without a budget.
    pub over_budget: bool,
}

/// Everything a run produced: records, values and counters.
pub struct RunOutcome {
    /// One record per job, indexed by [`JobId`] — deterministic order.
    pub records: Vec<JobRecord>,
    /// Aggregate counters.
    pub stats: RunStats,
    /// Total wall-clock time (volatile).
    pub wall_time: Duration,
    /// Spans recorded during the run — one per executed or cache-served
    /// job, plus any spans job bodies recorded (shard probes, lease
    /// waits). Span ids are deterministic (derived from fingerprints);
    /// timestamps, durations and thread ids are volatile. Render with
    /// [`gnnunlock_telemetry::chrome_trace_json`].
    pub spans: Vec<SpanRecord>,
    values: Vec<Option<JobValue>>,
    /// The per-stage wall-clock budget in effect when the run executed
    /// (`GNNUNLOCK_STAGE_BUDGET_MS`), applied by [`RunOutcome::stage_summaries`].
    stage_budget_ms: Option<f64>,
}

impl RunOutcome {
    /// Aggregate the job records per stage kind, in pipeline order
    /// ([`JobKind::BUILTIN`] first, then custom kinds in first-appearance
    /// order; only kinds present in the graph are reported). The counts
    /// are deterministic; `ms` — and the `over_budget` mark derived from
    /// it against the run's `GNNUNLOCK_STAGE_BUDGET_MS` — is wall-clock
    /// and volatile.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        self.stage_summaries_with_budget(self.stage_budget_ms)
    }

    /// [`RunOutcome::stage_summaries`] against an explicit per-stage
    /// wall-clock budget in milliseconds (`None` = no budget, nothing is
    /// ever marked over-budget).
    pub fn stage_summaries_with_budget(&self, budget_ms: Option<f64>) -> Vec<StageSummary> {
        let mut order: Vec<&'static str> = Vec::new();
        for kind in JobKind::BUILTIN {
            if self.records.iter().any(|r| r.kind == kind) {
                order.push(kind.tag());
            }
        }
        for r in &self.records {
            if let JobKind::Custom(tag) = r.kind {
                if !order.contains(&tag) {
                    order.push(tag);
                }
            }
        }
        order
            .into_iter()
            .map(|tag| {
                let mut s = StageSummary {
                    kind: tag.to_string(),
                    total: 0,
                    executed: 0,
                    memory_hits: 0,
                    disk_hits: 0,
                    failed: 0,
                    skipped: 0,
                    cancelled: 0,
                    ms: 0.0,
                    over_budget: false,
                };
                for r in self.records.iter().filter(|r| r.kind.tag() == tag) {
                    s.total += 1;
                    s.ms += r.duration.as_secs_f64() * 1e3;
                    match (&r.status, r.cache) {
                        (JobStatus::Succeeded, CacheSource::Memory) => s.memory_hits += 1,
                        (JobStatus::Succeeded, CacheSource::Disk) => s.disk_hits += 1,
                        (JobStatus::Succeeded, CacheSource::None) => s.executed += 1,
                        (JobStatus::Failed(_), _) => s.failed += 1,
                        (JobStatus::Skipped(_), _) => s.skipped += 1,
                        (JobStatus::Cancelled, _) => s.cancelled += 1,
                    }
                }
                s.over_budget = budget_ms.is_some_and(|budget| s.ms > budget);
                s
            })
            .collect()
    }
    /// The output of a succeeded job, downcast to its concrete type.
    /// `None` if the job did not succeed; panics on a type mismatch
    /// (a graph-construction bug).
    pub fn value<T: Send + Sync + 'static>(&self, id: JobId) -> Option<Arc<T>> {
        self.values[id.index()].as_ref().map(|v| {
            v.clone()
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("job {} has unexpected output type", id.index()))
        })
    }

    /// Whether every job succeeded.
    pub fn all_succeeded(&self) -> bool {
        self.stats.failed == 0 && self.stats.skipped == 0 && self.stats.cancelled == 0
    }
}

/// Best-effort text of a panic payload (what `panic!` carries).
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Called after a fingerprinted job body finishes and its result (if
/// any) has been published to the cache: `(kind, fingerprint,
/// succeeded)`. The sharded coordinator uses this to release a job's
/// lease only *after* the entry is visible to peer shards.
pub type AfterJobHook = dyn Fn(JobKind, u64, bool) + Send + Sync;

/// Scheduling hint consulted when a worker picks its next ready job:
/// `(kind, fingerprint)` → `true` to *defer* the job (pick it only when
/// every ready job is deferred). The sharded coordinator defers jobs a
/// live peer shard currently leases, so a worker does productive
/// unleased work instead of probe-polling a peer's result. Purely a
/// pick-order hint: results and records are indexed by job id, so
/// deferral can never change an outcome, only wall-clock. Called with
/// the scheduler briefly locked — keep it cheap (a stat, not a scan).
pub type ReadyHint = dyn Fn(JobKind, Option<u64>) -> bool + Send + Sync;

/// The parallel job-graph executor.
///
/// Holds the [`ResultCache`]; reusing one executor (or one cache via
/// [`Executor::with_cache`]) across runs lets later campaigns skip work
/// already done — and with a disk-backed cache
/// ([`ResultCache::with_disk`]), lets later *processes* skip it too.
pub struct Executor {
    cfg: ExecConfig,
    cache: Arc<ResultCache>,
    events: Option<Arc<EventLog>>,
    after_job: Option<Arc<AfterJobHook>>,
    ready_hint: Option<Arc<ReadyHint>>,
}

struct Sched<'a> {
    nodes: Vec<crate::graph::JobNode<'a>>,
    remaining: Vec<usize>,
    dependents: Vec<Vec<usize>>,
    /// Why a job must be skipped (first failing dependency), if any.
    poison: Vec<Option<String>>,
    ready: BTreeSet<usize>,
    /// When each job entered the ready set (taken at claim time to
    /// observe queue wait; `None` once claimed or not yet ready).
    ready_at: Vec<Option<Instant>>,
    values: Vec<Option<JobValue>>,
    records: Vec<Option<(JobStatus, CacheSource, Duration)>>,
    /// Spans drained from worker thread-local buffers at job boundaries.
    spans: Vec<SpanRecord>,
    pending: usize,
}

impl Executor {
    /// An executor with its own empty cache.
    pub fn new(cfg: ExecConfig) -> Self {
        Executor {
            cfg,
            cache: Arc::new(ResultCache::new()),
            events: None,
            after_job: None,
            ready_hint: None,
        }
    }

    /// Share an existing cache (e.g. across repeated campaigns, or a
    /// disk-backed cache shared across processes).
    pub fn with_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Stream job events to `log` (flushed per event).
    pub fn with_events(mut self, log: Arc<EventLog>) -> Self {
        self.events = Some(log);
        self
    }

    /// Invoke `hook` after each fingerprinted job body finishes, once
    /// its successful result has been published to the cache (and the
    /// disk tier, when attached). Runs for failed bodies too — callers
    /// holding per-job resources (leases) must release them either way.
    pub fn with_after_job(mut self, hook: Arc<AfterJobHook>) -> Self {
        self.after_job = Some(hook);
        self
    }

    /// Consult `hint` when picking the next ready job: deferred jobs
    /// (`true`) run only when every ready job is deferred. See
    /// [`ReadyHint`].
    pub fn with_ready_hint(mut self, hint: Arc<ReadyHint>) -> Self {
        self.ready_hint = Some(hint);
        self
    }

    /// The executor's cache.
    pub fn cache(&self) -> &Arc<ResultCache> {
        &self.cache
    }

    /// The attached event log, if any.
    pub fn events(&self) -> Option<&Arc<EventLog>> {
        self.events.as_ref()
    }

    /// The executor's cancel token (clone it to cancel from elsewhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cfg.cancel.clone()
    }

    fn emit(&self, event: Event) {
        if let Some(log) = &self.events {
            log.append(&event);
        }
    }

    /// Execute `graph` and return records, values and counters.
    pub fn run(&self, graph: JobGraph<'_>) -> RunOutcome {
        let start = Instant::now();
        let n = graph.len();
        let mut dependents = vec![Vec::new(); n];
        let mut remaining = vec![0usize; n];
        for (i, node) in graph.jobs.iter().enumerate() {
            remaining[i] = node.deps.len();
            for d in &node.deps {
                dependents[d.index()].push(i);
            }
        }
        let ready: BTreeSet<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut ready_at = vec![None; n];
        for &i in &ready {
            ready_at[i] = Some(start);
        }
        let sched = Mutex::new(Sched {
            nodes: graph.jobs,
            remaining,
            dependents,
            poison: vec![None; n],
            ready,
            ready_at,
            values: vec![None; n],
            records: vec![None; n],
            spans: Vec::new(),
            pending: n,
        });
        let work_available = Condvar::new();
        let workers = self.cfg.workers.max(1).min(n.max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&sched, &work_available));
            }
        });

        let mut sched = sched.into_inner().unwrap();
        // Stable rendering order: by start time, ties broken by the
        // deterministic span id.
        sched.spans.sort_by_key(|s| (s.start_us, s.id));
        let mut records = Vec::with_capacity(n);
        let mut stats = RunStats {
            total: n,
            ..RunStats::default()
        };
        for (node, rec) in sched.nodes.iter().zip(sched.records) {
            let (status, cache, duration) = rec.expect("scheduler finished with an unresolved job");
            match (&status, cache) {
                (JobStatus::Succeeded, CacheSource::Memory) => stats.memory_hits += 1,
                (JobStatus::Succeeded, CacheSource::Disk) => stats.disk_hits += 1,
                (JobStatus::Succeeded, CacheSource::None) => stats.executed += 1,
                (JobStatus::Failed(_), _) => stats.failed += 1,
                (JobStatus::Skipped(_), _) => stats.skipped += 1,
                (JobStatus::Cancelled, _) => stats.cancelled += 1,
            }
            records.push(JobRecord {
                label: node.label.clone(),
                kind: node.kind,
                deps: node.deps.iter().map(|d| d.index()).collect(),
                status,
                cache,
                duration,
            });
        }
        RunOutcome {
            records,
            stats,
            wall_time: start.elapsed(),
            spans: sched.spans,
            values: sched.values,
            stage_budget_ms: crate::env::stage_budget_ms(),
        }
    }

    fn worker_loop(&self, sched: &Mutex<Sched<'_>>, work_available: &Condvar) {
        let mut guard = sched.lock().unwrap();
        loop {
            if guard.pending == 0 {
                // Catch any spans a body recorded without a later flush
                // point (nothing in the normal paths, but cheap).
                let mut spans = telemetry::take_thread_spans();
                guard.spans.append(&mut spans);
                work_available.notify_all();
                return;
            }
            let Some(i) = self.pick_ready(&guard) else {
                guard = work_available.wait(guard).unwrap();
                continue;
            };
            guard.ready.remove(&i);
            // Queue wait ends at claim time; observed (outside the
            // lock) only for jobs that execute or cache-serve.
            let queued_s = guard.ready_at[i].take().map(|t| t.elapsed().as_secs_f64());

            // Resolve without running when cancelled or poisoned
            // (cancellation wins so a cancelled run reads uniformly).
            if self.cfg.cancel.is_cancelled() {
                let label = guard.nodes[i].label.clone();
                Self::finish(
                    &mut guard,
                    i,
                    JobStatus::Cancelled,
                    CacheSource::None,
                    Duration::ZERO,
                );
                drop(guard);
                self.emit(Event::JobFinished {
                    id: i,
                    label,
                    status: "cancelled".into(),
                    ms: 0.0,
                });
                guard = sched.lock().unwrap();
                work_available.notify_all();
                continue;
            }
            if let Some(why) = guard.poison[i].clone() {
                let label = guard.nodes[i].label.clone();
                Self::finish(
                    &mut guard,
                    i,
                    JobStatus::Skipped(why),
                    CacheSource::None,
                    Duration::ZERO,
                );
                drop(guard);
                self.emit(Event::JobFinished {
                    id: i,
                    label,
                    status: "skipped".into(),
                    ms: 0.0,
                });
                guard = sched.lock().unwrap();
                work_available.notify_all();
                continue;
            }

            let node = &mut guard.nodes[i];
            let label = node.label.clone();
            let kind = node.kind;
            let fingerprint = node.fingerprint;
            let run = node.run.take().expect("job claimed twice");
            let dep_ids = node.deps.clone();

            // Cache probe. The memory tier is a HashMap lookup, but the
            // disk tier does file I/O, so probe outside the lock: claim
            // the job, release the scheduler, then look up.
            if let Some(fp) = fingerprint {
                drop(guard);
                let probe_t0 = Instant::now();
                let found = self.cache.lookup(kind, fp);
                if let Some((_, source)) = &found {
                    let tag = kind.tag();
                    metrics::cache_hits(tag, source.tag()).inc();
                    if let Some(q) = queued_s {
                        metrics::stage_queue_seconds(tag).observe(q);
                    }
                    telemetry::record_span(&label, tag, fp, 0, probe_t0);
                }
                guard = sched.lock().unwrap();
                if let Some((value, source)) = found {
                    guard.values[i] = Some(value);
                    let mut spans = telemetry::take_thread_spans();
                    guard.spans.append(&mut spans);
                    Self::finish(&mut guard, i, JobStatus::Succeeded, source, Duration::ZERO);
                    drop(guard);
                    self.emit(Event::CacheHit {
                        id: i,
                        label,
                        source: source.tag().into(),
                    });
                    guard = sched.lock().unwrap();
                    work_available.notify_all();
                    continue;
                }
            }

            let dep_values: Vec<JobValue> = dep_ids
                .iter()
                .map(|d| guard.values[d.index()].clone().expect("dep value missing"))
                .collect();
            drop(guard);

            self.emit(Event::JobStarted {
                id: i,
                label: label.clone(),
            });
            let t0 = Instant::now();
            let ctx = JobCtx {
                deps: &dep_values,
                cancel: &self.cfg.cancel,
            };
            // A body that panics must become a Failed job, not a dead
            // worker: an unwinding worker would leave `pending` stuck
            // above zero and deadlock its siblings on the condvar.
            let output = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&ctx)))
                .unwrap_or_else(|payload| Err(format!("job panicked: {}", panic_text(payload))));
            let elapsed = t0.elapsed();
            let ms = elapsed.as_secs_f64() * 1e3;

            // Telemetry at the job boundary: counters + histograms are
            // relaxed atomics (handle lookup is a cold registration
            // map), and the span goes to this thread's local buffer.
            let tag = kind.tag();
            if let Some(q) = queued_s {
                metrics::stage_queue_seconds(tag).observe(q);
            }
            metrics::stage_wall_seconds(tag).observe(elapsed.as_secs_f64());
            match &output {
                Ok(_) => metrics::jobs_executed(tag).inc(),
                Err(_) => metrics::jobs_failed(tag).inc(),
            }
            let span_id = fingerprint.unwrap_or_else(|| telemetry::derived_id(0, &label));
            telemetry::record_span_at(&label, tag, span_id, 0, t0, t0 + elapsed);

            match &output {
                Ok(_) => self.emit(Event::JobFinished {
                    id: i,
                    label: label.clone(),
                    status: "ok".into(),
                    ms,
                }),
                Err(msg) => {
                    // Surface the failure — panic text included — in the
                    // event stream with the job id, not only in the
                    // final report.
                    self.emit(Event::StageError {
                        id: i,
                        label: label.clone(),
                        error: msg.clone(),
                    });
                    self.emit(Event::JobFinished {
                        id: i,
                        label: label.clone(),
                        status: "failed".into(),
                        ms,
                    });
                }
            }

            // Persist before re-locking: `put` may encode + write to
            // disk, which must not serialize the scheduler. The
            // after-job hook runs strictly after the publish (and on
            // failure too), so a lease released there never exposes a
            // window where the job is neither leased nor materialized.
            if let (Ok(value), Some(fp)) = (&output, fingerprint) {
                self.cache.put(kind, fp, value.clone());
            }
            if let (Some(hook), Some(fp)) = (&self.after_job, fingerprint) {
                hook(kind, fp, output.is_ok());
            }

            guard = sched.lock().unwrap();
            {
                // Flush this thread's span buffer (the job span plus any
                // spans the body recorded) into the run's aggregate.
                let mut spans = telemetry::take_thread_spans();
                guard.spans.append(&mut spans);
            }
            match output {
                Ok(value) => {
                    guard.values[i] = Some(value);
                    Self::finish(
                        &mut guard,
                        i,
                        JobStatus::Succeeded,
                        CacheSource::None,
                        elapsed,
                    );
                }
                Err(msg) => {
                    Self::finish(
                        &mut guard,
                        i,
                        JobStatus::Failed(msg),
                        CacheSource::None,
                        elapsed,
                    );
                }
            }
            work_available.notify_all();
        }
    }

    /// The next ready job: lowest id, except that hint-deferred jobs
    /// (a live peer shard holds their lease) are passed over while any
    /// non-deferred ready job exists. Falls back to the lowest id when
    /// everything is deferred, so deferral can starve nothing. At most
    /// [`MAX_HINT_PROBES`] candidates are consulted per pick — the hint
    /// runs with the scheduler locked and may do (memoized) I/O, so a
    /// large fully-deferred ready set must not turn one pick into an
    /// unbounded probe scan.
    fn pick_ready(&self, sched: &Sched<'_>) -> Option<usize> {
        /// Candidates consulted per pick before falling back.
        const MAX_HINT_PROBES: usize = 8;
        let first = sched.ready.iter().next().copied()?;
        let Some(hint) = &self.ready_hint else {
            return Some(first);
        };
        sched
            .ready
            .iter()
            .copied()
            .take(MAX_HINT_PROBES)
            .find(|&i| !hint(sched.nodes[i].kind, sched.nodes[i].fingerprint))
            .or(Some(first))
    }

    /// Record job `i`'s terminal status and release its dependents.
    fn finish(
        sched: &mut Sched<'_>,
        i: usize,
        status: JobStatus,
        cache: CacheSource,
        dur: Duration,
    ) {
        let failed_reason = match &status {
            JobStatus::Failed(m) => {
                Some(format!("dependency '{}' failed: {m}", sched.nodes[i].label))
            }
            JobStatus::Skipped(_) => {
                Some(format!("dependency '{}' was skipped", sched.nodes[i].label))
            }
            // Dependents of a cancelled job are claimed normally and hit
            // the cancel check themselves, so the whole tail of a
            // cancelled run reads `cancelled`, not `skipped`.
            JobStatus::Cancelled | JobStatus::Succeeded => None,
        };
        sched.records[i] = Some((status, cache, dur));
        sched.pending -= 1;
        let dependents = sched.dependents[i].clone();
        for d in dependents {
            if let Some(reason) = &failed_reason {
                sched.poison[d].get_or_insert_with(|| reason.clone());
            }
            sched.remaining[d] -= 1;
            if sched.remaining[d] == 0 {
                sched.ready.insert(d);
                sched.ready_at[d] = Some(Instant::now());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::JobValue;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn val(x: u64) -> JobValue {
        Arc::new(x)
    }

    fn diamond(counter: Option<&AtomicUsize>) -> JobGraph<'_> {
        // a → (b, c) → d, summing values.
        let mut g = JobGraph::new();
        let bump = move || {
            if let Some(c) = counter {
                c.fetch_add(1, Ordering::Relaxed);
            }
        };
        let a = g.add("a", JobKind::Lock, Some(1), vec![], move |_| {
            bump();
            Ok(val(1))
        });
        let b = g.add("b", JobKind::Train, Some(2), vec![a], move |ctx| {
            bump();
            Ok(val(*ctx.dep::<u64>(0) + 10))
        });
        let c = g.add("c", JobKind::Train, Some(3), vec![a], move |ctx| {
            bump();
            Ok(val(*ctx.dep::<u64>(0) + 20))
        });
        g.add("d", JobKind::Aggregate, Some(4), vec![b, c], move |ctx| {
            bump();
            Ok(val(*ctx.dep::<u64>(0) + *ctx.dep::<u64>(1)))
        });
        g
    }

    #[test]
    fn diamond_runs_in_dependency_order() {
        for workers in [1, 4] {
            let exec = Executor::new(ExecConfig::with_workers(workers));
            let out = exec.run(diamond(None));
            assert!(out.all_succeeded());
            assert_eq!(*out.value::<u64>(JobId(3)).unwrap(), 32);
            assert_eq!(out.stats.executed, 4);
        }
    }

    #[test]
    fn cache_skips_repeated_work() {
        let exec = Executor::new(ExecConfig::with_workers(2));
        let ran = AtomicUsize::new(0);
        let first = exec.run(diamond(Some(&ran)));
        assert_eq!(first.stats.cache_hits(), 0);
        assert_eq!(ran.load(Ordering::Relaxed), 4);
        // Second run with the same executor: everything is cache-served.
        let second = exec.run(diamond(Some(&ran)));
        assert!(second.all_succeeded());
        assert_eq!(second.stats.memory_hits, 4);
        assert_eq!(second.stats.cache_hits(), 4);
        assert_eq!(second.stats.executed, 0);
        assert_eq!(ran.load(Ordering::Relaxed), 4, "no body re-ran");
        assert_eq!(*second.value::<u64>(JobId(3)).unwrap(), 32);
        assert!(second
            .records
            .iter()
            .all(|r| r.cache == CacheSource::Memory));
    }

    #[test]
    fn failure_poisons_dependents_transitively() {
        let mut g = JobGraph::new();
        let a = g.add("a", JobKind::Lock, None, vec![], |_| Err("boom".into()));
        let b = g.add("b", JobKind::Train, None, vec![a], |_| Ok(val(1)));
        let c = g.add("c", JobKind::Attack, None, vec![b], |_| Ok(val(2)));
        let ok = g.add("ok", JobKind::Lock, None, vec![], |_| Ok(val(3)));
        let exec = Executor::new(ExecConfig::with_workers(4));
        let out = exec.run(g);
        assert_eq!(out.stats.failed, 1);
        assert_eq!(out.stats.skipped, 2);
        assert_eq!(out.stats.executed, 1);
        assert!(matches!(
            out.records[a.index()].status,
            JobStatus::Failed(_)
        ));
        assert!(matches!(
            out.records[b.index()].status,
            JobStatus::Skipped(_)
        ));
        assert!(matches!(
            out.records[c.index()].status,
            JobStatus::Skipped(_)
        ));
        assert_eq!(*out.value::<u64>(ok).unwrap(), 3);
    }

    #[test]
    fn cancellation_stops_unclaimed_jobs() {
        let exec = Executor::new(ExecConfig::with_workers(1));
        let token = exec.cancel_token();
        let mut g = JobGraph::new();
        let t = token.clone();
        let a = g.add("a", JobKind::Lock, None, vec![], move |_| {
            // First job cancels the run; everything after it is dropped.
            t.cancel();
            Ok(val(1))
        });
        let b = g.add("b", JobKind::Train, None, vec![a], |_| Ok(val(2)));
        let c = g.add("c", JobKind::Attack, None, vec![b], |_| Ok(val(3)));
        let out = exec.run(g);
        assert_eq!(out.stats.executed, 1);
        assert_eq!(out.stats.cancelled, 2);
        assert_eq!(out.records[b.index()].status, JobStatus::Cancelled);
        assert_eq!(out.records[c.index()].status, JobStatus::Cancelled);
        assert!(out.value::<u64>(b).is_none());
    }

    #[test]
    fn job_bodies_can_poll_the_token() {
        let exec = Executor::new(ExecConfig::with_workers(2));
        let token = exec.cancel_token();
        let mut g = JobGraph::new();
        g.add("long", JobKind::Train, None, vec![], move |ctx| {
            token.cancel();
            if ctx.cancel.is_cancelled() {
                return Err("cooperatively aborted".into());
            }
            Ok(val(0))
        });
        let out = exec.run(g);
        assert_eq!(out.stats.failed, 1);
    }

    #[test]
    fn panicking_job_fails_without_deadlocking_workers() {
        // A panic in one body must become a Failed record — not a dead
        // worker thread leaving siblings waiting forever.
        for workers in [1, 4] {
            let mut g = JobGraph::new();
            let boom = g.add("boom", JobKind::Train, None, vec![], |_| {
                panic!("kaboom {}", 42);
            });
            let child = g.add("child", JobKind::Attack, None, vec![boom], |_| Ok(val(1)));
            let ok = g.add("ok", JobKind::Lock, None, vec![], |_| Ok(val(2)));
            let out = Executor::new(ExecConfig::with_workers(workers)).run(g);
            match &out.records[boom.index()].status {
                JobStatus::Failed(msg) => assert!(msg.contains("kaboom 42"), "{msg}"),
                other => panic!("expected Failed, got {other:?}"),
            }
            assert!(matches!(
                out.records[child.index()].status,
                JobStatus::Skipped(_)
            ));
            assert_eq!(*out.value::<u64>(ok).unwrap(), 2);
        }
    }

    #[test]
    fn events_stream_job_lifecycle_and_panics() {
        let path = std::env::temp_dir().join(format!(
            "gnnunlock-exec-events-{}.jsonl",
            std::process::id()
        ));
        let log = Arc::new(EventLog::create(&path).unwrap());
        let exec = Executor::new(ExecConfig::with_workers(1)).with_events(log);
        let mut g = JobGraph::new();
        let ok = g.add("fine", JobKind::Lock, Some(1), vec![], |_| Ok(val(1)));
        let boom = g.add("boom", JobKind::Train, None, vec![ok], |_| {
            panic!("exploded in flight");
        });
        g.add("child", JobKind::Attack, None, vec![boom], |_| Ok(val(2)));
        let out = exec.run(g);
        assert_eq!(out.stats.failed, 1);

        let replay = EventLog::replay(&path).unwrap();
        assert!(!replay.truncated);
        // The panic is surfaced as a stage-error carrying the job id.
        let stage_error = replay
            .events
            .iter()
            .find_map(|e| match e {
                Event::StageError { id, error, .. } => Some((*id, error.clone())),
                _ => None,
            })
            .expect("panic must appear in the event log");
        assert_eq!(stage_error.0, boom.index());
        assert!(stage_error.1.contains("exploded in flight"));
        // Lifecycle: started + finished for the ok job, skip record for
        // the poisoned child.
        assert!(replay.events.contains(&Event::JobStarted {
            id: 0,
            label: "fine".into()
        }));
        assert!(replay.events.iter().any(|e| matches!(
            e,
            Event::JobFinished { id: 2, status, .. } if status == "skipped"
        )));
        // Re-running cache-hits the fingerprinted job and logs it.
        let _ = exec.run({
            let mut g = JobGraph::new();
            g.add("fine", JobKind::Lock, Some(1), vec![], |_| Ok(val(1)));
            g
        });
        let replay = EventLog::replay(&path).unwrap();
        assert!(replay.events.iter().any(|e| matches!(
            e,
            Event::CacheHit { id: 0, source, .. } if source == "memory"
        )));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn after_job_hook_fires_after_publish_for_ok_and_failed() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(u64, bool, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let exec = Executor::new(ExecConfig::with_workers(1));
        let cache = exec.cache().clone();
        let hook = {
            let seen = seen.clone();
            let cache = cache.clone();
            Arc::new(move |kind: JobKind, fp: u64, ok: bool| {
                // At hook time a successful result is already published.
                let published = cache.get(kind, fp).is_some();
                seen.lock().unwrap().push((fp, ok, published));
            })
        };
        let exec = exec.with_after_job(hook);
        let mut g = JobGraph::new();
        g.add("good", JobKind::Lock, Some(5), vec![], |_| Ok(val(1)));
        g.add("bad", JobKind::Train, Some(6), vec![], |_| {
            Err("boom".into())
        });
        g.add("unfingerprinted", JobKind::Verify, None, vec![], |_| {
            Ok(val(2))
        });
        let out = exec.run(g);
        assert_eq!(out.stats.failed, 1);
        let mut seen = seen.lock().unwrap().clone();
        seen.sort_unstable();
        // Fingerprinted jobs only; success published before the hook.
        assert_eq!(seen, vec![(5, true, true), (6, false, false)]);
    }

    #[test]
    fn after_job_hook_skips_cache_hits() {
        let fired = Arc::new(AtomicUsize::new(0));
        let hook = {
            let fired = fired.clone();
            Arc::new(move |_: JobKind, _: u64, _: bool| {
                fired.fetch_add(1, Ordering::Relaxed);
            })
        };
        let exec = Executor::new(ExecConfig::with_workers(1)).with_after_job(hook);
        let build = || {
            let mut g = JobGraph::new();
            g.add("j", JobKind::Lock, Some(5), vec![], |_| Ok(val(1)));
            g
        };
        let _ = exec.run(build());
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        // Second run is a memory hit: the body never ran, no hook.
        let _ = exec.run(build());
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stage_summaries_mark_over_budget_stages() {
        let exec = Executor::new(ExecConfig::with_workers(1));
        let mut g = JobGraph::new();
        g.add("slow", JobKind::Train, None, vec![], |_| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(val(1))
        });
        g.add("fast", JobKind::Lock, None, vec![], |_| Ok(val(2)));
        let out = exec.run(g);
        // Explicit budget: the 5 ms train stage is over a 1 ms budget,
        // and nothing is over an absent budget.
        let with = out.stage_summaries_with_budget(Some(1.0));
        let train = with.iter().find(|s| s.kind == "train").unwrap();
        assert!(train.over_budget, "5 ms stage must exceed a 1 ms budget");
        let without = out.stage_summaries_with_budget(None);
        assert!(without.iter().all(|s| !s.over_budget));
        // A generous budget marks nothing either.
        let generous = out.stage_summaries_with_budget(Some(1e9));
        assert!(generous.iter().all(|s| !s.over_budget));
    }

    #[test]
    fn empty_graph_is_fine() {
        let exec = Executor::new(ExecConfig::default());
        let out = exec.run(JobGraph::new());
        assert_eq!(out.stats.total, 0);
        assert!(out.all_succeeded());
    }
}
