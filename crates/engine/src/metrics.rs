//! Engine handles into the global telemetry [`Registry`].
//!
//! One function per metric family keeps names, labels and help strings
//! in a single place. Handle lookup takes the registry's registration
//! mutex, so callers on hot paths should fetch a handle once per job /
//! operation boundary, never per inner-loop iteration.

use gnnunlock_telemetry::{Counter, Gauge, Histogram, Registry, DURATION_BUCKETS};

/// Millisecond buckets for retry backoff pauses: the knob range runs
/// from single-digit base pauses to multi-second deadline budgets.
pub(crate) const BACKOFF_MS_BUCKETS: &[f64] = &[
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
];

/// Bodies of `kind` jobs that actually ran to completion.
pub(crate) fn jobs_executed(kind: &str) -> Counter {
    Registry::global().counter_with(
        "engine_jobs_executed_total",
        "Job bodies executed (not cache-served), per stage kind",
        &[("kind", kind)],
    )
}

/// Bodies of `kind` jobs that returned an error or panicked.
pub(crate) fn jobs_failed(kind: &str) -> Counter {
    Registry::global().counter_with(
        "engine_jobs_failed_total",
        "Job bodies that failed or panicked, per stage kind",
        &[("kind", kind)],
    )
}

/// Jobs of `kind` served from cache tier `tier` (`memory` / `disk`).
pub(crate) fn cache_hits(kind: &str, tier: &str) -> Counter {
    Registry::global().counter_with(
        "engine_cache_hits_total",
        "Jobs served from a cache tier instead of executing, per stage kind",
        &[("kind", kind), ("tier", tier)],
    )
}

/// Wall-clock seconds job bodies of `kind` spent executing.
pub(crate) fn stage_wall_seconds(kind: &str) -> Histogram {
    Registry::global().histogram_with(
        "engine_stage_wall_seconds",
        "Wall-clock job body execution time, per stage kind",
        &[("kind", kind)],
        DURATION_BUCKETS,
    )
}

/// Seconds jobs of `kind` sat ready before a worker claimed them.
pub(crate) fn stage_queue_seconds(kind: &str) -> Histogram {
    Registry::global().histogram_with(
        "engine_stage_queue_seconds",
        "Time between a job becoming ready and a worker claiming it, per stage kind",
        &[("kind", kind)],
        DURATION_BUCKETS,
    )
}

/// Lease-lifecycle counter `event` (`claims`, `busy`, `takeovers`,
/// `lost`, `released`, `poll_waits`, `heartbeats`, `expired_observed`).
pub(crate) fn lease_event(event: &str) -> Counter {
    Registry::global().counter_with(
        "lease_events_total",
        "Lease lifecycle events across all lease managers",
        &[("event", event)],
    )
}

/// Store-lifecycle counter `op` (`loads`, `misses`, `corrupt_evictions`,
/// `saves`, `save_errors`, `transient_retries`).
pub(crate) fn store_event(op: &str) -> Counter {
    Registry::global().counter_with(
        "store_events_total",
        "Disk-store operations across all stores",
        &[("op", op)],
    )
}

/// Backend operations of logical kind `op` that were retried by the
/// resilience layer after a transient failure.
pub(crate) fn store_retry(op: &str) -> Counter {
    Registry::global().counter_with(
        "store_retries_total",
        "Store operations retried after a transient backend failure, per logical op",
        &[("op", op)],
    )
}

/// Milliseconds of (possibly virtual) backoff parked between retry
/// attempts.
pub(crate) fn store_backoff_ms() -> Histogram {
    Registry::global().histogram_with(
        "store_backoff_ms",
        "Backoff pauses between store retry attempts, in milliseconds",
        &[],
        BACKOFF_MS_BUCKETS,
    )
}

/// Circuit-breaker state of the most recently transitioned store
/// backend: 0 closed, 1 half-open, 2 open.
pub(crate) fn store_breaker_state() -> Gauge {
    Registry::global().gauge(
        "store_breaker_state",
        "Store circuit-breaker state: 0 closed, 1 half-open (probing), 2 open",
    )
}

/// Entries evicted by garbage collection.
pub(crate) fn store_gc_evicted() -> Counter {
    Registry::global().counter_with(
        "store_gc_evicted_entries_total",
        "Cache entries evicted by GC budget enforcement",
        &[],
    )
}

/// Bytes reclaimed by garbage collection.
pub(crate) fn store_gc_reclaimed_bytes() -> Counter {
    Registry::global().counter_with(
        "store_gc_reclaimed_bytes_total",
        "Bytes reclaimed from the cache directory by GC",
        &[],
    )
}
