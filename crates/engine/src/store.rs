//! A versioned, content-addressed on-disk result store.
//!
//! The store is the persistence tier behind [`crate::ResultCache`]: each
//! entry is one file holding the encoded output of a job, addressed by
//! `(job kind, fingerprint)` exactly like the in-memory tier, so
//! campaigns sharing a directory (`GNNUNLOCK_CACHE_DIR`) skip each
//! other's completed work across processes and machines.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/
//!   gnnunlock-store.version      # "gnnunlock-store v1\n" — schema gate
//!   events.jsonl                 # campaign event log (see crate::events)
//!   objects/<kind>/<hh>/<fingerprint as 16 hex>.bin
//!   tenants/<ns>/objects/...     # tenant-namespaced entries (same shape)
//! ```
//!
//! where `<kind>` is the sanitized job-kind tag and `<hh>` the first two
//! hex digits of the fingerprint (a 256-way fan-out so directories stay
//! small at campaign scale).
//!
//! **Tenant namespaces** ([`DiskStore::open_namespaced`]) relocate a
//! handle's entries under `tenants/<ns>/objects/`, so multi-tenant
//! services sharing one root keep each tenant's results (and, since
//! lease files live beside entries, its leases) disjoint: one tenant
//! can never be served — or evicted by — another tenant's bytes.
//! [`tenant_usage`] accounts bytes per namespace and [`gc_roots`]
//! enforces a byte budget across many object roots (a tenant's
//! campaigns), complementing the per-store [`DiskStore::gc`].
//!
//! Durability and integrity:
//!
//! - **atomic publish** — entries are written to a temporary file in the
//!   same directory and `rename`d into place, so a crashed writer never
//!   leaves a half-written entry under the final name;
//! - **corruption detection** — every entry carries a header (magic,
//!   schema version, kind tag, fingerprint, payload length, FNV-1a
//!   checksum). A mismatched or truncated entry is *evicted* (deleted)
//!   and reported as a miss, so readers recompute instead of trusting
//!   bad bytes;
//! - **schema versioning** — the root carries a version file; opening a
//!   store written by an incompatible schema fails loudly instead of
//!   misreading entries.

use crate::backend::{
    backend_from_env, is_transient_kind, FileMeta, LocalDirBackend, StoreBackend,
};
use crate::graph::{fingerprint, JobKind};
use crate::metrics;
use crate::resilience::{ResilientBackend, RetryPolicy};
use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// Environment variable naming the shared on-disk cache directory.
pub const CACHE_DIR_ENV: &str = "GNNUNLOCK_CACHE_DIR";

/// Environment variable bounding the store's total entry bytes: after
/// each persistent campaign run, least-recently-used entries are evicted
/// until the store fits the budget (entries the current process touched
/// are never evicted). Unset or unparsable = no garbage collection.
pub const CACHE_BUDGET_ENV: &str = "GNNUNLOCK_CACHE_BUDGET_BYTES";

/// Environment variable bounding each tenant namespace's total entry
/// bytes in a multi-tenant service (`gnnunlockd`): after a tenant's
/// campaign completes, that tenant's least-recently-used entries are
/// evicted (across all of its campaigns' stores, see [`gc_roots`])
/// until the namespace fits the budget. Unset or unparsable = no
/// per-tenant garbage collection. Orthogonal to [`CACHE_BUDGET_ENV`],
/// which bounds one store directory.
pub const TENANT_BUDGET_ENV: &str = "GNNUNLOCK_TENANT_BUDGET_BYTES";

/// Contents of the store's version file. Bump the `v1` when the entry
/// format changes incompatibly.
const VERSION_TEXT: &str = "gnnunlock-store v1\n";
const VERSION_FILE: &str = "gnnunlock-store.version";
/// Magic prefix of every entry file (includes the entry-format version).
const ENTRY_MAGIC: &[u8; 8] = b"GNNUCV1\n";

/// Monotonic counters describing store traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries read back successfully.
    pub loads: usize,
    /// Lookups that found no entry.
    pub misses: usize,
    /// Corrupt or truncated entries detected and evicted.
    pub evictions: usize,
    /// Entries written.
    pub saves: usize,
    /// Writes that failed with an I/O error (the run continues; the
    /// entry is simply not persisted).
    pub save_errors: usize,
}

/// What one [`DiskStore::gc`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Entry bytes on disk before the sweep.
    pub bytes_before: u64,
    /// Entry bytes on disk after the sweep.
    pub bytes_after: u64,
    /// Entries evicted.
    pub evicted_entries: usize,
    /// Entries kept because this process loaded or saved them (the
    /// current run's live set is never evicted).
    pub live_protected: usize,
}

/// A content-addressed on-disk store of encoded job results.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Sanitized tenant namespace; `None` = the default `objects/`
    /// subtree, `Some(ns)` = `tenants/<ns>/objects/`.
    namespace: Option<String>,
    /// The substrate every persistence and coordination primitive goes
    /// through — see [`crate::StoreBackend`].
    backend: Arc<dyn StoreBackend>,
    loads: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    saves: AtomicUsize,
    save_errors: AtomicUsize,
    /// Entry paths this handle loaded or saved — the live set the
    /// garbage collector must never evict (another process may be
    /// mid-run too, but its entries are recent by construction: every
    /// load refreshes the entry's mtime, so LRU eviction reaches only
    /// entries no active run is using).
    touched: Mutex<HashSet<PathBuf>>,
}

/// Restrict a job-kind tag to `[A-Za-z0-9_-]` so entry paths can never
/// traverse outside the store root, whatever a `JobKind::Custom` tag
/// contains. Empty tags map to `"_"`.
pub fn sanitize_tag(tag: &str) -> String {
    let mut out: String = tag
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push('_');
    }
    out
}

impl DiskStore {
    /// Open (creating if necessary) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created, or if it already holds a
    /// store with an incompatible schema version.
    pub fn open(dir: &Path) -> io::Result<DiskStore> {
        Self::open_opts(dir, None, None)
    }

    /// Open the store rooted at `dir` with this handle's entries living
    /// in the tenant namespace `tenant` (`tenants/<ns>/objects/` instead
    /// of `objects/`; the id is sanitized like a job-kind tag, and an
    /// empty id means the default namespace). Handles on different
    /// namespaces of one root share the version gate but never each
    /// other's entries, leases or garbage collection.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DiskStore::open`].
    pub fn open_namespaced(dir: &Path, tenant: &str) -> io::Result<DiskStore> {
        Self::open_opts(dir, Some(tenant), None)
    }

    /// Open the store rooted at `dir` on an explicit [`StoreBackend`]
    /// (bypassing [`crate::STORE_BACKEND_ENV`] selection). `tenant`
    /// selects a namespace exactly like [`DiskStore::open_namespaced`];
    /// blank means the default namespace.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DiskStore::open`].
    pub fn open_with_backend(
        dir: &Path,
        tenant: &str,
        backend: Arc<dyn StoreBackend>,
    ) -> io::Result<DiskStore> {
        Self::open_opts(dir, Some(tenant), Some(backend))
    }

    pub(crate) fn open_opts(
        dir: &Path,
        tenant: Option<&str>,
        backend: Option<Arc<dyn StoreBackend>>,
    ) -> io::Result<DiskStore> {
        let namespace = tenant
            .map(str::trim)
            .filter(|ns| !ns.is_empty())
            .map(sanitize_tag);
        // Every backend — whatever the selection — runs behind the
        // resilience layer: deterministic transient retries, a circuit
        // breaker, and the publish spill queue.
        let backend: Arc<dyn StoreBackend> =
            ResilientBackend::wrap(backend.unwrap_or_else(|| backend_from_env(dir)));
        backend.ensure_dir(dir)?;
        let version_path = dir.join(VERSION_FILE);
        // The gate runs under the shared RetryPolicy: a torn observation
        // (a strict prefix of the expected text — an NFS-style cache
        // serving a partial page) says nothing about the schema, so it
        // is surfaced as a transient error the policy retries. Only a
        // stable verdict (match, mismatch, hard I/O failure) escapes.
        RetryPolicy::from_env().run(backend.as_ref(), "version_gate", || {
            match backend.load(&version_path) {
                Ok(found) if found == VERSION_TEXT.as_bytes() => Ok(()),
                Ok(found) if VERSION_TEXT.as_bytes().starts_with(&found[..]) => Err(
                    io::Error::new(io::ErrorKind::Interrupted, "torn version-gate read"),
                ),
                Ok(found) => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "cache dir {} holds schema {:?}, this build expects {:?}; \
                         use a fresh directory",
                        dir.display(),
                        String::from_utf8_lossy(&found).trim(),
                        VERSION_TEXT.trim()
                    ),
                )),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // Publish the version file atomically: N worker
                    // processes may cold-open the same fresh directory
                    // concurrently, and a reader must never observe a
                    // half-written gate and misdiagnose a schema
                    // mismatch. Racing writers publish identical
                    // content — last one wins, harmlessly.
                    backend.publish(&version_path, VERSION_TEXT.as_bytes())
                }
                Err(e) => Err(e),
            }
        })?;
        // Sweep staging temps orphaned in the root by a writer killed
        // mid-version-publish (the GC only walks objects/, so they
        // would leak otherwise). Age-gated: a concurrent opener's
        // in-flight temp is seconds old and must not be clobbered.
        // (`.{VERSION_FILE}.tmp-` covers pre-trait store directories.)
        if let Ok(listed) = backend.list(dir, false) {
            let now = SystemTime::now();
            for meta in listed {
                let orphan_candidate =
                    meta.path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| {
                            n.starts_with(".tmp-")
                                || n.starts_with(&format!(".{VERSION_FILE}.tmp-"))
                        });
                if orphan_candidate
                    && now
                        .duration_since(meta.mtime)
                        .is_ok_and(|age| age >= Duration::from_secs(3600))
                {
                    let _ = backend.remove(&meta.path);
                }
            }
        }
        Ok(DiskStore {
            root: dir.to_path_buf(),
            namespace,
            backend,
            loads: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            saves: AtomicUsize::new(0),
            save_errors: AtomicUsize::new(0),
            touched: Mutex::new(HashSet::new()),
        })
    }

    /// The backend this store (and any [`crate::LeaseManager`] built on
    /// it) runs against.
    pub fn backend(&self) -> &Arc<dyn StoreBackend> {
        &self.backend
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// This handle's tenant namespace (sanitized), if any.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// The directory this handle's entries live under: `objects/` for
    /// the default namespace, `tenants/<ns>/objects/` for a tenant
    /// namespace. The unit [`gc_roots`] sweeps.
    pub fn objects_root(&self) -> PathBuf {
        match &self.namespace {
            Some(ns) => self.root.join("tenants").join(ns).join("objects"),
            None => self.root.join("objects"),
        }
    }

    /// The path an entry for `(kind, fp)` lives at. Always strictly
    /// inside the store root (tags and namespaces are sanitized).
    pub fn entry_path(&self, kind: JobKind, fp: u64) -> PathBuf {
        let hex = format!("{fp:016x}");
        self.objects_root()
            .join(sanitize_tag(kind.tag()))
            .join(&hex[..2])
            .join(format!("{hex}.bin"))
    }

    /// Whether an entry file for `(kind, fp)` exists on disk. A cheap
    /// stat, no validation — a corrupt entry still counts until a
    /// [`DiskStore::load`] detects and evicts it. Used by probe-ahead
    /// scheduling (is a dependent's result already materialized?) and
    /// by [`crate::ResultCache::put`] to skip re-writing entries a peer
    /// process already published (deterministic jobs make same-address
    /// entries byte-identical, so skipping never loses information).
    pub fn contains(&self, kind: JobKind, fp: u64) -> bool {
        self.backend.contains(&self.entry_path(kind, fp))
    }

    /// Pin `(kind, fp)` into this handle's live set (GC protection)
    /// without loading it — used when a `put` is skipped because a peer
    /// already published the identical entry this run still depends on.
    pub(crate) fn mark_live(&self, kind: JobKind, fp: u64) {
        self.touched
            .lock()
            .unwrap()
            .insert(self.entry_path(kind, fp));
    }

    /// Evict the entry for `(kind, fp)` (counted in
    /// [`StoreStats::evictions`]) — used when a structurally intact
    /// entry turns out to be semantically unreadable (the codec
    /// declines it), so the recompute's save can replace it.
    pub(crate) fn evict_entry(&self, kind: JobKind, fp: u64) {
        let _ = self.evict(&self.entry_path(kind, fp));
    }

    /// Load the payload of `(kind, fp)`, verifying the entry header and
    /// checksum. Corrupt or truncated entries are evicted and reported
    /// as a miss.
    pub fn load(&self, kind: JobKind, fp: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(kind, fp);
        let bytes = match self.backend.load(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics::store_event("misses").inc();
                return None;
            }
            // A transient read error (EAGAIN-style, already retried by
            // the resilience layer) or a degraded fail-fast says
            // nothing about the entry's integrity — report a miss and
            // leave the entry for the retry, instead of evicting a good
            // entry.
            Err(e) if is_transient_kind(e.kind()) || crate::resilience::is_degraded(&e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics::store_event("misses").inc();
                metrics::store_event("transient_retries").inc();
                return None;
            }
            Err(_) => return self.evict(&path),
        };
        match Self::decode_entry(kind, fp, &bytes) {
            Some(payload) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                metrics::store_event("loads").inc();
                // A hit is a *use*: refresh the entry's mtime (the LRU
                // clock shared across processes, best-effort) and pin it
                // into this handle's live set so GC never evicts it.
                let _ = self.backend.refresh(&path);
                self.touched.lock().unwrap().insert(path);
                Some(payload)
            }
            None => self.evict(&path),
        }
    }

    /// Persist `payload` for `(kind, fp)` via write-then-rename.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (callers may treat persistence as
    /// best-effort; [`StoreStats::save_errors`] counts failures either
    /// way).
    pub fn save(&self, kind: JobKind, fp: u64, payload: &[u8]) -> io::Result<()> {
        match self.try_save(kind, fp, payload) {
            Ok(()) => {
                self.saves.fetch_add(1, Ordering::Relaxed);
                metrics::store_event("saves").inc();
                self.touched
                    .lock()
                    .unwrap()
                    .insert(self.entry_path(kind, fp));
                Ok(())
            }
            Err(e) => {
                self.save_errors.fetch_add(1, Ordering::Relaxed);
                metrics::store_event("save_errors").inc();
                Err(e)
            }
        }
    }

    fn try_save(&self, kind: JobKind, fp: u64, payload: &[u8]) -> io::Result<()> {
        let path = self.entry_path(kind, fp);
        let mut entry = Vec::with_capacity(payload.len() + 64);
        entry.extend_from_slice(ENTRY_MAGIC);
        let tag = sanitize_tag(kind.tag());
        entry.extend_from_slice(&(tag.len() as u16).to_le_bytes());
        entry.extend_from_slice(tag.as_bytes());
        entry.extend_from_slice(&fp.to_le_bytes());
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(&fingerprint(payload).to_le_bytes());
        entry.extend_from_slice(payload);
        // The atomic last-writer-wins obligation (staging temp, sync,
        // rename on the local backend) lives in the backend.
        self.backend.publish(&path, &entry)
    }

    /// Validate an entry file against its header; `None` means corrupt.
    fn decode_entry(kind: JobKind, fp: u64, bytes: &[u8]) -> Option<Vec<u8>> {
        let mut pos = 0usize;
        // checked_add: the length fields are corruption-controlled, and
        // an overflowing slice bound must read as "corrupt" (evict),
        // not panic in debug builds.
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..pos.checked_add(n)?)?;
            *pos += n;
            Some(s)
        };
        if take(&mut pos, ENTRY_MAGIC.len())? != ENTRY_MAGIC {
            return None;
        }
        let tag_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let tag = take(&mut pos, tag_len)?;
        if tag != sanitize_tag(kind.tag()).as_bytes() {
            return None;
        }
        let stored_fp = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        if stored_fp != fp {
            return None;
        }
        let payload_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let payload = take(&mut pos, payload_len)?;
        if pos != bytes.len() || fingerprint(payload) != checksum {
            return None;
        }
        Some(payload.to_vec())
    }

    fn evict(&self, path: &Path) -> Option<Vec<u8>> {
        let _ = self.backend.remove(path);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        metrics::store_event("corrupt_evictions").inc();
        None
    }

    /// Number of entry files currently on disk (walks the tree; meant
    /// for tests and diagnostics, not hot paths).
    pub fn len(&self) -> usize {
        self.backend
            .list(&self.objects_root(), true)
            .map(|files| files.iter().filter(|m| is_object_entry(&m.path)).count())
            .unwrap_or(0)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry bytes currently under this handle's namespace (walks
    /// the tree; quota accounting and diagnostics, not hot paths).
    /// Counts `.bin` entries only — in-flight `.tmp-*` staging files
    /// and `.lease`/`.tomb-*` protocol files never bill a budget.
    pub fn usage_bytes(&self) -> u64 {
        self.backend
            .list(&self.objects_root(), true)
            .map(|files| {
                files
                    .iter()
                    .filter(|m| is_object_entry(&m.path))
                    .map(|m| m.len)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            loads: self.loads.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            saves: self.saves.load(Ordering::Relaxed),
            save_errors: self.save_errors.load(Ordering::Relaxed),
        }
    }

    /// Evict least-recently-used entries until the store's entry bytes
    /// fit `budget_bytes`. Entries this handle loaded or saved (the
    /// current run's live set) are never evicted, even if the live set
    /// alone exceeds the budget. Recency is the entry file's mtime,
    /// which [`DiskStore::load`] refreshes on every hit, so the LRU
    /// order is shared across processes using the same directory.
    pub fn gc(&self, budget_bytes: u64) -> GcStats {
        let entries = sweep_orphans_and_list(self.backend.as_ref(), &self.objects_root());
        let bytes_before: u64 = entries.iter().map(|e| e.len).sum();
        let mut stats = GcStats {
            bytes_before,
            bytes_after: bytes_before,
            ..GcStats::default()
        };
        if bytes_before <= budget_bytes {
            return stats;
        }
        let touched = self.touched.lock().unwrap();
        let mut candidates: Vec<&FileMeta> = Vec::new();
        for e in &entries {
            if touched.contains(&e.path) {
                stats.live_protected += 1;
            } else {
                candidates.push(e);
            }
        }
        // Oldest first; path as the tie-breaker keeps the sweep
        // deterministic on filesystems with coarse mtime granularity.
        candidates.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        let mut remaining = bytes_before;
        for e in candidates {
            if remaining <= budget_bytes {
                break;
            }
            if self.backend.remove(&e.path).is_ok() {
                remaining -= e.len;
                stats.evicted_entries += 1;
            }
        }
        stats.bytes_after = remaining;
        if stats.evicted_entries > 0 {
            metrics::store_gc_evicted().add(stats.evicted_entries as u64);
            metrics::store_gc_reclaimed_bytes().add(stats.bytes_before - stats.bytes_after);
        }
        stats
    }

    /// Run [`DiskStore::gc`] with the budget named by
    /// [`CACHE_BUDGET_ENV`], if set and parsable. `None` when no budget
    /// is configured.
    pub fn gc_from_env(&self) -> Option<GcStats> {
        Some(self.gc(cache_budget_from_env()?))
    }
}

/// The cache-size budget named by [`CACHE_BUDGET_ENV`], if set and
/// parsable as bytes (a malformed value warns via [`crate::env`] and
/// disables garbage collection, visibly rather than silently).
pub fn cache_budget_from_env() -> Option<u64> {
    crate::env::knob(CACHE_BUDGET_ENV, "a byte count")
}

/// The per-tenant byte budget named by [`TENANT_BUDGET_ENV`], if set
/// and parsable (malformed values warn and disable per-tenant GC,
/// visibly rather than silently).
pub fn tenant_budget_from_env() -> Option<u64> {
    crate::env::knob(TENANT_BUDGET_ENV, "a byte count")
}

/// Whether `path` is a store entry (`*.bin`) — the only files byte
/// accounting and budget sweeps may count or evict. Everything else
/// under an objects root is protocol traffic: `.tmp-*` staging files,
/// `.lease` claims, `.tomb-*` takeover arbitration.
pub(crate) fn is_object_entry(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "bin")
}

/// Whether a file name is lease/staging protocol traffic — collectable
/// once hour-stale (see [`sweep_orphans_and_list`]), never billable.
pub(crate) fn is_protocol_name(name: &str) -> bool {
    name.starts_with(".tmp-") || name.ends_with(".lease") || name.contains(".tomb-")
}

/// Orphaned protocol files are collectable after this age: a `.tmp-`
/// staging file this old cannot still be in flight (saves take
/// milliseconds), a `.lease` is far past any takeover TTL (nobody
/// wants its job), and a `.tomb-` was orphaned by a challenger killed
/// mid-takeover. Deleting a lease resets its generation counter to 0,
/// which only costs epoch observability, never correctness.
const ORPHAN_PROTOCOL_AGE: Duration = Duration::from_secs(3600);

/// List the `.bin` entries under `root`, sweeping hour-stale orphaned
/// protocol files along the way — the shared walk behind
/// [`DiskStore::gc`] and [`gc_roots_with`], so *every* budget sweep
/// reclaims the debris of crashed writers and dead shards.
fn sweep_orphans_and_list(backend: &dyn StoreBackend, root: &Path) -> Vec<FileMeta> {
    let now = SystemTime::now();
    let mut entries = Vec::new();
    for meta in backend.list(root, true).unwrap_or_default() {
        if is_object_entry(&meta.path) {
            entries.push(meta);
        } else if meta
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(is_protocol_name)
            && now
                .duration_since(meta.mtime)
                .is_ok_and(|age| age >= ORPHAN_PROTOCOL_AGE)
        {
            let _ = backend.remove(&meta.path);
        }
    }
    entries
}

/// Sum of `.bin` entry bytes under `dir` (0 when the tree is absent).
/// Protocol files ([`is_protocol_name`]) are never billed: a crash that
/// orphans a large `.tmp-*` (or an in-flight `.lease`/`.tomb-*`) must
/// not eat a tenant's budget.
fn entry_bytes_under(backend: &dyn StoreBackend, dir: &Path) -> u64 {
    backend
        .list(dir, true)
        .map(|files| {
            files
                .iter()
                .filter(|m| is_object_entry(&m.path))
                .map(|m| m.len)
                .sum()
        })
        .unwrap_or(0)
}

/// Per-namespace entry bytes under one store root: the default
/// namespace keyed as `""`, each tenant namespace keyed by its
/// (sanitized) id. Only namespaces currently holding a directory are
/// listed; byte counts may be 0 for freshly created, empty namespaces.
///
/// # Errors
///
/// Propagates directory-read errors of the `tenants/` index itself
/// (a missing index just means no tenant namespaces).
pub fn tenant_usage(root: &Path) -> io::Result<std::collections::BTreeMap<String, u64>> {
    let backend = LocalDirBackend::new();
    let mut out = std::collections::BTreeMap::new();
    let default_root = root.join("objects");
    if default_root.is_dir() {
        out.insert(String::new(), entry_bytes_under(&backend, &default_root));
    }
    let tenants = root.join("tenants");
    let entries = match fs::read_dir(&tenants) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if !entry.path().is_dir() {
            continue;
        }
        let Ok(ns) = entry.file_name().into_string() else {
            continue;
        };
        out.insert(
            ns,
            entry_bytes_under(&backend, &entry.path().join("objects")),
        );
    }
    Ok(out)
}

/// [`tenant_usage`] against an explicit [`StoreBackend`]. Virtual
/// backends have no real directories, so namespaces are enumerated from
/// the key space itself: a tenant exists iff some key lives under
/// `tenants/<ns>/`. The billing rule is identical — only `.bin` entry
/// bytes count; in-flight protocol blobs (`.tmp-*`, `.lease`,
/// `.tomb-*`) never do.
///
/// # Errors
///
/// Propagates a failed listing of the `tenants/` prefix.
pub fn tenant_usage_with(
    backend: &dyn StoreBackend,
    root: &Path,
) -> io::Result<std::collections::BTreeMap<String, u64>> {
    let mut out = std::collections::BTreeMap::new();
    let default_root = root.join("objects");
    if !backend.list(&default_root, true)?.is_empty() || default_root.is_dir() {
        out.insert(String::new(), entry_bytes_under(backend, &default_root));
    }
    let tenants = root.join("tenants");
    let mut namespaces = std::collections::BTreeSet::new();
    for meta in backend.list(&tenants, true)? {
        if let Ok(rest) = meta.path.strip_prefix(&tenants) {
            if let Some(ns) = rest.components().next() {
                namespaces.insert(ns.as_os_str().to_string_lossy().into_owned());
            }
        }
    }
    for ns in namespaces {
        out.insert(
            ns.clone(),
            entry_bytes_under(backend, &tenants.join(&ns).join("objects")),
        );
    }
    Ok(out)
}

/// Evict least-recently-used entries across several object roots (each
/// an `objects/` directory as returned by [`DiskStore::objects_root`])
/// until their combined bytes fit `budget_bytes` — the multi-store
/// flavor of [`DiskStore::gc`], used for tenant-level quotas that span
/// campaign directories. Entries under a root listed in `protected`
/// count toward the byte accounting but are never evicted (campaigns
/// still running). Recency is entry mtime, exactly like
/// [`DiskStore::gc`], with the path as the deterministic tie-breaker.
pub fn gc_roots(roots: &[PathBuf], protected: &[PathBuf], budget_bytes: u64) -> GcStats {
    gc_roots_with(&LocalDirBackend::new(), roots, protected, budget_bytes)
}

/// [`gc_roots`] against an explicit [`StoreBackend`] — what
/// `gnnunlockd` uses when its campaigns run on a configured backend.
///
/// Besides byte-budget eviction, the sweep collects hour-stale orphaned
/// protocol files (`.tmp-*`, `.lease`, `.tomb-*`) under every root,
/// protected or not — exactly like [`DiskStore::gc`]. Without this, a
/// worker crashed mid-save would strand its staging file in a tenant's
/// namespace forever: tenant budget sweeps were the only GC that ever
/// visited daemon-managed campaign directories, and they skipped
/// non-entry files entirely.
pub fn gc_roots_with(
    backend: &dyn StoreBackend,
    roots: &[PathBuf],
    protected: &[PathBuf],
    budget_bytes: u64,
) -> GcStats {
    struct Entry {
        meta: FileMeta,
        protected: bool,
    }
    let mut entries = Vec::new();
    for root in roots {
        let shielded = protected.iter().any(|p| root.starts_with(p) || p == root);
        for meta in sweep_orphans_and_list(backend, root) {
            entries.push(Entry {
                meta,
                protected: shielded,
            });
        }
    }
    let bytes_before: u64 = entries.iter().map(|e| e.meta.len).sum();
    let mut stats = GcStats {
        bytes_before,
        bytes_after: bytes_before,
        live_protected: entries.iter().filter(|e| e.protected).count(),
        ..GcStats::default()
    };
    if bytes_before <= budget_bytes {
        return stats;
    }
    let mut candidates: Vec<&Entry> = entries.iter().filter(|e| !e.protected).collect();
    candidates.sort_by(|a, b| {
        a.meta
            .mtime
            .cmp(&b.meta.mtime)
            .then_with(|| a.meta.path.cmp(&b.meta.path))
    });
    let mut remaining = bytes_before;
    for e in candidates {
        if remaining <= budget_bytes {
            break;
        }
        if backend.remove(&e.meta.path).is_ok() {
            remaining -= e.meta.len;
            stats.evicted_entries += 1;
        }
    }
    stats.bytes_after = remaining;
    if stats.evicted_entries > 0 {
        metrics::store_gc_evicted().add(stats.evicted_entries as u64);
        metrics::store_gc_reclaimed_bytes().add(stats.bytes_before - stats.bytes_after);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gnnunlock-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_miss() {
        let dir = tmp_dir("rt");
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.load(JobKind::Train, 42).is_none());
        store.save(JobKind::Train, 42, b"payload").unwrap();
        assert_eq!(store.load(JobKind::Train, 42).unwrap(), b"payload");
        // Different kind or fingerprint: separate address.
        assert!(store.load(JobKind::Lock, 42).is_none());
        assert!(store.load(JobKind::Train, 43).is_none());
        let stats = store.stats();
        assert_eq!((stats.loads, stats.saves, stats.misses), (1, 1, 3));
        // A second handle on the same dir sees the entry (cross-process
        // sharing is just cross-handle sharing plus the version gate).
        let other = DiskStore::open(&dir).unwrap();
        assert_eq!(other.load(JobKind::Train, 42).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_evicted() {
        let dir = tmp_dir("corrupt");
        let store = DiskStore::open(&dir).unwrap();
        store.save(JobKind::Verify, 7, b"good bytes").unwrap();
        let path = store.entry_path(JobKind::Verify, 7);

        // Flipped payload byte: checksum mismatch.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(JobKind::Verify, 7).is_none());
        assert!(!path.exists(), "corrupt entry must be evicted");

        // Truncated entry.
        store.save(JobKind::Verify, 7, b"good bytes").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.load(JobKind::Verify, 7).is_none());
        assert!(!path.exists());

        // Recompute-and-save works after eviction.
        store.save(JobKind::Verify, 7, b"good bytes").unwrap();
        assert_eq!(store.load(JobKind::Verify, 7).unwrap(), b"good bytes");
        assert_eq!(store.stats().evictions, 2);

        // A corrupt payload-length field (valid magic/tag/fingerprint,
        // absurd length) must evict, not overflow: debug builds would
        // panic on an unchecked `pos + len` slice bound.
        store.save(JobKind::Verify, 7, b"good bytes").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let len_offset = ENTRY_MAGIC.len() + 2 + sanitize_tag("verify").len() + 8;
        bytes[len_offset..len_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(JobKind::Verify, 7).is_none());
        assert!(!path.exists());
        assert_eq!(store.stats().evictions, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_refuses_to_open() {
        let dir = tmp_dir("version");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(VERSION_FILE), "gnnunlock-store v0\n").unwrap();
        let err = DiskStore::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tags_are_sanitized_into_the_root() {
        let dir = tmp_dir("sanitize");
        let store = DiskStore::open(&dir).unwrap();
        for tag in ["../../escape", "a/b", "", "..", "ok-tag_9"] {
            let kind = JobKind::Custom(Box::leak(tag.to_string().into_boxed_str()));
            let path = store.entry_path(kind, 1);
            assert!(path.starts_with(&dir), "{path:?} escaped {dir:?}");
            assert!(path
                .components()
                .all(|c| c.as_os_str() != ".." && c.as_os_str() != "."));
        }
        assert_eq!(sanitize_tag("../x"), "___x");
        assert_eq!(sanitize_tag(""), "_");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_enforces_budget_and_never_evicts_live_entries() {
        let dir = tmp_dir("gc");
        // An earlier process filled the store with entries of known ages.
        let old = DiskStore::open(&dir).unwrap();
        let payload = [7u8; 64];
        for fp in 0..6u64 {
            old.save(JobKind::Lock, fp, &payload).unwrap();
            let f = fs::File::open(old.entry_path(JobKind::Lock, fp)).unwrap();
            f.set_modified(SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(fp))
                .unwrap();
        }
        let entry_len = fs::metadata(old.entry_path(JobKind::Lock, 0))
            .unwrap()
            .len();
        drop(old);

        // The current run loads one old entry and writes a new one:
        // both are live and must survive any budget.
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.load(JobKind::Lock, 1).is_some());
        store.save(JobKind::Lock, 99, &payload).unwrap();

        // Budget for three entries: the sweep must evict oldest-first
        // down to the budget, skipping the live pair.
        let budget = 3 * entry_len;
        let stats = store.gc(budget);
        assert_eq!(stats.bytes_before, 7 * entry_len);
        assert!(
            stats.bytes_after <= budget,
            "budget not enforced: {} > {budget}",
            stats.bytes_after
        );
        assert_eq!(stats.evicted_entries, 4);
        assert_eq!(stats.live_protected, 2);
        // Live entries survived…
        assert!(store.load(JobKind::Lock, 1).is_some());
        assert!(store.load(JobKind::Lock, 99).is_some());
        // …and the survivors among the old ones are the most recent
        // (fp 0, 2, 3 were the oldest unprotected → evicted; fp 5 kept).
        assert!(store.load(JobKind::Lock, 5).is_some());
        assert!(store.load(JobKind::Lock, 0).is_none());
        assert!(store.load(JobKind::Lock, 2).is_none());

        // A budget the live set already satisfies evicts nothing.
        let stats = store.gc(u64::MAX);
        assert_eq!(stats.evicted_entries, 0);

        // An orphaned in-flight temp file (a writer killed mid-save) is
        // cleaned up once stale; a fresh one is left alone.
        let objects = dir.join("objects").join("lock");
        let stale = objects.join(".tmp-1234-0");
        let fresh = objects.join(".tmp-1234-1");
        fs::write(&stale, b"half-written").unwrap();
        fs::write(&fresh, b"in flight").unwrap();
        fs::File::open(&stale)
            .unwrap()
            .set_modified(SystemTime::now() - Duration::from_secs(7200))
            .unwrap();
        // Same for lease-protocol leftovers of long-dead shards.
        let stale_lease = objects.join("00000000000000aa.lease");
        let fresh_lease = objects.join("00000000000000ab.lease");
        let stale_tomb = objects.join("00000000000000aa.lease.tomb-99-0");
        for p in [&stale_lease, &fresh_lease, &stale_tomb] {
            fs::write(p, b"gnnunlock-lease owner=x pid=1 gen=0\n").unwrap();
        }
        for p in [&stale_lease, &stale_tomb] {
            fs::File::open(p)
                .unwrap()
                .set_modified(SystemTime::now() - Duration::from_secs(7200))
                .unwrap();
        }
        store.gc(0);
        assert!(!stale.exists(), "stale tmp file must be collected");
        assert!(fresh.exists(), "recent tmp file must be left alone");
        assert!(!stale_lease.exists(), "ancient lease must be collected");
        assert!(!stale_tomb.exists(), "ancient tomb must be collected");
        assert!(fresh_lease.exists(), "recent lease must be left alone");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenant_namespaces_are_disjoint_and_accounted() {
        let dir = tmp_dir("tenant");
        let shared = DiskStore::open(&dir).unwrap();
        let alice = DiskStore::open_namespaced(&dir, "alice").unwrap();
        let bob = DiskStore::open_namespaced(&dir, "b/ob").unwrap(); // sanitized

        shared.save(JobKind::Lock, 1, b"shared bytes").unwrap();
        alice.save(JobKind::Lock, 1, b"alice's bytes!").unwrap();
        bob.save(JobKind::Lock, 1, b"bob bytes").unwrap();

        // Same (kind, fp), three disjoint entries: no namespace ever
        // serves another's bytes.
        assert_eq!(shared.load(JobKind::Lock, 1).unwrap(), b"shared bytes");
        assert_eq!(alice.load(JobKind::Lock, 1).unwrap(), b"alice's bytes!");
        assert_eq!(bob.load(JobKind::Lock, 1).unwrap(), b"bob bytes");
        assert!(alice.load(JobKind::Lock, 2).is_none());
        assert_eq!(bob.namespace(), Some("b_ob"));
        assert_eq!(shared.namespace(), None);
        assert_eq!(
            DiskStore::open_namespaced(&dir, "  ").unwrap().namespace(),
            None,
            "a blank tenant id is the default namespace"
        );

        // Entry paths stay inside the root, under the tenant subtree.
        let p = bob.entry_path(JobKind::Lock, 1);
        assert!(p.starts_with(dir.join("tenants").join("b_ob")));

        // Per-namespace accounting sees each tenant's own bytes.
        let usage = tenant_usage(&dir).unwrap();
        assert_eq!(usage.len(), 3);
        assert_eq!(usage[""], shared.usage_bytes());
        assert_eq!(usage["alice"], alice.usage_bytes());
        assert_eq!(usage["b_ob"], bob.usage_bytes());
        assert!(usage["alice"] > 0 && usage["alice"] != usage["b_ob"]);

        // Namespace-scoped GC: a sweep of alice's namespace (via a
        // fresh handle — `alice` itself live-protects what it touched)
        // cannot touch bob's or the default namespace's entries.
        let sweeper = DiskStore::open_namespaced(&dir, "alice").unwrap();
        let stats = sweeper.gc(0);
        assert_eq!(stats.bytes_after, 0);
        assert!(alice.is_empty());
        assert!(shared.load(JobKind::Lock, 1).is_some());
        assert!(bob.load(JobKind::Lock, 1).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_roots_enforces_a_cross_store_budget_with_protected_roots() {
        // Two campaign directories of one tenant: the quota spans both,
        // but the running campaign's root is protected.
        let a = tmp_dir("roots-a");
        let b = tmp_dir("roots-b");
        let store_a = DiskStore::open_namespaced(&a, "t").unwrap();
        let store_b = DiskStore::open_namespaced(&b, "t").unwrap();
        let payload = [1u8; 32];
        for fp in 0..4u64 {
            store_a.save(JobKind::Lock, fp, &payload).unwrap();
            store_b.save(JobKind::Lock, fp, &payload).unwrap();
            // Make store_a's entries strictly older.
            let f = fs::File::open(store_a.entry_path(JobKind::Lock, fp)).unwrap();
            f.set_modified(SystemTime::UNIX_EPOCH + Duration::from_secs(fp))
                .unwrap();
        }
        let entry_len = fs::metadata(store_a.entry_path(JobKind::Lock, 0))
            .unwrap()
            .len();
        let roots = [store_a.objects_root(), store_b.objects_root()];

        // Budget for five entries, nothing protected: the three oldest
        // (all in store_a) are evicted.
        let stats = gc_roots(&roots, &[], 5 * entry_len);
        assert_eq!(stats.bytes_before, 8 * entry_len);
        assert_eq!(stats.evicted_entries, 3);
        assert!(stats.bytes_after <= 5 * entry_len);
        assert_eq!(store_b.len(), 4, "newer store untouched");

        // Protecting store_b pins its entries even under a zero budget.
        let stats = gc_roots(&roots, &[store_b.objects_root()], 0);
        assert_eq!(stats.live_protected, 4);
        assert_eq!(store_a.len(), 0);
        assert_eq!(store_b.len(), 4);
        let _ = fs::remove_dir_all(&a);
        let _ = fs::remove_dir_all(&b);
    }

    #[test]
    fn contains_is_a_cheap_presence_check() {
        let dir = tmp_dir("contains");
        let store = DiskStore::open(&dir).unwrap();
        assert!(!store.contains(JobKind::Lock, 8));
        store.save(JobKind::Lock, 8, b"x").unwrap();
        assert!(store.contains(JobKind::Lock, 8));
        assert!(!store.contains(JobKind::Train, 8));
        // contains never loads: stats untouched.
        assert_eq!(store.stats().loads, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn len_counts_entries() {
        let dir = tmp_dir("len");
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.save(JobKind::Lock, 1, b"a").unwrap();
        store.save(JobKind::Lock, 2, b"b").unwrap();
        store.save(JobKind::Train, 1, b"c").unwrap();
        assert_eq!(store.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite regression: byte accounting (usage_bytes,
    /// tenant_usage, gc bytes_before) never bills in-flight or orphaned
    /// protocol files — a crashed writer's large `.tmp-*` must not eat
    /// a tenant's budget.
    #[test]
    fn protocol_files_are_never_billed_to_budgets() {
        let dir = tmp_dir("billing");
        let store = DiskStore::open_namespaced(&dir, "acme").unwrap();
        store.save(JobKind::Lock, 1, &[7u8; 64]).unwrap();
        let entries_only = store.usage_bytes();
        assert!(entries_only > 0);

        // A crashed writer's huge staging file, a live lease, a tomb.
        let objects = store.objects_root().join("lock");
        fs::write(objects.join(".tmp-999-0"), vec![0u8; 1 << 16]).unwrap();
        fs::write(objects.join("00000000000000aa.lease"), b"lease\n").unwrap();
        fs::write(objects.join("00000000000000aa.lease.tomb-9-0"), b"tomb\n").unwrap();

        assert_eq!(store.usage_bytes(), entries_only);
        assert_eq!(tenant_usage(&dir).unwrap()["acme"], entries_only);
        let stats = store.gc(u64::MAX);
        assert_eq!(stats.bytes_before, entries_only);
        let stats = gc_roots(&[store.objects_root()], &[], u64::MAX);
        assert_eq!(stats.bytes_before, entries_only);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite regression: the tenant-budget sweep ([`gc_roots`], the
    /// only GC that ever visits daemon-managed campaign directories)
    /// must collect hour-stale orphaned protocol files — pre-fix it
    /// walked right past them and a crashed writer's staging file
    /// leaked forever.
    #[test]
    fn gc_roots_collects_stale_orphaned_protocol_files() {
        let dir = tmp_dir("roots-orphans");
        let store = DiskStore::open_namespaced(&dir, "t").unwrap();
        store.save(JobKind::Lock, 1, &[1u8; 16]).unwrap();
        let objects = store.objects_root().join("lock");
        let stale_tmp = objects.join(".tmp-4242-0");
        let stale_tomb = objects.join("00000000000000bb.lease.tomb-4242-0");
        let fresh_tmp = objects.join(".tmp-4242-1");
        for p in [&stale_tmp, &stale_tomb, &fresh_tmp] {
            fs::write(p, b"debris").unwrap();
        }
        for p in [&stale_tmp, &stale_tomb] {
            fs::File::open(p)
                .unwrap()
                .set_modified(SystemTime::now() - Duration::from_secs(7200))
                .unwrap();
        }
        // Even a no-op budget sweep (and even over a *protected* root)
        // reclaims the stale debris; in-flight files are left alone.
        let stats = gc_roots(&[store.objects_root()], &[store.objects_root()], u64::MAX);
        assert_eq!(stats.evicted_entries, 0);
        assert!(!stale_tmp.exists(), "stale orphan tmp must be collected");
        assert!(!stale_tomb.exists(), "stale orphan tomb must be collected");
        assert!(fresh_tmp.exists(), "in-flight tmp must be left alone");
        assert!(store.load(JobKind::Lock, 1).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A single transient read error (EAGAIN-style) is absorbed by the
    /// retry layer; a *sustained* outage that exhausts the retry budget
    /// reads as a miss and leaves the entry intact — pre-hardening a
    /// lone transient evicted a good entry.
    #[test]
    fn transient_load_errors_do_not_evict() {
        use crate::backend::{Fault, FaultBackend, FaultOp, FaultRule};
        let backend = Arc::new(FaultBackend::new());
        let store =
            DiskStore::open_with_backend(Path::new("/virtual/transient"), "", backend.clone())
                .unwrap();
        store.save(JobKind::Train, 5, b"payload").unwrap();
        backend.inject(FaultRule::on(FaultOp::Load, ".bin", Fault::Transient));
        assert_eq!(
            store.load(JobKind::Train, 5).unwrap(),
            b"payload",
            "one transient is retried through"
        );
        assert_eq!(store.stats().evictions, 0, "entry must not be evicted");
        backend.inject(FaultRule::on(
            FaultOp::Load,
            "",
            Fault::Unavailable(usize::MAX),
        ));
        assert!(store.load(JobKind::Train, 5).is_none(), "outage = miss");
        assert_eq!(store.stats().evictions, 0, "entry must not be evicted");
        backend.clear_rules();
        assert_eq!(store.load(JobKind::Train, 5).unwrap(), b"payload");
    }

    /// The whole store surface works identically over the in-memory
    /// backend: version gate, round trip, corruption eviction, GC.
    #[test]
    fn memory_backend_round_trips_and_gcs() {
        use crate::backend::FaultBackend;
        let backend = Arc::new(FaultBackend::new());
        let root = Path::new("/virtual/mem-store");
        let store = DiskStore::open_with_backend(root, "", backend.clone()).unwrap();
        store.save(JobKind::Train, 42, b"payload").unwrap();
        assert_eq!(store.load(JobKind::Train, 42).unwrap(), b"payload");
        assert!(store.contains(JobKind::Train, 42));
        assert_eq!(store.len(), 1);

        // A second handle over the same backend shares entries and the
        // version gate.
        let other = DiskStore::open_with_backend(root, "", backend.clone()).unwrap();
        assert_eq!(other.load(JobKind::Train, 42).unwrap(), b"payload");

        // Corrupt in place: evicted on load.
        let path = store.entry_path(JobKind::Train, 42);
        let mut bytes = backend.read_raw(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        backend.insert_raw(&path, &bytes);
        assert!(store.load(JobKind::Train, 42).is_none());
        assert!(!backend.contains(&path), "corrupt entry evicted");

        // GC under a zero budget clears a fresh handle's view.
        store.save(JobKind::Train, 43, b"x").unwrap();
        let sweeper = DiskStore::open_with_backend(root, "", backend.clone()).unwrap();
        let stats = sweeper.gc(0);
        assert_eq!(stats.bytes_after, 0);
        assert!(sweeper.is_empty());
    }
}
