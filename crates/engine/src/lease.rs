//! Lease files: multi-process job claims over the shared store.
//!
//! A lease is a small file living *beside* the cache entry it guards
//! (`objects/<kind>/<hh>/<fp>.lease` next to `<fp>.bin`), turning the
//! [`crate::DiskStore`] directory into a coordination substrate: N
//! worker processes sharing one `GNNUNLOCK_CACHE_DIR` use leases to
//! split a campaign's jobs between them with no double work.
//!
//! The protocol is built entirely from atomic filesystem primitives, so
//! it needs no server and works on any shared filesystem with coherent
//! `rename`:
//!
//! - **claim** — `O_CREAT|O_EXCL` (`create_new`): exactly one process
//!   can create the lease file, whatever the interleaving;
//! - **heartbeat** — the owner refreshes the lease file's mtime every
//!   `ttl/4` from a background thread, so the file's age is the
//!   owner's liveness signal. Ages are judged against the *filesystem*
//!   clock, which all cooperating processes share;
//! - **stale takeover** — a lease older than the TTL marks a dead (or
//!   wedged) owner. A challenger *renames* the stale file to a unique
//!   tomb name — `rename` has one winner; the losers see `NotFound` —
//!   then re-creates the lease with the **generation counter** bumped,
//!   so every ownership epoch of a lease is distinguishable;
//! - **release** — the owner deletes the lease after publishing its
//!   result, but only after verifying the file still carries its own
//!   `(owner, generation)` line: a slow owner whose lease was taken
//!   over must never delete the usurper's claim.
//!
//! Liveness caveat (inherent to lease protocols): a *live but stalled*
//! owner (`SIGSTOP`, multi-second GC pause, clock jump) can be timed
//! out and its job re-executed elsewhere. That costs duplicate work,
//! never correctness — stage bodies are deterministic and the store's
//! publish is an atomic last-writer-wins rename of identical bytes.

use crate::backend::{is_transient_kind, StoreBackend};
use crate::graph::JobKind;
use crate::metrics;
use crate::resilience::RetryPolicy;
use crate::store::DiskStore;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime};

/// Magic first token of every lease file.
const LEASE_MAGIC: &str = "gnnunlock-lease";

/// Whether lease-file bytes are a *torn observation* — a reader racing
/// a writer (or an NFS-style cache serving a partial page) saw only a
/// prefix. An intact lease always starts with the magic token and ends
/// with a newline; anything else says nothing about ownership, so
/// readers must retry (or stay conservative), never act on it — acting
/// on a torn read of its *own* lease is how an owner used to abandon a
/// perfectly live claim, handing the job to a spurious takeover.
fn lease_torn(bytes: &[u8]) -> bool {
    !(bytes.starts_with(LEASE_MAGIC.as_bytes()) && bytes.ends_with(b"\n"))
}

/// Outcome of a claim attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// This manager now owns the lease and must eventually release it.
    Acquired {
        /// The lease's ownership epoch: 0 for a fresh claim, previous
        /// generation + 1 after a stale-lease takeover.
        generation: u64,
        /// Whether this claim took over a stale lease.
        takeover: bool,
    },
    /// Another owner holds a fresh lease (or won a racing claim).
    Busy,
}

/// Monotonic counters describing lease traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Leases acquired (fresh claims + takeovers).
    pub claimed: usize,
    /// Claim attempts that found a fresh foreign lease.
    pub busy: usize,
    /// Acquisitions that took over a stale lease.
    pub takeovers: usize,
    /// Leases this manager held but lost to a takeover (detected at
    /// heartbeat or release time).
    pub lost: usize,
    /// Leases released after a successful publish.
    pub released: usize,
    /// Probe-poll sleeps taken while waiting on a peer-held job (the
    /// wall-clock the unleased-first scheduling preference minimizes).
    pub poll_waits: usize,
}

struct Shared {
    store: Arc<DiskStore>,
    backend: Arc<dyn StoreBackend>,
    retry: RetryPolicy,
    owner: String,
    ttl: Duration,
    /// Held leases: path → the exact file content written at claim
    /// time, used to verify ownership before touching or deleting.
    held: Mutex<HashMap<PathBuf, String>>,
    stop: Mutex<bool>,
    stop_signal: Condvar,
    claimed: AtomicUsize,
    busy: AtomicUsize,
    takeovers: AtomicUsize,
    lost: AtomicUsize,
    released: AtomicUsize,
    poll_waits: AtomicUsize,
    tomb_counter: AtomicU64,
}

impl Shared {
    fn lease_content(&self, generation: u64) -> String {
        format!(
            "{LEASE_MAGIC} owner={} pid={} gen={generation}\n",
            self.owner,
            std::process::id()
        )
    }

    /// Refresh the mtime of every held lease; drop (and count as lost)
    /// any whose content *provably* no longer matches — a takeover
    /// happened. Torn observations and transient errors say nothing
    /// about ownership, so the lease is kept and re-judged next beat:
    /// abandoning on a torn read would stop the heartbeat, let the
    /// lease go stale, and hand a live owner's job to a spurious
    /// takeover.
    fn heartbeat(&self) {
        let snapshot: Vec<(PathBuf, String)> = {
            let held = self.held.lock().unwrap();
            held.iter().map(|(p, c)| (p.clone(), c.clone())).collect()
        };
        for (path, expected) in snapshot {
            let lost = match self.backend.load(&path) {
                Ok(c) if c == expected.as_bytes() => match self.backend.refresh(&path) {
                    Ok(()) => {
                        metrics::lease_event("heartbeats").inc();
                        continue;
                    }
                    Err(e) if is_transient_kind(e.kind()) => continue,
                    Err(_) => true, // vanished between read and touch
                },
                Ok(c) if lease_torn(&c) => continue,
                Ok(_) => true, // intact foreign content: usurped
                Err(e) if is_transient_kind(e.kind()) => continue,
                Err(_) => true, // gone (NotFound): deleted under us
            };
            if lost && self.held.lock().unwrap().remove(&path).is_some() {
                self.lost.fetch_add(1, Ordering::Relaxed);
                metrics::lease_event("lost").inc();
            }
        }
    }
}

/// Manages this process's lease claims over one store, heartbeating
/// every held lease from a background thread until release (or drop,
/// which releases everything still held).
pub struct LeaseManager {
    shared: Arc<Shared>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

impl LeaseManager {
    /// A manager claiming leases in `store`'s directory as `owner`,
    /// judging foreign leases stale after `ttl` without a heartbeat.
    /// `ttl` is clamped to ≥ 20 ms (below that, heartbeats cannot
    /// reliably outrun staleness).
    pub fn new(store: Arc<DiskStore>, owner: impl Into<String>, ttl: Duration) -> LeaseManager {
        let backend = store.backend().clone();
        let shared = Arc::new(Shared {
            store,
            backend,
            retry: RetryPolicy::from_env(),
            owner: owner.into(),
            ttl: ttl.max(Duration::from_millis(20)),
            held: Mutex::new(HashMap::new()),
            stop: Mutex::new(false),
            stop_signal: Condvar::new(),
            claimed: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            takeovers: AtomicUsize::new(0),
            lost: AtomicUsize::new(0),
            released: AtomicUsize::new(0),
            poll_waits: AtomicUsize::new(0),
            tomb_counter: AtomicU64::new(0),
        });
        let hb = {
            let shared = shared.clone();
            let period = (shared.ttl / 4).max(Duration::from_millis(5));
            std::thread::spawn(move || loop {
                let mut stop = shared.stop.lock().unwrap();
                let deadline = std::time::Instant::now() + period;
                while !*stop {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let (guard, _) = shared.stop_signal.wait_timeout(stop, left).unwrap();
                    stop = guard;
                }
                if *stop {
                    return;
                }
                drop(stop);
                shared.heartbeat();
            })
        };
        LeaseManager {
            shared,
            heartbeat: Some(hb),
        }
    }

    /// The owner string written into claimed leases.
    pub fn owner(&self) -> &str {
        &self.shared.owner
    }

    /// The staleness TTL this manager judges foreign leases by.
    pub fn ttl(&self) -> Duration {
        self.shared.ttl
    }

    /// The lease path guarding the entry `(kind, fp)` — beside the
    /// entry file, `.lease` instead of `.bin`.
    pub fn lease_path(&self, kind: JobKind, fp: u64) -> PathBuf {
        self.shared
            .store
            .entry_path(kind, fp)
            .with_extension("lease")
    }

    /// Try to claim the lease for `(kind, fp)`.
    pub fn try_claim(&self, kind: JobKind, fp: u64) -> Claim {
        self.claim_path(&self.lease_path(kind, fp))
    }

    fn claim_path(&self, path: &Path) -> Claim {
        let backend = &self.shared.backend;
        // Tombs orphaned by a challenger that died *between* the tomb
        // rename and the lease re-create: without eager cleanup they
        // linger until the hour-stale GC, and their generation is lost.
        // Adopt the highest orphaned generation (epochs stay monotonic
        // across the crash) and sweep the tombs once a claim succeeds.
        let (orphan_gen, orphan_tombs) = self.scan_orphan_tombs(path);
        let base_gen = orphan_gen.map_or(0, |g| g + 1);
        // Bounded retry: a lease can vanish between our create failure
        // and our stat (owner released it) — re-attempt the create a
        // few times rather than reporting a phantom Busy.
        for _ in 0..4 {
            // Completing a dead challenger's interrupted takeover *is*
            // a takeover, even though the lease file itself is absent.
            match self.try_create(path, base_gen, orphan_gen.is_some()) {
                Ok(claim) => {
                    self.sweep_tombs(&orphan_tombs);
                    return claim;
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
                Err(e) if is_transient_kind(e.kind()) => continue,
                Err(_) => break, // unwritable directory etc.
            }
            let mtime = match backend.mtime(path) {
                Ok(t) => t,
                // Vanished between create and stat: retry the create.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(_) => break,
            };
            let age = SystemTime::now()
                .duration_since(mtime)
                .unwrap_or(Duration::ZERO);
            if age < self.shared.ttl {
                break; // fresh foreign lease
            }
            // Stale: entomb it. The rename is the arbiter — exactly one
            // challenger moves the file; the rest fail with NotFound
            // and report Busy (the winner is about to re-create it).
            let tomb = path.with_file_name(format!(
                "{}.tomb-{}-{}",
                path.file_name().and_then(|n| n.to_str()).unwrap_or("lease"),
                std::process::id(),
                self.shared.tomb_counter.fetch_add(1, Ordering::Relaxed)
            ));
            match backend.entomb(path, &tomb) {
                Ok(()) => {
                    let buried = backend.load(&tomb).unwrap_or_default();
                    let old_gen = parse_generation(&String::from_utf8_lossy(&buried));
                    let _ = backend.remove(&tomb);
                    match self.try_create(path, (old_gen + 1).max(base_gen), true) {
                        Ok(claim) => {
                            self.sweep_tombs(&orphan_tombs);
                            return claim;
                        }
                        Err(_) => break, // lost the re-create race
                    }
                }
                Err(_) => break, // lost the takeover race
            }
        }
        self.shared.busy.fetch_add(1, Ordering::Relaxed);
        metrics::lease_event("busy").inc();
        Claim::Busy
    }

    /// Orphaned tombs of `path`'s lease (highest buried generation,
    /// plus their paths): a takeover killed between entomb and
    /// re-create leaves one. Torn tomb contents parse as generation 0 —
    /// the tomb's *existence*, not its bytes, carries the signal.
    fn scan_orphan_tombs(&self, path: &Path) -> (Option<u64>, Vec<PathBuf>) {
        let Some((parent, name)) = path.parent().zip(path.file_name().and_then(|n| n.to_str()))
        else {
            return (None, Vec::new());
        };
        let prefix = format!("{name}.tomb-");
        let mut max_gen = None;
        let mut tombs = Vec::new();
        for meta in self.shared.backend.list(parent, false).unwrap_or_default() {
            let is_tomb = meta
                .path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix));
            if !is_tomb {
                continue;
            }
            let buried = self.shared.backend.load(&meta.path).unwrap_or_default();
            let gen = parse_generation(&String::from_utf8_lossy(&buried));
            max_gen = Some(max_gen.map_or(gen, |m: u64| m.max(gen)));
            tombs.push(meta.path);
        }
        (max_gen, tombs)
    }

    /// Delete orphaned tombs after a successful claim (best-effort; a
    /// racing challenger may have removed one already).
    fn sweep_tombs(&self, tombs: &[PathBuf]) {
        for tomb in tombs {
            let _ = self.shared.backend.remove(tomb);
        }
    }

    /// Create-new the lease file with `generation` through the
    /// backend's exactly-one-winner claim, registering it as held on
    /// success.
    fn try_create(&self, path: &Path, generation: u64, takeover: bool) -> io::Result<Claim> {
        let content = self.shared.lease_content(generation);
        self.shared.backend.claim(path, content.as_bytes())?;
        self.shared
            .held
            .lock()
            .unwrap()
            .insert(path.to_path_buf(), content);
        self.shared.claimed.fetch_add(1, Ordering::Relaxed);
        metrics::lease_event("claims").inc();
        if takeover {
            self.shared.takeovers.fetch_add(1, Ordering::Relaxed);
            metrics::lease_event("takeovers").inc();
        }
        Ok(Claim::Acquired {
            generation,
            takeover,
        })
    }

    /// Whether a *fresh foreign* lease currently guards `(kind, fp)` —
    /// a read-only probe, never a claim attempt: the lease file exists,
    /// is younger than the TTL, and names a different owner. The shard
    /// scheduler uses this to deprioritize ready jobs a live peer is
    /// already executing (wall-clock only — a wrong answer merely
    /// changes pick order, never results).
    pub fn peer_holds(&self, kind: JobKind, fp: u64) -> bool {
        let path = self.lease_path(kind, fp);
        let Ok(content) = self.shared.backend.load(&path) else {
            return false;
        };
        let age = self
            .shared
            .backend
            .mtime(&path)
            .ok()
            .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
            .unwrap_or(Duration::ZERO);
        if age >= self.shared.ttl {
            return false; // stale: takeover territory, not a live peer
        }
        // A fresh-but-torn lease is conservatively a live peer: the
        // probe only tunes pick order, and assuming "held" on a racy
        // read avoids dog-piling onto a job its owner just claimed.
        if lease_torn(&content) {
            return true;
        }
        let content = String::from_utf8_lossy(&content).into_owned();
        let owner = content
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("owner="));
        owner.is_some_and(|o| o != self.shared.owner)
    }

    /// Count one probe-poll sleep while waiting on a peer-held job.
    pub fn note_poll_wait(&self) {
        self.shared.poll_waits.fetch_add(1, Ordering::Relaxed);
        metrics::lease_event("poll_waits").inc();
    }

    /// Release the lease for `(kind, fp)` if this manager holds it.
    /// Returns whether a lease file was actually deleted — `false` when
    /// not held, or when the lease was taken over in the meantime (the
    /// usurper's file is left untouched and the loss is counted).
    pub fn release(&self, kind: JobKind, fp: u64) -> bool {
        self.release_path(&self.lease_path(kind, fp))
    }

    fn release_path(&self, path: &Path) -> bool {
        let Some(expected) = self.shared.held.lock().unwrap().remove(path) else {
            return false;
        };
        // A torn or transient read says nothing about ownership; the
        // shared retry policy re-reads (backing off through the
        // backend's clock) before concluding anything. If it stays
        // unreadable the lease is left in place — wrongly deleting a
        // usurper's claim is the one mistake this path must never make,
        // while a stranded lease merely costs one TTL.
        let backend = self.shared.backend.as_ref();
        let owned = self.shared.retry.run(backend, "lease_release", || {
            match backend.load(path) {
                Ok(content) if content == expected.as_bytes() => Ok(true),
                Ok(content) if lease_torn(&content) => Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "torn lease read",
                )),
                Ok(_) => Ok(false), // intact foreign content: usurped
                Err(e) if is_transient_kind(e.kind()) => Err(e),
                Err(_) => Ok(false), // gone (NotFound): deleted under us
            }
        });
        if let Ok(true) = owned {
            let _ = backend.remove(path);
            self.shared.released.fetch_add(1, Ordering::Relaxed);
            metrics::lease_event("released").inc();
            return true;
        }
        self.shared.lost.fetch_add(1, Ordering::Relaxed);
        metrics::lease_event("lost").inc();
        false
    }

    /// Drop every held lease *without* releasing the files — the
    /// deterministic stand-in for process death in fault tests: the
    /// lease files stay on the backend exactly as a SIGKILLed owner
    /// would leave them, and the heartbeat thread is stopped so they
    /// age toward takeover.
    pub fn abandon(mut self) {
        *self.shared.stop.lock().unwrap() = true;
        self.shared.stop_signal.notify_all();
        if let Some(hb) = self.heartbeat.take() {
            let _ = hb.join();
        }
        self.shared.held.lock().unwrap().clear();
        // Drop now finds nothing held and releases nothing.
    }

    /// Run one heartbeat pass synchronously — a deterministic test hook
    /// (the background thread beats on its own schedule).
    pub fn force_heartbeat(&self) {
        self.shared.heartbeat();
    }

    /// Number of leases currently held.
    pub fn held(&self) -> usize {
        self.shared.held.lock().unwrap().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LeaseStats {
        LeaseStats {
            claimed: self.shared.claimed.load(Ordering::Relaxed),
            busy: self.shared.busy.load(Ordering::Relaxed),
            takeovers: self.shared.takeovers.load(Ordering::Relaxed),
            lost: self.shared.lost.load(Ordering::Relaxed),
            released: self.shared.released.load(Ordering::Relaxed),
            poll_waits: self.shared.poll_waits.load(Ordering::Relaxed),
        }
    }
}

impl Drop for LeaseManager {
    fn drop(&mut self) {
        *self.shared.stop.lock().unwrap() = true;
        self.shared.stop_signal.notify_all();
        if let Some(hb) = self.heartbeat.take() {
            let _ = hb.join();
        }
        // Release anything still held so an error-path exit doesn't
        // strand fresh leases for a whole TTL.
        let paths: Vec<PathBuf> = self.shared.held.lock().unwrap().keys().cloned().collect();
        for path in paths {
            self.release_path(&path);
        }
    }
}

impl std::fmt::Debug for LeaseManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseManager")
            .field("owner", &self.shared.owner)
            .field("ttl", &self.shared.ttl)
            .field("held", &self.held())
            .finish_non_exhaustive()
    }
}

/// The `gen=` field of a lease file; 0 when missing or torn (an empty
/// or half-written lease still claims generation 0 — its mtime, not its
/// content, carries the liveness signal).
fn parse_generation(content: &str) -> u64 {
    content
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("gen="))
        .and_then(|g| g.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_store(tag: &str) -> Arc<DiskStore> {
        let dir =
            std::env::temp_dir().join(format!("gnnunlock-lease-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Arc::new(DiskStore::open(&dir).unwrap())
    }

    #[test]
    fn claim_is_exclusive_and_release_frees() {
        let store = tmp_store("excl");
        let a = LeaseManager::new(store.clone(), "a", Duration::from_secs(30));
        let b = LeaseManager::new(store.clone(), "b", Duration::from_secs(30));

        assert!(matches!(
            a.try_claim(JobKind::Train, 1),
            Claim::Acquired {
                generation: 0,
                takeover: false
            }
        ));
        assert_eq!(b.try_claim(JobKind::Train, 1), Claim::Busy);
        // Different entry: independent lease.
        assert!(matches!(
            b.try_claim(JobKind::Train, 2),
            Claim::Acquired { .. }
        ));

        assert!(a.release(JobKind::Train, 1));
        assert!(matches!(
            b.try_claim(JobKind::Train, 1),
            Claim::Acquired {
                generation: 0,
                takeover: false
            }
        ));
        assert_eq!(a.stats().claimed, 1);
        assert_eq!(b.stats().busy, 1);
        assert_eq!(b.held(), 2);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stale_leases_are_taken_over_with_a_bumped_generation() {
        let store = tmp_store("stale");
        let ttl = Duration::from_millis(60);
        let survivor = LeaseManager::new(store.clone(), "survivor", ttl);

        // A dead owner: lease file written directly, never heartbeated.
        let path = survivor.lease_path(JobKind::Train, 9);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "gnnunlock-lease owner=victim pid=1 gen=4\n").unwrap();

        // Fresh: busy. Stale (mtime aged past the TTL): taken over.
        assert_eq!(survivor.try_claim(JobKind::Train, 9), Claim::Busy);
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .set_modified(SystemTime::now() - Duration::from_secs(5))
            .unwrap();
        assert_eq!(
            survivor.try_claim(JobKind::Train, 9),
            Claim::Acquired {
                generation: 5,
                takeover: true
            }
        );
        assert_eq!(survivor.stats().takeovers, 1);
        // The takeover produced a normal held lease: release works.
        assert!(survivor.release(JobKind::Train, 9));
        assert!(!path.exists());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn heartbeat_keeps_a_lease_fresh_across_the_ttl() {
        let store = tmp_store("hb");
        let ttl = Duration::from_millis(80);
        let owner = LeaseManager::new(store.clone(), "owner", ttl);
        let rival = LeaseManager::new(store.clone(), "rival", ttl);

        assert!(matches!(
            owner.try_claim(JobKind::Lock, 3),
            Claim::Acquired { .. }
        ));
        // Well past the TTL, the heartbeat must have kept the lease
        // fresh: the rival still sees Busy, never a takeover.
        for _ in 0..6 {
            std::thread::sleep(ttl / 2);
            assert_eq!(rival.try_claim(JobKind::Lock, 3), Claim::Busy);
        }
        assert_eq!(rival.stats().takeovers, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn losing_a_takeover_is_detected_not_clobbered() {
        let store = tmp_store("lost");
        // Slow owner: 30 s heartbeat period (ttl/4) — it will not touch
        // the lease again during this test.
        let slow = LeaseManager::new(store.clone(), "slow", Duration::from_secs(120));
        let fast = LeaseManager::new(store.clone(), "fast", Duration::from_millis(40));

        assert!(matches!(
            slow.try_claim(JobKind::Verify, 7),
            Claim::Acquired { .. }
        ));
        // Age the lease so the fast rival may take it over.
        let path = slow.lease_path(JobKind::Verify, 7);
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .set_modified(SystemTime::now() - Duration::from_secs(10))
            .unwrap();
        assert!(matches!(
            fast.try_claim(JobKind::Verify, 7),
            Claim::Acquired {
                generation: 1,
                takeover: true
            }
        ));
        // The slow owner's release must notice the loss and leave the
        // usurper's lease in place.
        assert!(!slow.release(JobKind::Verify, 7));
        assert_eq!(slow.stats().lost, 1);
        assert!(path.exists(), "usurper's lease must survive");
        assert!(fast.release(JobKind::Verify, 7));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn drop_releases_held_leases() {
        let store = tmp_store("drop");
        let path;
        {
            let m = LeaseManager::new(store.clone(), "m", Duration::from_secs(30));
            assert!(matches!(
                m.try_claim(JobKind::Parse, 1),
                Claim::Acquired { .. }
            ));
            path = m.lease_path(JobKind::Parse, 1);
            assert!(path.exists());
        }
        assert!(!path.exists(), "drop must release held leases");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn generation_parsing_tolerates_garbage() {
        assert_eq!(
            parse_generation("gnnunlock-lease owner=a pid=2 gen=17\n"),
            17
        );
        assert_eq!(parse_generation(""), 0);
        assert_eq!(parse_generation("gen=notanumber"), 0);
        assert_eq!(parse_generation("half a line with no ge"), 0);
    }
}
