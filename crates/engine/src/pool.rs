//! A std-only worker pool for order-preserving task fan-out.
//!
//! [`run_ordered`] is the workhorse: it executes a batch of independent
//! closures across `workers` threads and returns their results **in
//! submission order**, so callers get byte-identical output regardless of
//! the worker count. The attack framework uses it for per-instance
//! dataset generation; the [`crate::Executor`] builds its dependency-aware
//! scheduling on the same claim-by-atomic-index pattern.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count.
pub const WORKERS_ENV: &str = "GNNUNLOCK_WORKERS";

/// Worker count to use when the caller does not specify one:
/// `GNNUNLOCK_WORKERS` if set and valid (a malformed or zero value
/// warns via [`crate::env`] and falls back), otherwise the available
/// parallelism (capped at 16 — the workloads are
/// memory-bandwidth-bound well before that).
pub fn default_workers() -> usize {
    if let Some(n) = crate::env::knob_validated(WORKERS_ENV, "a positive worker count", |n| *n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Run every closure in `tasks`, using up to `workers` threads, and
/// return the results in submission order.
///
/// Worker threads claim tasks via an atomic cursor, so scheduling is
/// dynamic (long tasks don't straggle a static partition) while the
/// output order stays deterministic. `workers <= 1` runs inline with no
/// thread overhead.
pub fn run_ordered<T, F>(workers: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if workers <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = slots[i].lock().unwrap().take().expect("task claimed twice");
                let out = task();
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("task not run"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_worker_counts() {
        let make = || (0..50).map(|i| move || i * i).collect::<Vec<_>>();
        let serial = run_ordered(1, make());
        for workers in [2, 4, 7] {
            assert_eq!(run_ordered(workers, make()), serial);
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![];
        assert!(run_ordered(4, empty).is_empty());
        assert_eq!(run_ordered(4, vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn default_workers_respects_env() {
        // Don't mutate the process env (tests run threaded); just check
        // the fallback is sane.
        assert!(default_workers() >= 1);
    }
}
