//! Parallel attack-campaign orchestration for the GNNUnlock
//! reproduction.
//!
//! The paper evaluates its oracle-less attack as leave-one-benchmark-out
//! *campaigns* over suites of locked circuits. This crate turns that
//! end-to-end flow into a job graph executed on a std-only worker pool —
//! no dependencies, threads + channels only:
//!
//! - [`JobGraph`] / [`Executor`]: dependency-aware parallel execution
//!   with per-job timing, cooperative cancellation ([`CancelToken`]) and
//!   **deterministic results** — the same seed produces a byte-identical
//!   report on any worker count;
//! - [`ResultCache`]: a content-addressed in-memory cache keyed on
//!   `(job kind, config fingerprint)`, so repeated campaigns skip
//!   redundant locking / synthesis / dataset / training work;
//! - [`Campaign`]: a builder expanding {benchmark × locking scheme ×
//!   key size × seed} matrices into lock → synth → dataset → train →
//!   attack → verify → aggregate jobs with explicit dependencies,
//!   interpreted by a [`CampaignRunner`] (the GNNUnlock semantics live in
//!   `gnnunlock-core::campaign`);
//! - [`RunReport`]: a structured JSON run report, deterministic by
//!   default (timings are opt-in via [`ReportOptions`]);
//! - [`run_ordered`]: order-preserving batch fan-out used by dataset
//!   generation.
//!
//! # Examples
//!
//! ```
//! use gnnunlock_engine::{ExecConfig, Executor, JobGraph, JobKind, JobValue};
//! use std::sync::Arc;
//!
//! let mut graph = JobGraph::new();
//! let lock = graph.add("lock/demo", JobKind::Lock, Some(1), vec![], |_| {
//!     Ok(Arc::new(21u64) as JobValue)
//! });
//! let train = graph.add("train/demo", JobKind::Train, Some(2), vec![lock], |ctx| {
//!     Ok(Arc::new(*ctx.dep::<u64>(0) * 2) as JobValue)
//! });
//! let out = Executor::new(ExecConfig::with_workers(4)).run(graph);
//! assert_eq!(*out.value::<u64>(train).unwrap(), 42);
//! ```

#![warn(missing_docs)]

mod cache;
mod campaign;
mod cancel;
mod exec;
mod graph;
mod pool;
mod report;

pub use cache::{CacheStats, ResultCache};
pub use campaign::{Campaign, CampaignBuilder, CampaignRun, CampaignRunner, StageJob};
pub use cancel::CancelToken;
pub use exec::{ExecConfig, Executor, JobRecord, JobStatus, RunOutcome, RunStats};
pub use graph::{
    fingerprint, fingerprint_fields, JobCtx, JobGraph, JobId, JobKind, JobOutput, JobValue,
};
pub use pool::{default_workers, run_ordered, WORKERS_ENV};
pub use report::{Json, ReportOptions, RunReport};
