//! Parallel attack-campaign orchestration for the GNNUnlock
//! reproduction.
//!
//! The paper evaluates its oracle-less attack as leave-one-benchmark-out
//! *campaigns* over suites of locked circuits. This crate turns that
//! end-to-end flow into a job graph executed on a std-only worker pool —
//! no dependencies, threads + channels only:
//!
//! - [`JobGraph`] / [`Executor`]: dependency-aware parallel execution
//!   with per-job timing, cooperative cancellation ([`CancelToken`]) and
//!   **deterministic results** — the same seed produces a byte-identical
//!   report on any worker count;
//! - [`ResultCache`]: a content-addressed cache keyed on `(job kind,
//!   config fingerprint)` — an in-memory tier plus an optional
//!   versioned on-disk tier ([`DiskStore`]) with atomic writes and
//!   corruption eviction, so repeated campaigns (and repeated
//!   *processes* sharing `GNNUNLOCK_CACHE_DIR`) skip redundant locking /
//!   synthesis / dataset / training work;
//! - [`EventLog`]: a streaming JSONL event log (job-started /
//!   job-finished / cache-hit / stage-error), flushed per event, that
//!   [`Campaign::resume`] replays to continue an interrupted campaign;
//! - [`Campaign`]: a builder expanding {benchmark × locking scheme ×
//!   key size × seed} matrices into a per-cell stage DAG — parse → lock
//!   → synth → featurize → dataset → a chain of resumable `train-epoch`
//!   checkpoint jobs → train → classify → remove → verify → aggregate —
//!   with explicit dependencies and Merkle-composed content addresses
//!   (a job's cache key covers its whole input cone), interpreted by a
//!   [`CampaignRunner`] (the GNNUnlock semantics live in
//!   `gnnunlock-core::campaign`);
//! - [`Campaign::execute_sharded`] + [`LeaseManager`]: the distribution
//!   layer — atomic lease files beside each cache entry (create-new
//!   claims, heartbeat renewal, generation counters, stale-lease
//!   takeover after a TTL) let N worker *processes* sharing one
//!   `GNNUNLOCK_CACHE_DIR` cooperatively execute one campaign with no
//!   double work and byte-identical reports
//!   (`GNNUNLOCK_SHARD_ID` / `GNNUNLOCK_LEASE_TTL_MS`);
//! - [`RunReport`]: a structured JSON run report, deterministic by
//!   default (timings are opt-in via [`ReportOptions`]);
//! - [`run_ordered`]: order-preserving batch fan-out used by dataset
//!   generation.
//!
//! # Examples
//!
//! ```
//! use gnnunlock_engine::{ExecConfig, Executor, JobGraph, JobKind, JobValue};
//! use std::sync::Arc;
//!
//! let mut graph = JobGraph::new();
//! let lock = graph.add("lock/demo", JobKind::Lock, Some(1), vec![], |_| {
//!     Ok(Arc::new(21u64) as JobValue)
//! });
//! let train = graph.add("train/demo", JobKind::Train, Some(2), vec![lock], |ctx| {
//!     Ok(Arc::new(*ctx.dep::<u64>(0) * 2) as JobValue)
//! });
//! let out = Executor::new(ExecConfig::with_workers(4)).run(graph);
//! assert_eq!(*out.value::<u64>(train).unwrap(), 42);
//! ```

#![warn(missing_docs)]

mod backend;
mod cache;
mod campaign;
mod cancel;
mod codec;
pub mod env;
mod events;
mod exec;
mod graph;
mod json;
mod lease;
mod metrics;
mod object;
mod pool;
mod report;
pub mod resilience;
mod shard;
mod store;

pub use backend::{
    backend_from_env, memory_backend_for, recoverable_schedule, Fault, FaultBackend, FaultOp,
    FaultRule, FileMeta, JournalEntry, LocalDirBackend, StoreBackend, STORE_BACKEND_ENV,
};
pub use cache::{CacheSource, CacheStats, ResultCache};
pub use campaign::{Campaign, CampaignBuilder, CampaignRun, CampaignRunner, ResumeInfo, StageJob};
pub use cancel::CancelToken;
pub use codec::{ByteReader, ByteWriter, ValueCodec};
pub use env::{
    apply_telemetry_env, bench_out_from_env, knob, knob_or, knob_path, knob_validated,
    knob_warnings, telemetry_enabled_from_env, tenant_from_env, trace_out_from_env, BENCH_OUT_ENV,
    LEASE_TTL_ENV, SHARD_ID_ENV, STAGE_BUDGET_ENV, TELEMETRY_ENV, TENANT_ENV, TRACE_OUT_ENV,
};
pub use events::{Event, EventLog, LogTail, Replay, EVENTS_ENV, EVENTS_FILE};
pub use exec::{
    AfterJobHook, ExecConfig, Executor, JobRecord, JobStatus, RunOutcome, RunStats, StageSummary,
};
pub use graph::{
    fingerprint, fingerprint_fields, JobCtx, JobGraph, JobId, JobKind, JobOutput, JobValue,
};
pub use json::Json;
pub use lease::{Claim, LeaseManager, LeaseStats};
pub use object::{object_backend_for, BlobService, ObjectStoreBackend};
pub use pool::{default_workers, run_ordered, WORKERS_ENV};
pub use report::{ReportOptions, RunReport, REPORT_SCHEMA_VERSION};
pub use resilience::{
    degraded_error, is_degraded, BreakerState, HealthTracker, ResilientBackend, RetryPolicy,
    DEGRADED_PREFIX, SPILL_CAP, STORE_BREAKER_PROBE_EVERY_ENV, STORE_BREAKER_THRESHOLD_ENV,
    STORE_RETRY_ATTEMPTS_ENV, STORE_RETRY_BASE_MS_ENV, STORE_RETRY_DEADLINE_MS_ENV,
    STORE_RETRY_JITTER_SEED_ENV,
};
pub use shard::{
    execution_counts, merge_shard_events, shard_events_file, shard_replays, Elided, ShardConfig,
    ShardedRun,
};
pub use store::{
    cache_budget_from_env, gc_roots, gc_roots_with, sanitize_tag, tenant_budget_from_env,
    tenant_usage, tenant_usage_with, DiskStore, GcStats, StoreStats, CACHE_BUDGET_ENV,
    CACHE_DIR_ENV, TENANT_BUDGET_ENV,
};
