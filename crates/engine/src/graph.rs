//! Job graphs: typed units of work with explicit dependencies.

use crate::cancel::CancelToken;
use std::any::Any;
use std::sync::Arc;

/// The dynamically-typed output of a job, shared with every dependent.
pub type JobValue = Arc<dyn Any + Send + Sync>;

/// Outcome of a job body.
pub type JobOutput = Result<JobValue, String>;

/// Identifier of a job within one [`JobGraph`] (dense, in insertion
/// order — insertion order is also the deterministic result order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) usize);

impl JobId {
    /// The dense index of this job.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The pipeline stage a job belongs to. Part of the cache key, so equal
/// fingerprints in different stages never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Parse / generate a benchmark's original netlist (shared by every
    /// cell of that benchmark, whatever the key size or lock seed).
    Parse,
    /// Insert a locking scheme into a benchmark.
    Lock,
    /// Re-synthesize a locked netlist (Verilog flows).
    Synth,
    /// Extract the labelled graph / feature matrix of a locked netlist.
    Featurize,
    /// Assemble locked instances into a labelled dataset shard.
    Dataset,
    /// One checkpointed block of training epochs (resumable chain link).
    TrainEpoch,
    /// Finalize a trained classifier for one leave-one-out target.
    Train,
    /// Classify + post-process one locked instance with a trained model.
    Classify,
    /// Whole-benchmark attack (classify every instance of a target).
    Attack,
    /// Delete the predicted protection logic, recovering a design.
    Remove,
    /// SAT-verify a recovered design.
    Verify,
    /// Collapse stage outputs into report rows.
    Aggregate,
    /// Anything else (the tag is part of the cache key).
    Custom(&'static str),
}

impl JobKind {
    /// Stable lowercase tag (used in reports and cache keys).
    pub fn tag(&self) -> &'static str {
        match self {
            JobKind::Parse => "parse",
            JobKind::Lock => "lock",
            JobKind::Synth => "synth",
            JobKind::Featurize => "featurize",
            JobKind::Dataset => "dataset",
            JobKind::TrainEpoch => "train-epoch",
            JobKind::Train => "train",
            JobKind::Classify => "classify",
            JobKind::Attack => "attack",
            JobKind::Remove => "remove",
            JobKind::Verify => "verify",
            JobKind::Aggregate => "aggregate",
            JobKind::Custom(tag) => tag,
        }
    }

    /// Every built-in stage kind, in pipeline order (used for per-stage
    /// report aggregation; `Custom` kinds are appended dynamically).
    pub const BUILTIN: [JobKind; 12] = [
        JobKind::Parse,
        JobKind::Lock,
        JobKind::Synth,
        JobKind::Featurize,
        JobKind::Dataset,
        JobKind::TrainEpoch,
        JobKind::Train,
        JobKind::Classify,
        JobKind::Attack,
        JobKind::Remove,
        JobKind::Verify,
        JobKind::Aggregate,
    ];
}

/// Context handed to a running job body.
pub struct JobCtx<'a> {
    /// Outputs of the job's dependencies, in declaration order.
    pub deps: &'a [JobValue],
    /// The run's cancellation token (long jobs should poll it).
    pub cancel: &'a CancelToken,
}

impl JobCtx<'_> {
    /// Downcast dependency `i` to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the type does not match —
    /// both are graph-construction bugs, not runtime conditions.
    pub fn dep<T: Send + Sync + 'static>(&self, i: usize) -> Arc<T> {
        self.deps[i]
            .clone()
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("dependency {i} has unexpected type"))
    }
}

type JobFn<'a> = Box<dyn FnOnce(&JobCtx<'_>) -> JobOutput + Send + 'a>;

pub(crate) struct JobNode<'a> {
    pub label: String,
    pub kind: JobKind,
    pub fingerprint: Option<u64>,
    pub deps: Vec<JobId>,
    pub run: Option<JobFn<'a>>,
}

/// A directed acyclic graph of jobs.
///
/// Acyclicity is guaranteed by construction: a job may only depend on
/// jobs that were already added. The borrow parameter `'a` lets job
/// bodies capture references to caller-owned data (datasets, configs)
/// because execution happens on scoped threads.
#[derive(Default)]
pub struct JobGraph<'a> {
    pub(crate) jobs: Vec<JobNode<'a>>,
}

impl<'a> JobGraph<'a> {
    /// An empty graph.
    pub fn new() -> Self {
        JobGraph { jobs: Vec::new() }
    }

    /// Add a job.
    ///
    /// * `label` — human-readable, stable identifier (appears in reports).
    /// * `kind` — pipeline stage.
    /// * `fingerprint` — `Some(hash)` makes the result cacheable under
    ///   `(kind, hash)`; `None` always executes.
    /// * `deps` — ids of previously added jobs whose outputs feed this one.
    /// * `run` — the body; receives dependency outputs in `deps` order.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id has not been added yet (this is what
    /// makes cycles unrepresentable).
    pub fn add(
        &mut self,
        label: impl Into<String>,
        kind: JobKind,
        fingerprint: Option<u64>,
        deps: Vec<JobId>,
        run: impl FnOnce(&JobCtx<'_>) -> JobOutput + Send + 'a,
    ) -> JobId {
        let id = JobId(self.jobs.len());
        for d in &deps {
            assert!(
                d.0 < id.0,
                "job {:?} depends on not-yet-added job {:?}",
                id,
                d
            );
        }
        self.jobs.push(JobNode {
            label: label.into(),
            kind,
            fingerprint,
            deps,
            run: Some(Box::new(run)),
        });
        id
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// FNV-1a over a byte string — the engine's canonical content hash for
/// job fingerprints. Stable across platforms and releases.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Convenience: fingerprint of several fields joined unambiguously.
pub fn fingerprint_fields(fields: &[&str]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for f in fields {
        for &b in f.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        // Field separator outside the value alphabet.
        h ^= 0x1f;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ids_are_dense_and_deps_checked() {
        let mut g = JobGraph::new();
        let a = g.add("a", JobKind::Lock, None, vec![], |_| {
            Ok(Arc::new(1u32) as JobValue)
        });
        let b = g.add("b", JobKind::Train, None, vec![a], |_| {
            Ok(Arc::new(2u32) as JobValue)
        });
        assert_eq!((a.index(), b.index()), (0, 1));
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not-yet-added")]
    fn forward_deps_panic() {
        let mut g = JobGraph::new();
        g.add("bad", JobKind::Lock, None, vec![JobId(5)], |_| {
            Ok(Arc::new(()) as JobValue)
        });
    }

    #[test]
    fn fingerprints_separate_fields() {
        // ("ab","c") must differ from ("a","bc").
        assert_ne!(
            fingerprint_fields(&["ab", "c"]),
            fingerprint_fields(&["a", "bc"])
        );
        assert_eq!(fingerprint(b"x"), fingerprint(b"x"));
    }
}
