//! Cooperative cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable cancellation flag.
///
/// Cancellation is cooperative: the executor stops *claiming* new jobs
/// once the token is set, and long-running job bodies may poll
/// [`CancelToken::is_cancelled`] to bail out early. Cloning shares the
/// underlying flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        a.cancel();
        assert!(a.is_cancelled());
    }
}
