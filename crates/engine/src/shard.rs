//! Sharded campaign execution: N independent OS processes cooperatively
//! run one campaign over a shared store.
//!
//! [`Campaign::execute_sharded`] is the worker entry point of the
//! distribution layer. Every shard walks the *same* deterministic stage
//! DAG; the shared [`crate::DiskStore`] directory is both the result
//! substrate and — through [`crate::LeaseManager`]'s lease files — the
//! coordination substrate:
//!
//! 1. a job whose entry is already on disk is a plain disk hit (the
//!    executor's cache probe, before the body ever runs);
//! 2. otherwise the shard tries to **claim** the job's lease: the
//!    winner executes the body and publishes the result (the lease is
//!    released only *after* the entry is visible, via the executor's
//!    after-job hook), while losers **probe-poll** the store until the
//!    entry appears — or until the lease goes stale (`kill -9`'d
//!    owner), at which point a survivor takes it over and executes;
//! 3. **probe-ahead**: a claimed job whose dependents' entries are all
//!    already present is elided — nobody will ever read its output, so
//!    warm-adjacent shards don't recompute interior stages (the job's
//!    value is an [`Elided`] placeholder; its dependents are guaranteed
//!    cache hits and never look at it).
//!
//! Every shard therefore drains the whole graph and produces the same
//! [`crate::RunReport`] — the determinism contract extends to **cold =
//! warm = resumed = sharded, byte-identical** — while each *body*
//! executes on exactly one shard (asserted via the merged per-shard
//! event logs: a completed execution is a `job-claimed` record followed
//! by the job's `job-finished` of status `ok` within the same run of
//! the same log — see [`execution_counts`]).
//!
//! The **finalizer** is elected deterministically: the shard that
//! claims (and therefore executes) the campaign's final aggregate job.
//! It is the natural place to merge the per-shard JSONL event streams
//! ([`merge_shard_events`]) and write the canonical report file — on a
//! fully warm re-run no shard executes the aggregate and no finalizer
//! is elected, but every shard still holds the identical report.
//!
//! Failure semantics: failed jobs are *not* persisted, so each shard
//! discovers a deterministic failure independently (its dependents are
//! skipped identically everywhere). Jobs whose values the runner's
//! codec declines to encode likewise execute on every shard that needs
//! them — sharding requires a codec precisely because peer results
//! travel through the store.

use crate::backend::StoreBackend;
use crate::cache::ResultCache;
use crate::campaign::{Campaign, CampaignRun, CampaignRunner};
use crate::env;
use crate::events::{Event, EventLog, Replay};
use crate::exec::{ExecConfig, Executor};
use crate::graph::{JobCtx, JobGraph, JobId, JobKind, JobOutput, JobValue};
use crate::lease::{Claim, LeaseManager, LeaseStats};
use crate::store::{sanitize_tag, DiskStore};
use gnnunlock_telemetry as telemetry;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Placeholder value of a job elided by probe-ahead scheduling. Lives
/// in the memory tier only (no codec encodes it); dependents of an
/// elided job are guaranteed cache hits and never downcast it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elided;

/// Configuration of one shard of a distributed campaign.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// This shard's identity: the lease owner string and the suffix of
    /// its per-shard event log (`events-<id>.jsonl`). Must be unique
    /// among concurrently running shards.
    pub shard_id: String,
    /// How long a foreign lease may go un-heartbeated before this shard
    /// treats its owner as dead and takes the job over.
    pub lease_ttl: Duration,
    /// How often a shard waiting on a peer's job re-probes the store.
    pub poll_interval: Duration,
    /// Probe-ahead scheduling: elide a claimed job when every
    /// dependent's cache entry is already present. On by default.
    pub probe_ahead: bool,
    /// Prefer-unleased scheduling: when picking its next ready job,
    /// the shard passes over jobs a live peer currently leases (it
    /// would only probe-poll them) in favor of unleased ready work.
    /// Wall-clock only — pick order never changes results. On by
    /// default.
    pub prefer_unleased: bool,
    /// Tenant namespace for the store this shard executes against
    /// ([`DiskStore::open_namespaced`]): entries — and, since lease
    /// files live beside entries, leases — go under
    /// `tenants/<ns>/objects/` instead of `objects/`, so multi-tenant
    /// services keep tenants' results and coordination disjoint.
    /// `None` (the default) is the shared default namespace.
    pub namespace: Option<String>,
    /// Store backend this shard executes against. `None` (the default)
    /// resolves via [`crate::STORE_BACKEND_ENV`] — the local filesystem
    /// unless overridden. Tests pass a shared [`crate::FaultBackend`]
    /// here to run whole sharded campaigns in memory under injected
    /// faults.
    pub backend: Option<Arc<dyn StoreBackend>>,
}

impl ShardConfig {
    /// A shard named `shard_id` with the default 30 s lease TTL.
    pub fn new(shard_id: impl Into<String>) -> Self {
        let lease_ttl = Duration::from_millis(30_000);
        ShardConfig {
            shard_id: shard_id.into(),
            lease_ttl,
            poll_interval: Self::poll_for(lease_ttl),
            probe_ahead: true,
            prefer_unleased: true,
            namespace: None,
            backend: None,
        }
    }

    /// Set the lease TTL (re-deriving the poll interval from it).
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.lease_ttl = ttl;
        self.poll_interval = Self::poll_for(ttl);
        self
    }

    /// Enable or disable probe-ahead elision.
    pub fn with_probe_ahead(mut self, yes: bool) -> Self {
        self.probe_ahead = yes;
        self
    }

    /// Enable or disable prefer-unleased job picking.
    pub fn with_prefer_unleased(mut self, yes: bool) -> Self {
        self.prefer_unleased = yes;
        self
    }

    /// Execute against the tenant namespace `tenant` (blank = default).
    pub fn with_namespace(mut self, tenant: impl Into<String>) -> Self {
        let tenant = tenant.into();
        let trimmed = tenant.trim();
        self.namespace = if trimmed.is_empty() {
            None
        } else {
            Some(trimmed.to_string())
        };
        self
    }

    /// Execute against an explicit store backend (overriding
    /// [`crate::STORE_BACKEND_ENV`] resolution).
    pub fn with_backend(mut self, backend: Arc<dyn StoreBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// A shard configured from the environment: `GNNUNLOCK_SHARD_ID`
    /// (default `pid-<pid>`), `GNNUNLOCK_LEASE_TTL_MS` (default
    /// 30000; malformed values warn and fall back) and
    /// `GNNUNLOCK_TENANT` (default: the shared default namespace).
    /// This is what the worker binaries use, so
    /// `for i in 0..N; do GNNUNLOCK_SHARD_ID=w$i worker & done` over
    /// one `GNNUNLOCK_CACHE_DIR` splits a campaign across processes —
    /// including workers cohabiting with a running `gnnunlockd`, which
    /// set `GNNUNLOCK_TENANT` to join a tenant's campaign.
    pub fn from_env() -> Self {
        let mut cfg = ShardConfig::new(env::shard_id_from_env());
        if let Some(ttl) = env::lease_ttl_from_env() {
            cfg = cfg.with_ttl(ttl);
        }
        if let Some(tenant) = env::tenant_from_env() {
            cfg = cfg.with_namespace(tenant);
        }
        cfg
    }

    fn poll_for(ttl: Duration) -> Duration {
        (ttl / 8).clamp(Duration::from_millis(5), Duration::from_millis(500))
    }
}

/// What one shard's [`Campaign::execute_sharded`] produced.
pub struct ShardedRun {
    /// The campaign run as this shard observed it. Its default report
    /// is byte-identical across every shard (and to a single-process
    /// run). Caveat: values of probe-ahead-elided jobs are [`Elided`]
    /// placeholders; aggregate values (which have no dependents, so are
    /// never elided) are always real.
    pub run: CampaignRun,
    /// This shard's id.
    pub shard_id: String,
    /// Whether this shard executed the campaign's final aggregate job —
    /// the deterministically elected finalizer, responsible for writing
    /// the canonical report and merging event streams. `false` on every
    /// shard of a fully warm re-run (the aggregate was a cache hit
    /// everywhere).
    pub is_finalizer: bool,
    /// Lease-traffic counters of this shard.
    pub lease_stats: LeaseStats,
}

/// Name of the per-shard event log inside the campaign directory.
pub fn shard_events_file(shard_id: &str) -> String {
    format!("events-{}.jsonl", sanitize_tag(shard_id))
}

impl Campaign {
    /// Execute this campaign as one shard of a multi-process run rooted
    /// at `dir`: claim unleased, not-yet-cached jobs, publish their
    /// results through the store, and probe-poll for (or take over)
    /// jobs owned by peer shards. Events stream to
    /// `dir/events-<shard_id>.jsonl` (appending, so a restarted shard
    /// id keeps one stream).
    ///
    /// # Errors
    ///
    /// Fails when the runner supplies no [`crate::ValueCodec`] (peer
    /// results travel through the store, so sharding requires every
    /// stage to be persistable), when the store cannot be opened, or
    /// when the event log cannot be created.
    pub fn execute_sharded<R: CampaignRunner>(
        &self,
        runner: &R,
        cfg: ExecConfig,
        dir: &Path,
        shard: &ShardConfig,
    ) -> io::Result<ShardedRun> {
        env::apply_telemetry_env();
        let codec = runner.codec().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "sharded execution requires a persistent codec: peer shards exchange \
                 results through the store",
            )
        })?;
        let store = Arc::new(DiskStore::open_opts(
            dir,
            shard.namespace.as_deref(),
            shard.backend.clone(),
        )?);
        let cache = Arc::new(ResultCache::with_disk(store.clone(), codec));
        let leases = Arc::new(LeaseManager::new(
            store.clone(),
            shard.shard_id.clone(),
            shard.lease_ttl,
        ));
        let log = Arc::new(EventLog::open_append(
            &dir.join(shard_events_file(&shard.shard_id)),
        )?);

        let plan = self.plan();
        let fps = self.job_fingerprints(runner);
        // Dependents' addresses per job, for the probe-ahead check.
        let mut dependents: Vec<Vec<(JobKind, u64)>> = vec![Vec::new(); plan.len()];
        for (i, (job, deps)) in plan.iter().enumerate() {
            for &d in deps {
                dependents[d].push((job.kind, fps[i]));
            }
        }
        let final_aggregate = plan
            .iter()
            .rposition(|(j, _)| j.kind == JobKind::Aggregate)
            .unwrap_or(plan.len().saturating_sub(1));
        let finalizer = AtomicBool::new(false);

        // Release a job's lease only after its result is published (or
        // its body failed — failures are not persisted, so the next
        // claimant re-discovers them deterministically).
        let mut executor = Executor::new(cfg)
            .with_cache(cache.clone())
            .with_events(log.clone())
            .with_after_job(Arc::new({
                let leases = leases.clone();
                move |kind: JobKind, fp: u64, _ok: bool| {
                    leases.release(kind, fp);
                }
            }));
        if shard.prefer_unleased {
            // Pick unleased ready jobs first: a job a live peer is
            // executing would only be probe-polled, so do productive
            // work instead and come back to it — usually as a cache
            // hit. (A job whose entry already landed is never deferred;
            // it costs nothing.) The probe does filesystem I/O and the
            // hint runs under the scheduler lock, so verdicts are
            // memoized per fingerprint for one poll interval — a stale
            // verdict only perturbs pick order, never results.
            let leases = leases.clone();
            let store = store.clone();
            let memo: std::sync::Mutex<BTreeMap<u64, (std::time::Instant, bool)>> =
                std::sync::Mutex::new(BTreeMap::new());
            let memo_for = shard.poll_interval;
            executor = executor.with_ready_hint(Arc::new(move |kind, fp| {
                let Some(fp) = fp else { return false };
                let now = std::time::Instant::now();
                if let Some(&(at, verdict)) = memo.lock().unwrap().get(&fp) {
                    if now.duration_since(at) < memo_for {
                        return verdict;
                    }
                }
                let verdict = !store.contains(kind, fp) && leases.peer_holds(kind, fp);
                memo.lock().unwrap().insert(fp, (now, verdict));
                verdict
            }));
        }

        let mut graph = JobGraph::new();
        for (i, (stage_job, deps)) in plan.iter().enumerate() {
            let dep_ids: Vec<JobId> = deps.iter().map(|&d| JobId(d)).collect();
            let fp = fps[i];
            let deps_of = std::mem::take(&mut dependents[i]);
            let cache = cache.clone();
            let store = store.clone();
            let log = log.clone();
            let leases = leases.clone();
            let finalizer_ref = &finalizer;
            let shard_cfg = shard.clone();
            let is_final_aggregate = i == final_aggregate;
            graph.add(
                stage_job.label(),
                stage_job.kind,
                Some(fp),
                dep_ids,
                move |ctx| {
                    shard_body(
                        runner,
                        stage_job,
                        ctx,
                        i,
                        fp,
                        cache.as_ref(),
                        store.as_ref(),
                        leases.as_ref(),
                        log.as_ref(),
                        &deps_of,
                        &shard_cfg,
                        finalizer_ref,
                        is_final_aggregate,
                    )
                },
            );
        }

        self.emit_run_started(&log, false);
        let run = self.finish_run(executor.run(graph));
        Self::emit_run_finished(&log, &run);
        if let Some(store) = executor.cache().store() {
            store.gc_from_env();
        }
        crate::campaign::write_trace(
            dir,
            &run.outcome,
            &format!("trace-{}.json", sanitize_tag(&shard.shard_id)),
        );
        let lease_stats = leases.stats();
        Ok(ShardedRun {
            run,
            shard_id: shard.shard_id.clone(),
            is_finalizer: finalizer.load(Ordering::SeqCst),
            lease_stats,
        })
    }
}

/// The lease dance one job body performs on a cache miss. Returns the
/// job's value — computed under an acquired lease, elided by
/// probe-ahead, or probe-polled out of the store after a peer shard
/// published it.
#[allow(clippy::too_many_arguments)]
fn shard_body<R: CampaignRunner>(
    runner: &R,
    stage_job: &crate::campaign::StageJob,
    ctx: &JobCtx<'_>,
    id: usize,
    fp: u64,
    cache: &ResultCache,
    store: &DiskStore,
    leases: &LeaseManager,
    log: &EventLog,
    dependents: &[(JobKind, u64)],
    shard: &ShardConfig,
    finalizer: &AtomicBool,
    is_final_aggregate: bool,
) -> JobOutput {
    let kind = stage_job.kind;
    // Wall-clock spent probe-polling a peer-held lease, surfaced as one
    // `lease-wait` span (child of the job's own span via `parent: fp`)
    // in the Chrome trace. Recorded into the worker thread's local span
    // buffer — the executor drains it at the job boundary; no locks on
    // this path.
    let mut wait_start: Option<Instant> = None;
    let note_wait = |wait_start: &mut Option<Instant>| {
        if let Some(t0) = wait_start.take() {
            telemetry::record_span(
                &format!("lease-wait/{}", stage_job.label()),
                "lease-wait",
                telemetry::derived_id(fp, "lease-wait"),
                fp,
                t0,
            );
        }
    };
    loop {
        // A peer may have published since the executor's cache probe
        // (or since the last poll tick).
        if let Some((value, _)) = cache.lookup(kind, fp) {
            note_wait(&mut wait_start);
            return Ok(value);
        }
        match leases.try_claim(kind, fp) {
            Claim::Acquired {
                generation,
                takeover,
            } => {
                note_wait(&mut wait_start);
                // Double-check under the lease: the entry may have
                // landed between the probe and the claim.
                if let Some((value, _)) = cache.lookup(kind, fp) {
                    leases.release(kind, fp);
                    return Ok(value);
                }
                // Probe-ahead: if every dependent's entry is already
                // materialized, nobody will read this job's output.
                // `load` (not a bare existence check) validates each
                // entry's checksum — a corrupt dependent is evicted and
                // fails the check, so this job executes normally
                // instead of leaving its dependent to recompute against
                // an Elided placeholder.
                if shard.probe_ahead
                    && !dependents.is_empty()
                    && dependents.iter().all(|&(k, f)| store.load(k, f).is_some())
                {
                    leases.release(kind, fp);
                    log.append(&Event::JobElided {
                        id,
                        label: stage_job.label(),
                    });
                    return Ok(Arc::new(Elided) as JobValue);
                }
                // This claim marks a real execution: exactly one shard
                // log will pair it with the job's terminal
                // `job-finished`. The lease is released by the
                // executor's after-job hook, strictly after publish.
                log.append(&Event::JobClaimed {
                    id,
                    label: stage_job.label(),
                    owner: leases.owner().to_string(),
                    generation,
                    takeover,
                });
                if is_final_aggregate {
                    finalizer.store(true, Ordering::SeqCst);
                }
                return runner.run(stage_job, ctx);
            }
            Claim::Busy => {
                if ctx.cancel.is_cancelled() {
                    return Err(format!(
                        "cancelled while waiting for a peer shard to finish '{}'",
                        stage_job.label()
                    ));
                }
                // A degraded store makes Busy unresolvable: claims fail
                // fast, peers cannot publish, and polling would spin
                // until cancellation. Fail the job cleanly instead —
                // in-flight peers keep executing; this cell reports a
                // `store-degraded` stage error.
                if store.backend().degraded() {
                    return Err(format!(
                        "{}: store backend circuit breaker is open while waiting for '{}'",
                        crate::resilience::DEGRADED_PREFIX,
                        stage_job.label()
                    ));
                }
                leases.note_poll_wait();
                wait_start.get_or_insert_with(Instant::now);
                std::thread::sleep(shard.poll_interval);
            }
        }
    }
}

/// Replay every per-shard event log under `dir`, sorted by shard id.
/// The merged stream (`merged-events.jsonl`) and the single-process log
/// (`events.jsonl`) are not included.
///
/// # Errors
///
/// Propagates directory/file read errors.
pub fn shard_replays(dir: &Path) -> io::Result<Vec<(String, Replay)>> {
    let mut out = Vec::new();
    for entry in fs_read_dir_sorted(dir)? {
        let name = entry
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if let Some(id) = name
            .strip_prefix("events-")
            .and_then(|rest| rest.strip_suffix(".jsonl"))
        {
            out.push((id.to_string(), EventLog::replay(&entry)?));
        }
    }
    Ok(out)
}

fn fs_read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Completed successful executions per job label across a set of
/// per-shard replays. An execution is a `job-claimed` record paired
/// with a `job-finished` of status `ok` later in the *same run* of the
/// *same shard's* log (run boundaries are the `run-started` records) —
/// so a claim whose shard died mid-job (no terminal record in that
/// run) does not count, which is exactly the takeover story, and a
/// restarted shard id whose new run wait-serves the job never pairs
/// the old orphaned claim with the new finish. Wait-served and
/// cache-served jobs (no claim) never count, and neither do
/// deterministic *failures* — those are re-discovered by every shard
/// by design (failed results are not persisted).
pub fn execution_counts(replays: &[(String, Replay)]) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for (_, replay) in replays {
        let mut pending: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for ev in &replay.events {
            match ev {
                // A new run in this log: claims from a previous
                // (killed) run can no longer complete.
                Event::RunStarted { .. } => pending.clear(),
                Event::JobClaimed { label, .. } => {
                    pending.insert(label);
                }
                Event::JobFinished { label, status, .. }
                    if status == "ok" && pending.remove(label.as_str()) =>
                {
                    *out.entry(label.clone()).or_default() += 1;
                }
                _ => {}
            }
        }
    }
    out
}

/// Merge every per-shard event log under `dir` into
/// `dir/merged-events.jsonl` (shard-id order, torn tails dropped) and
/// return its path. Deterministic given the same set of complete shard
/// logs; typically run by the finalizer shard or a post-run inspector.
///
/// # Errors
///
/// Propagates read/write errors.
pub fn merge_shard_events(dir: &Path) -> io::Result<PathBuf> {
    let replays = shard_replays(dir)?;
    let mut doc = String::new();
    for (_, replay) in &replays {
        for ev in &replay.events {
            doc.push_str(&ev.to_jsonl());
            doc.push('\n');
        }
    }
    let path = dir.join("merged-events.jsonl");
    std::fs::write(&path, doc)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::StageJob;
    use crate::codec::ValueCodec;
    use crate::report::ReportOptions;

    /// Echo runner + string codec (mirrors the campaign tests').
    struct Echo;

    struct EchoCodec;

    impl ValueCodec for EchoCodec {
        fn encode(&self, _kind: JobKind, value: &JobValue) -> Option<Vec<u8>> {
            value
                .downcast_ref::<String>()
                .map(|s| s.as_bytes().to_vec())
        }

        fn decode(&self, _kind: JobKind, bytes: &[u8]) -> Option<JobValue> {
            Some(Arc::new(String::from_utf8(bytes.to_vec()).ok()?) as JobValue)
        }
    }

    impl CampaignRunner for Echo {
        fn config_salt(&self) -> u64 {
            7
        }

        fn codec(&self) -> Option<Arc<dyn ValueCodec>> {
            Some(Arc::new(EchoCodec))
        }

        fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
            let inputs: Vec<String> = (0..ctx.deps.len())
                .map(|i| ctx.dep::<String>(i).as_ref().clone())
                .collect();
            Ok(Arc::new(format!("{}<-[{}]", job.label(), inputs.join(";"))) as JobValue)
        }
    }

    fn tiny() -> Campaign {
        Campaign::builder("sharded-tiny")
            .scheme("antisat")
            .benchmarks(["c1", "c2"])
            .key_sizes([8])
            .build()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gnnunlock-shard-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cold_then_warm_sharded_runs_match_persistent() {
        let dir = tmp_dir("cold-warm");
        let ref_dir = tmp_dir("cold-warm-ref");
        let campaign = tiny();

        // Single-process reference.
        let reference = campaign
            .execute_persistent(&Echo, ExecConfig::with_workers(2), &ref_dir)
            .unwrap();
        let reference_report = reference.report(ReportOptions::default()).to_json();

        // Cold one-shard run: executes everything, elects itself
        // finalizer (it claims the aggregate).
        let cold = campaign
            .execute_sharded(
                &Echo,
                ExecConfig::with_workers(2),
                &dir,
                &ShardConfig::new("s0"),
            )
            .unwrap();
        assert!(cold.run.outcome.all_succeeded());
        assert!(cold.is_finalizer);
        assert_eq!(cold.lease_stats.claimed, campaign.plan().len());
        assert_eq!(cold.lease_stats.released, campaign.plan().len());
        assert_eq!(
            cold.run.report(ReportOptions::default()).to_json(),
            reference_report,
            "sharded and single-process reports must be byte-identical"
        );

        // Warm re-shard: pure disk hits, no claims, no finalizer.
        let warm = campaign
            .execute_sharded(
                &Echo,
                ExecConfig::with_workers(2),
                &dir,
                &ShardConfig::new("s1"),
            )
            .unwrap();
        assert_eq!(warm.run.outcome.stats.disk_hits, campaign.plan().len());
        assert_eq!(warm.lease_stats.claimed, 0);
        assert!(!warm.is_finalizer);
        assert_eq!(
            warm.run.report(ReportOptions::default()).to_json(),
            reference_report
        );

        // Exactly one completed execution per job across shard logs.
        let replays = shard_replays(&dir).unwrap();
        assert_eq!(replays.len(), 2);
        let counts = execution_counts(&replays);
        assert_eq!(counts.len(), campaign.plan().len());
        assert!(counts.values().all(|&n| n == 1), "{counts:?}");

        // The merged stream contains both shards' run records.
        let merged = merge_shard_events(&dir).unwrap();
        let merged = EventLog::replay(&merged).unwrap();
        let starts = merged
            .events
            .iter()
            .filter(|e| matches!(e, Event::RunStarted { .. }))
            .count();
        assert_eq!(starts, 2);

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
    }

    /// Prefer-unleased scheduling must reduce probe-poll iterations: a
    /// shard facing a peer-leased job and other ready work should do
    /// the other work first and pick the leased job up as a cache hit,
    /// instead of sleeping in the poll loop while work waits. Two-shard
    /// toy: a simulated peer holds the first ready job's lease and
    /// publishes its result 400 ms in; every other body takes ~60 ms.
    #[test]
    fn prefer_unleased_scheduling_reduces_poll_iterations() {
        /// Echo with per-body wall-clock, so pick order is observable.
        struct SlowEcho;
        impl CampaignRunner for SlowEcho {
            fn config_salt(&self) -> u64 {
                7
            }
            fn codec(&self) -> Option<Arc<dyn ValueCodec>> {
                Some(Arc::new(EchoCodec))
            }
            fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
                std::thread::sleep(Duration::from_millis(60));
                Echo.run(job, ctx)
            }
        }

        let run_with = |prefer: bool, tag: &str| -> (usize, usize) {
            let dir = tmp_dir(tag);
            // Five benchmarks: the non-c1 parse/lock/featurize jobs are
            // independent of the peer-held parse(c1), giving the
            // preferred schedule ~12 x 60 ms of productive work — well
            // past the peer's 400 ms publish.
            let campaign = Campaign::builder("sharded-prefer")
                .scheme("antisat")
                .benchmarks(["c1", "c2", "c3", "c4", "c5"])
                .key_sizes([8])
                .build();
            let plan = campaign.plan();
            let fps = campaign.job_fingerprints(&SlowEcho);
            // The peer leases the first ready job (lowest id, so the
            // default scheduler would pick it first and poll).
            let (job0, deps0) = &plan[0];
            assert!(deps0.is_empty(), "plan[0] must be a ready root");
            let (kind0, fp0) = (job0.kind, fps[0]);
            let store = Arc::new(DiskStore::open(&dir).unwrap());
            let peer = LeaseManager::new(store.clone(), "peer", Duration::from_secs(60));
            assert!(matches!(peer.try_claim(kind0, fp0), Claim::Acquired { .. }));
            let publisher = {
                let store = store.clone();
                let job0 = job0.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(400));
                    let cache = ResultCache::with_disk(store, Arc::new(EchoCodec));
                    let cancel = crate::CancelToken::new();
                    let ctx = JobCtx {
                        deps: &[],
                        cancel: &cancel,
                    };
                    let value = SlowEcho.run(&job0, &ctx).unwrap();
                    cache.put(kind0, fp0, value);
                })
            };
            // TTL comfortably past the publish instant (no takeover —
            // the test is about scheduling), but with a poll interval
            // (ttl/8 = 150 ms) fine enough that the default schedule
            // visibly polls across the 400 ms window.
            let shard = ShardConfig::new("w")
                .with_ttl(Duration::from_millis(1200))
                .with_prefer_unleased(prefer);
            let sharded = campaign
                .execute_sharded(&SlowEcho, ExecConfig::with_workers(1), &dir, &shard)
                .unwrap();
            publisher.join().unwrap();
            // The peer's lease release on drop must not race the next
            // iteration's claim.
            drop(peer);
            assert!(sharded.run.outcome.all_succeeded());
            let succeeded = sharded.run.outcome.stats.succeeded();
            let _ = std::fs::remove_dir_all(&dir);
            (sharded.lease_stats.poll_waits, succeeded)
        };

        let (with_pref, succeeded_with) = run_with(true, "prefer-on");
        let (without_pref, succeeded_without) = run_with(false, "prefer-off");
        // Same jobs succeed either way; only *how* the peer's job
        // resolves differs (pre-body disk hit vs wait-served body).
        assert_eq!(succeeded_with, succeeded_without);
        assert!(
            with_pref < without_pref,
            "prefer-unleased must reduce poll iterations: {with_pref} vs {without_pref}"
        );
        assert_eq!(
            with_pref, 0,
            "with other ready work covering the peer's publish window, \
             the preferred schedule never polls"
        );
    }

    #[test]
    fn sharding_without_a_codec_is_refused() {
        struct NoCodec;
        impl CampaignRunner for NoCodec {
            fn run(&self, job: &StageJob, ctx: &JobCtx<'_>) -> JobOutput {
                Echo.run(job, ctx)
            }
        }
        let dir = tmp_dir("no-codec");
        let err = match tiny().execute_sharded(
            &NoCodec,
            ExecConfig::with_workers(1),
            &dir,
            &ShardConfig::new("s"),
        ) {
            Err(e) => e,
            Ok(_) => panic!("codec-less sharding must be refused"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_config_defaults_and_env_shape() {
        let cfg = ShardConfig::new("w3");
        assert_eq!(cfg.lease_ttl, Duration::from_secs(30));
        assert!(cfg.probe_ahead);
        assert!(cfg.poll_interval <= Duration::from_millis(500));
        let short = cfg.with_ttl(Duration::from_millis(80));
        assert_eq!(short.poll_interval, Duration::from_millis(10));
        assert_eq!(shard_events_file("w/3"), "events-w_3.jsonl");
    }
}
