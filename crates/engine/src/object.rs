//! Object-store backend: the [`StoreBackend`] obligations discharged
//! over a minimal blob API — no renames, no hard links, no real
//! directories.
//!
//! The substrate is [`BlobService`], an in-process model of a
//! conditional-put object store (S3-shaped): every key maps to bytes
//! plus a monotonically increasing **ETag**, and the only primitives are
//! `get` / `put` / `put_if_absent` / `put_if_match` / `delete_if_match`
//! / `list`. [`ObjectStoreBackend`] maps the trait onto those
//! primitives:
//!
//! - **publish** — an unconditional put: the blob PUT is atomic at the
//!   service, so last-writer-wins atomicity is free (a crashed upload
//!   leaves the key untouched — there is no staging namespace to
//!   orphan);
//! - **claim** — `put_if_absent`: the service accepts exactly one
//!   creator per key, which *is* the exactly-one-winner obligation;
//! - **entomb** — an ETag-conditional swap instead of a rename: read
//!   the victim's bytes + ETag, copy them to the tomb key, then
//!   `delete_if_match` on the observed ETag. The conditional delete is
//!   the arbitration point — concurrent challengers observe the same
//!   ETag and exactly one delete can match it; losers clean up their
//!   tomb copy and fail as if the source were gone.
//!
//! The service injects the same [`Fault`] schedule vocabulary as
//! [`crate::FaultBackend`] — plus the service-shaped kinds
//! ([`Fault::Latency`], [`Fault::Unavailable`], [`Fault::SlowRead`]) —
//! and parks retry backoff on a virtual clock, so the whole
//! retry/timeout/degradation matrix of [`crate::resilience`] runs
//! timing-free against it.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, SystemTime};

use crate::backend::{
    Fault, FaultOp, FaultRule, FaultSchedule, FileMeta, JournalEntry, StoreBackend,
};

#[derive(Debug, Clone)]
struct Blob {
    bytes: Vec<u8>,
    etag: u64,
    mtime: SystemTime,
}

/// An in-process conditional-put blob service: keys are opaque paths,
/// every write allocates a fresh process-unique ETag, and the
/// conditional primitives (`put_if_absent`, `put_if_match`,
/// `delete_if_match`) arbitrate concurrent writers the way a real
/// object store's preconditions do. Deterministic [`FaultRule`]
/// schedules inject the full recoverable-fault vocabulary at the
/// service boundary, and every gated call is journaled.
#[derive(Debug, Default)]
pub struct BlobService {
    blobs: Mutex<BTreeMap<PathBuf, Blob>>,
    etag_seq: AtomicU64,
    rules: FaultSchedule,
    journal: Mutex<Vec<JournalEntry>>,
    seq: AtomicU64,
    /// Remaining operations in an open [`Fault::Unavailable`] window.
    unavailable: AtomicU64,
    /// Virtual microseconds parked in backoff waits or charged by
    /// latency faults.
    waited: AtomicU64,
}

impl BlobService {
    /// A fault-free blob service.
    pub fn new() -> Self {
        BlobService::default()
    }

    /// Schedule one more fault rule.
    pub fn inject(&self, rule: FaultRule) {
        self.rules.inject(rule);
    }

    /// Drop all scheduled rules and close any open unavailability
    /// window.
    pub fn clear_rules(&self) {
        self.rules.clear();
        self.unavailable.store(0, Ordering::Relaxed);
    }

    /// How many scheduled rules have fired.
    pub fn faults_fired(&self) -> usize {
        self.rules.fired()
    }

    /// The gated-operation journal so far.
    pub fn journal(&self) -> Vec<JournalEntry> {
        self.journal.lock().unwrap().clone()
    }

    /// Every key currently stored, in sorted order.
    pub fn keys(&self) -> Vec<PathBuf> {
        self.blobs.lock().unwrap().keys().cloned().collect()
    }

    /// Raw bytes at `key`, bypassing faults and the journal.
    pub fn read_raw(&self, key: &Path) -> Option<Vec<u8>> {
        self.blobs.lock().unwrap().get(key).map(|b| b.bytes.clone())
    }

    /// Set `key`'s mtime exactly; `false` when absent.
    pub fn set_mtime(&self, key: &Path, mtime: SystemTime) -> bool {
        match self.blobs.lock().unwrap().get_mut(key) {
            Some(b) => {
                b.mtime = mtime;
                true
            }
            None => false,
        }
    }

    /// Back-date `key`'s mtime by `by` — the no-sleep way to make a
    /// lease stale or an orphan old. `false` when absent.
    pub fn age(&self, key: &Path, by: Duration) -> bool {
        self.set_mtime(key, SystemTime::now() - by)
    }

    /// Total virtual time parked in backoff waits or charged by
    /// latency/slow-read faults.
    pub fn virtual_waited(&self) -> Duration {
        Duration::from_micros(self.waited.load(Ordering::Relaxed))
    }

    fn next_etag(&self) -> u64 {
        self.etag_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    // --- blob API ---------------------------------------------------

    /// Bytes + ETag at `key`.
    pub fn get(&self, key: &Path) -> io::Result<(Vec<u8>, u64)> {
        self.blobs
            .lock()
            .unwrap()
            .get(key)
            .map(|b| (b.bytes.clone(), b.etag))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such object: {}", key.display()),
                )
            })
    }

    /// ETag, length and mtime at `key` without the bytes.
    pub fn head(&self, key: &Path) -> Option<(u64, u64, SystemTime)> {
        self.blobs
            .lock()
            .unwrap()
            .get(key)
            .map(|b| (b.etag, b.bytes.len() as u64, b.mtime))
    }

    /// Unconditional last-writer-wins put; returns the new ETag.
    pub fn put(&self, key: &Path, bytes: &[u8]) -> u64 {
        let etag = self.next_etag();
        self.blobs.lock().unwrap().insert(
            key.to_path_buf(),
            Blob {
                bytes: bytes.to_vec(),
                etag,
                mtime: SystemTime::now(),
            },
        );
        etag
    }

    /// Create `key` iff absent; [`io::ErrorKind::AlreadyExists`]
    /// otherwise. Returns the new ETag.
    pub fn put_if_absent(&self, key: &Path, bytes: &[u8]) -> io::Result<u64> {
        let mut blobs = self.blobs.lock().unwrap();
        if blobs.contains_key(key) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("object exists: {}", key.display()),
            ));
        }
        let etag = self.etag_seq.fetch_add(1, Ordering::Relaxed) + 1;
        blobs.insert(
            key.to_path_buf(),
            Blob {
                bytes: bytes.to_vec(),
                etag,
                mtime: SystemTime::now(),
            },
        );
        Ok(etag)
    }

    /// Replace `key` iff its current ETag is `expected`; the loser of a
    /// precondition race fails with [`io::ErrorKind::NotFound`] ("the
    /// object you conditioned on is gone"). Returns the new ETag.
    pub fn put_if_match(&self, key: &Path, bytes: &[u8], expected: u64) -> io::Result<u64> {
        let mut blobs = self.blobs.lock().unwrap();
        match blobs.get(key) {
            Some(b) if b.etag == expected => {}
            _ => return Err(etag_conflict(key, expected)),
        }
        let etag = self.etag_seq.fetch_add(1, Ordering::Relaxed) + 1;
        blobs.insert(
            key.to_path_buf(),
            Blob {
                bytes: bytes.to_vec(),
                etag,
                mtime: SystemTime::now(),
            },
        );
        Ok(etag)
    }

    /// Delete `key` iff its current ETag is `expected` — the
    /// arbitration primitive behind entomb.
    pub fn delete_if_match(&self, key: &Path, expected: u64) -> io::Result<()> {
        let mut blobs = self.blobs.lock().unwrap();
        match blobs.get(key) {
            Some(b) if b.etag == expected => {
                blobs.remove(key);
                Ok(())
            }
            _ => Err(etag_conflict(key, expected)),
        }
    }

    /// Unconditional delete; [`io::ErrorKind::NotFound`] when absent.
    pub fn delete(&self, key: &Path) -> io::Result<()> {
        if self.blobs.lock().unwrap().remove(key).is_some() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such object: {}", key.display()),
            ))
        }
    }

    /// Metadata-only mtime refresh (a self-copy in a real store); the
    /// ETag is unchanged so a concurrent entomb of a *stale* lease is
    /// not spuriously defeated by its own heartbeat probe.
    pub fn touch(&self, key: &Path) -> io::Result<()> {
        if self.set_mtime(key, SystemTime::now()) {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such object: {}", key.display()),
            ))
        }
    }

    /// The keys under `dir` — prefix listing, the only enumeration an
    /// object store has. `recursive` lists the whole prefix; otherwise
    /// only direct children.
    pub fn list_prefix(&self, dir: &Path, recursive: bool) -> Vec<FileMeta> {
        let blobs = self.blobs.lock().unwrap();
        blobs
            .iter()
            .filter(|(p, _)| {
                if recursive {
                    p.starts_with(dir) && p.as_path() != dir
                } else {
                    p.parent() == Some(dir)
                }
            })
            .map(|(p, b)| FileMeta {
                path: p.clone(),
                len: b.bytes.len() as u64,
                mtime: b.mtime,
            })
            .collect()
    }

    // --- fault gate -------------------------------------------------

    fn record(&self, op: FaultOp, path: &Path, fault: Option<Fault>, ok: bool) {
        self.journal.lock().unwrap().push(JournalEntry {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            op,
            path: path.to_path_buf(),
            fault,
            ok,
        });
    }

    fn injected(&self, op: FaultOp, path: &Path, fault: Fault, kind: io::ErrorKind) -> io::Error {
        self.record(op, path, Some(fault), false);
        io::Error::new(
            kind,
            format!("injected fault: {} on {}", fault.tag(), op.tag()),
        )
    }

    /// The service-level fault gate every backend operation passes
    /// through — same semantics as `FaultBackend::gate`: an open
    /// unavailability window fails everything, transient/latency faults
    /// error retryably, slow reads are charged and let through, and
    /// op-specific faults (crash, torn, visibility) are handed back for
    /// the caller to stage.
    fn gate(&self, op: FaultOp, path: &Path) -> Result<Option<Fault>, io::Error> {
        let in_window = self
            .unavailable
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok();
        if in_window {
            return Err(self.injected(op, path, Fault::Unavailable(0), io::ErrorKind::TimedOut));
        }
        match self.rules.check(op, path) {
            Some(f @ Fault::Transient) => {
                Err(self.injected(op, path, f, io::ErrorKind::WouldBlock))
            }
            Some(f @ Fault::Latency(ms)) => {
                self.waited
                    .fetch_add(ms.saturating_mul(1000), Ordering::Relaxed);
                Err(self.injected(op, path, f, io::ErrorKind::TimedOut))
            }
            Some(f @ Fault::Unavailable(n)) => {
                self.unavailable.store(n as u64, Ordering::Relaxed);
                Err(self.injected(op, path, f, io::ErrorKind::TimedOut))
            }
            Some(Fault::SlowRead) => {
                self.waited.fetch_add(25_000, Ordering::Relaxed);
                self.record(op, path, Some(Fault::SlowRead), true);
                Ok(None)
            }
            other => Ok(other),
        }
    }
}

fn etag_conflict(key: &Path, expected: u64) -> io::Error {
    // Losers of a precondition race see the object they conditioned on
    // as gone — NotFound, matching the loser contract of `entomb`.
    io::Error::new(
        io::ErrorKind::NotFound,
        format!(
            "etag precondition failed (expected {expected}): {}",
            key.display()
        ),
    )
}

/// [`StoreBackend`] over a [`BlobService`]. See the [module docs](self)
/// for how each obligation maps onto the blob API.
#[derive(Debug, Default)]
pub struct ObjectStoreBackend {
    service: Arc<BlobService>,
}

impl ObjectStoreBackend {
    /// A backend over a fresh fault-free blob service.
    pub fn new() -> Self {
        ObjectStoreBackend::default()
    }

    /// A backend whose service has `rules` pre-scheduled.
    pub fn with_rules(rules: impl IntoIterator<Item = FaultRule>) -> Self {
        let b = ObjectStoreBackend::new();
        for r in rules {
            b.service.inject(r);
        }
        b
    }

    /// A backend sharing an existing service (N worker handles over one
    /// bucket).
    pub fn with_service(service: Arc<BlobService>) -> Self {
        ObjectStoreBackend { service }
    }

    /// The underlying blob service — fault injection, journal, clock
    /// doctoring.
    pub fn service(&self) -> &Arc<BlobService> {
        &self.service
    }
}

impl StoreBackend for ObjectStoreBackend {
    fn name(&self) -> &'static str {
        "object"
    }

    fn ensure_dir(&self, _dir: &Path) -> io::Result<()> {
        // Directories are not real: a prefix exists iff a key under it
        // does.
        Ok(())
    }

    fn publish(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let op = FaultOp::Publish;
        match self.service.gate(op, path)? {
            Some(f @ (Fault::CrashBeforeRename | Fault::TornWrite(_))) => {
                // A crashed or torn upload never materializes: the blob
                // PUT is atomic at the service, so the final key is
                // simply untouched — no `.tmp-` debris to sweep either.
                return Err(self.service.injected(op, path, f, io::ErrorKind::Other));
            }
            Some(f) => return Err(self.service.injected(op, path, f, io::ErrorKind::Other)),
            None => {}
        }
        self.service.put(path, bytes);
        self.service.record(op, path, None, true);
        Ok(())
    }

    fn claim(&self, path: &Path, content: &[u8]) -> io::Result<()> {
        let op = FaultOp::Claim;
        let fault = self.service.gate(op, path)?;
        if let Some(Fault::TornWrite(n)) = fault {
            // The claimant won the conditional create but its upload
            // was cut short: the key exists with a content prefix.
            let torn = &content[..n.min(content.len())];
            return match self.service.put_if_absent(path, torn) {
                Ok(_) => {
                    Err(self
                        .service
                        .injected(op, path, Fault::TornWrite(n), io::ErrorKind::Other))
                }
                Err(e) => {
                    self.service.record(op, path, None, false);
                    Err(e)
                }
            };
        }
        if let Some(f) = fault {
            return Err(self.service.injected(op, path, f, io::ErrorKind::Other));
        }
        match self.service.put_if_absent(path, content) {
            Ok(_) => {
                self.service.record(op, path, None, true);
                Ok(())
            }
            Err(e) => {
                self.service.record(op, path, None, false);
                Err(e)
            }
        }
    }

    fn entomb(&self, path: &Path, tomb: &Path) -> io::Result<()> {
        let op = FaultOp::Entomb;
        let fault = self.service.gate(op, path)?;
        // ETag-conditional swap: observe, copy to the tomb key, then
        // conditionally delete the source. The delete_if_match is the
        // exactly-one-winner arbitration — every concurrent challenger
        // observed the same ETag and at most one delete can match it.
        let (bytes, etag) = match self.service.get(path) {
            Ok(found) => found,
            Err(e) => {
                self.service.record(op, path, None, false);
                return Err(e);
            }
        };
        self.service.put(tomb, &bytes);
        if let Err(e) = self.service.delete_if_match(path, etag) {
            // Lost the arbitration: withdraw our tomb copy so losers
            // leave no trace, and fail as if the source were gone.
            let _ = self.service.delete(tomb);
            self.service.record(op, path, None, false);
            return Err(e);
        }
        if let Some(f @ Fault::CrashAfterEntomb) = fault {
            // The swap is applied — the challenger died before it could
            // read the tomb and re-create the lease.
            return Err(self.service.injected(op, path, f, io::ErrorKind::Other));
        }
        if let Some(f) = fault {
            return Err(self.service.injected(op, path, f, io::ErrorKind::Other));
        }
        self.service.record(op, path, None, true);
        Ok(())
    }

    fn load(&self, path: &Path) -> io::Result<Vec<u8>> {
        let op = FaultOp::Load;
        match self.service.gate(op, path)? {
            Some(f @ Fault::Invisible) => {
                return Err(self.service.injected(op, path, f, io::ErrorKind::NotFound))
            }
            Some(Fault::TornRead(n)) => {
                return match self.service.get(path) {
                    Ok((bytes, _)) => {
                        let torn = bytes[..n.min(bytes.len())].to_vec();
                        self.service
                            .record(op, path, Some(Fault::TornRead(n)), true);
                        Ok(torn)
                    }
                    Err(e) => {
                        self.service
                            .record(op, path, Some(Fault::TornRead(n)), false);
                        Err(e)
                    }
                };
            }
            Some(f) => return Err(self.service.injected(op, path, f, io::ErrorKind::Other)),
            None => {}
        }
        match self.service.get(path) {
            Ok((bytes, _)) => {
                self.service.record(op, path, None, true);
                Ok(bytes)
            }
            Err(e) => {
                self.service.record(op, path, None, false);
                Err(e)
            }
        }
    }

    fn contains(&self, path: &Path) -> bool {
        self.service.head(path).is_some()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let op = FaultOp::Remove;
        let _ = self.service.gate(op, path)?;
        let out = self.service.delete(path);
        self.service.record(op, path, None, out.is_ok());
        out
    }

    fn refresh(&self, path: &Path) -> io::Result<()> {
        let op = FaultOp::Refresh;
        let _ = self.service.gate(op, path)?;
        let out = self.service.touch(path);
        self.service.record(op, path, None, out.is_ok());
        out
    }

    fn mtime(&self, path: &Path) -> io::Result<SystemTime> {
        self.service
            .head(path)
            .map(|(_, _, mtime)| mtime)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such object"))
    }

    fn list(&self, dir: &Path, recursive: bool) -> io::Result<Vec<FileMeta>> {
        Ok(self.service.list_prefix(dir, recursive))
    }

    fn backoff_wait(&self, pause: Duration) {
        self.service
            .waited
            .fetch_add(pause.as_micros() as u64, Ordering::Relaxed);
    }
}

/// The process-global registry behind the `object` value of
/// [`crate::STORE_BACKEND_ENV`]: every store root maps onto one shared
/// [`BlobService`] (no faults scheduled), so the N shard handles a test
/// opens on one root cooperate through one bucket, exactly as N
/// [`crate::LocalDirBackend`] handles would on one real directory.
pub fn object_backend_for(root: &Path) -> Arc<ObjectStoreBackend> {
    static ROOTS: OnceLock<Mutex<BTreeMap<PathBuf, Arc<BlobService>>>> = OnceLock::new();
    let service = ROOTS
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap()
        .entry(root.to_path_buf())
        .or_default()
        .clone();
    Arc::new(ObjectStoreBackend::with_service(service))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_puts_arbitrate_on_etags() {
        let svc = BlobService::new();
        let key = Path::new("/bucket/k");
        let e1 = svc.put_if_absent(key, b"one").unwrap();
        assert_eq!(
            svc.put_if_absent(key, b"two").unwrap_err().kind(),
            io::ErrorKind::AlreadyExists
        );
        let e2 = svc.put_if_match(key, b"two", e1).unwrap();
        assert!(e2 > e1, "every write allocates a fresh etag");
        // A writer still holding the stale etag loses.
        assert!(svc.put_if_match(key, b"three", e1).is_err());
        assert!(svc.delete_if_match(key, e1).is_err());
        svc.delete_if_match(key, e2).unwrap();
        assert!(svc.head(key).is_none());
    }

    #[test]
    fn touch_refreshes_mtime_without_changing_the_etag() {
        let svc = BlobService::new();
        let key = Path::new("/bucket/k");
        let etag = svc.put_if_absent(key, b"x").unwrap();
        svc.age(key, Duration::from_secs(100));
        let (_, _, before) = svc.head(key).unwrap();
        svc.touch(key).unwrap();
        let (after_etag, _, after) = svc.head(key).unwrap();
        assert!(after > before);
        assert_eq!(after_etag, etag, "refresh must not defeat entomb etags");
    }

    #[test]
    fn entomb_swap_is_exactly_one_winner_with_no_loser_debris() {
        let backend = Arc::new(ObjectStoreBackend::new());
        let path = PathBuf::from("/bucket/objects/x.lease");
        backend.claim(&path, b"victim content\n").unwrap();
        let backend = &backend;
        let path = &path;
        let winners: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    let tomb = path.with_file_name(format!("x.lease.tomb-{i}"));
                    s.spawn(move || match backend.entomb(path, &tomb) {
                        Ok(()) => {
                            assert_eq!(backend.load(&tomb).unwrap(), b"victim content\n");
                            1usize
                        }
                        Err(_) => 0,
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(winners, 1, "exactly one conditional delete can match");
        assert!(!backend.contains(path));
        // Losers withdrew their tomb copies: exactly one tomb remains.
        let tombs = backend
            .service()
            .keys()
            .into_iter()
            .filter(|k| k.to_string_lossy().contains(".tomb-"))
            .count();
        assert_eq!(tombs, 1, "losers must leave no tomb debris");
    }

    #[test]
    fn crashed_publish_leaves_the_key_untouched_and_no_debris() {
        let backend = ObjectStoreBackend::with_rules([FaultRule::on(
            FaultOp::Publish,
            "entry.bin",
            Fault::CrashBeforeRename,
        )]);
        let path = Path::new("/bucket/objects/entry.bin");
        assert!(backend.publish(path, b"payload").is_err());
        assert!(!backend.contains(path));
        assert!(
            backend.service().keys().is_empty(),
            "a crashed upload must not orphan anything"
        );
        backend.publish(path, b"payload").unwrap();
        assert_eq!(backend.load(path).unwrap(), b"payload");
    }

    #[test]
    fn registry_shares_one_bucket_per_root() {
        let a = object_backend_for(Path::new("/reg/alpha"));
        let b = object_backend_for(Path::new("/reg/alpha"));
        let c = object_backend_for(Path::new("/reg/beta"));
        a.publish(Path::new("/reg/alpha/x.bin"), b"shared").unwrap();
        assert_eq!(b.load(Path::new("/reg/alpha/x.bin")).unwrap(), b"shared");
        assert!(!c.contains(Path::new("/reg/alpha/x.bin")));
    }
}
