//! Pluggable store backends: the atomicity obligations of the
//! persistence + coordination substrate, as a trait.
//!
//! [`crate::DiskStore`] and [`crate::LeaseManager`] are built from a
//! small set of filesystem tricks — write-then-rename publish,
//! create-new lease claims, rename-arbitrated takeover. [`StoreBackend`]
//! names those tricks as trait obligations so the engine's correctness
//! argument is stated once, against the trait, and every backend either
//! honors the contract or is a bug:
//!
//! - [`StoreBackend::publish`] — **atomic last-writer-wins**: a reader
//!   observes either no file or one writer's complete bytes, never a
//!   torn mixture, whatever the crash/interleaving;
//! - [`StoreBackend::claim`] — **exactly-one-winner create**: among any
//!   number of concurrent claimants of one path, exactly one succeeds
//!   and the rest fail with [`io::ErrorKind::AlreadyExists`];
//! - [`StoreBackend::entomb`] — **rename-arbitrated takeover**: among
//!   concurrent renames of one source path, exactly one wins; losers
//!   fail (the file is gone).
//!
//! Two implementations ship today: [`LocalDirBackend`] (the production
//! backend — the original `DiskStore`/`LeaseManager` filesystem code
//! moved behind the trait, byte-for-byte compatible with stores written
//! before the trait existed) and [`FaultBackend`] (an in-memory backend
//! whose deterministic, seeded fault schedule simulates crashed writers,
//! torn reads/writes, NFS-style delayed visibility and transient I/O
//! errors — turning the crash/takeover test matrix from
//! timing-dependent SIGKILL choreography into fast exhaustive unit
//! tests). The NFS- and object-store-shaped backends on the roadmap
//! implement the same trait: conditional-put/ETag leases are just
//! another way to discharge the `claim` obligation.
//!
//! A third implementation, [`crate::ObjectStoreBackend`], discharges
//! the same obligations over a minimal blob API with no renames and no
//! hard links: publish is a last-writer-wins put, claim is
//! `put_if_absent`, and entomb is an ETag-conditional swap (copy to the
//! tomb key, then delete-if-match on the observed ETag — exactly one
//! challenger's conditional delete can win).
//!
//! Backend selection: explicit (`ShardConfig::with_backend`,
//! `DaemonConfig::with_store_backend`, `DiskStore::open_with_backend`)
//! or via [`STORE_BACKEND_ENV`] (`local` — the default — `memory`,
//! which maps each store root onto a process-global [`FaultBackend`]
//! with no faults scheduled, or `object`, the blob-API backend; CI runs
//! the backend-agnostic suite under all three values). Whatever the
//! selection, [`crate::DiskStore`] wraps the backend in the
//! [`crate::resilience`] layer — deterministic retries, a per-backend
//! circuit breaker, and a publish spill queue.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, SystemTime};

/// Environment variable selecting the store backend implementation:
/// `local` (the default; real directories + atomic renames), `memory`
/// (a process-global in-memory [`FaultBackend`] per store root — no
/// durability, used by the CI backend matrix and fault soak) or
/// `object` (a process-global [`crate::ObjectStoreBackend`] per store
/// root — blob API, conditional-put arbitration). Malformed values warn
/// via [`crate::env`] and fall back to `local`.
pub const STORE_BACKEND_ENV: &str = "GNNUNLOCK_STORE_BACKEND";

/// One file's metadata as reported by [`StoreBackend::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Full path of the file (under the listed directory).
    pub path: PathBuf,
    /// File length in bytes.
    pub len: u64,
    /// Last-modified time — the LRU/staleness clock every cooperating
    /// process shares.
    pub mtime: SystemTime,
}

/// The atomicity obligations of a store + lease substrate. See the
/// [module docs](self) for the contract each method must honor.
///
/// All paths are absolute-or-relative paths *as the engine computes
/// them*; a backend is free to treat them as opaque keys (the in-memory
/// backend does) as long as prefix/parent relationships still hold for
/// [`StoreBackend::list`].
pub trait StoreBackend: Send + Sync + std::fmt::Debug {
    /// Short stable name for diagnostics (`"local"`, `"memory"`).
    fn name(&self) -> &'static str;

    /// Ensure `dir` exists (no-op where directories aren't real).
    fn ensure_dir(&self, dir: &Path) -> io::Result<()>;

    /// Atomically materialize `bytes` at `path` (last writer wins).
    /// Readers must never observe a torn mixture under `path`; a
    /// crashed publish may leave an orphaned `.tmp-*` sibling but never
    /// a partial file under the final name. Creates parent directories.
    fn publish(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Create `path` holding exactly `content` iff it does not already
    /// exist: among concurrent claimants exactly one succeeds, the rest
    /// fail with [`io::ErrorKind::AlreadyExists`]. Creates parent
    /// directories.
    fn claim(&self, path: &Path, content: &[u8]) -> io::Result<()>;

    /// Atomically rename `path` to `tomb`: among concurrent entombers
    /// of one `path`, exactly one wins; losers fail (typically
    /// [`io::ErrorKind::NotFound`]).
    fn entomb(&self, path: &Path, tomb: &Path) -> io::Result<()>;

    /// Read the full contents of `path`.
    fn load(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Whether `path` currently exists (a cheap probe, no validation).
    fn contains(&self, path: &Path) -> bool;

    /// Delete `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Refresh `path`'s mtime to now — the heartbeat / LRU-touch
    /// primitive.
    fn refresh(&self, path: &Path) -> io::Result<()>;

    /// `path`'s last-modified time.
    fn mtime(&self, path: &Path) -> io::Result<SystemTime>;

    /// The files under `dir` — direct children only, or the whole
    /// subtree when `recursive`. A missing directory lists as empty.
    fn list(&self, dir: &Path, recursive: bool) -> io::Result<Vec<FileMeta>>;

    /// Park the caller for `pause` between retry attempts — the clock
    /// every wait of the [`crate::resilience`] layer goes through.
    /// Substrate-backed backends really sleep; the deterministic
    /// in-memory backends advance a virtual clock instead (the
    /// `age()`-style mtime doctoring applied to time itself), which is
    /// what lets the whole retry/breaker matrix run timing-free.
    fn backoff_wait(&self, pause: Duration) {
        std::thread::sleep(pause);
    }

    /// Whether the backend is currently degraded — its resilience
    /// wrapper tripped the circuit breaker open and operations fail
    /// fast instead of reaching the substrate. Plain backends are never
    /// degraded; only [`crate::ResilientBackend`] overrides this.
    fn degraded(&self) -> bool {
        false
    }
}

/// Whether an I/O error kind is transient — worth retrying rather than
/// treating as a verdict (entry corrupt, lease lost). Shared by the
/// store's load path and the lease readers.
pub(crate) fn is_transient_kind(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted | io::ErrorKind::TimedOut
    )
}

/// Process-wide counter making `.tmp-<pid>-<n>` staging names unique
/// across every handle in this process, not just within one.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The production backend: real directories, write-then-rename publish,
/// `O_CREAT|O_EXCL`-style claims, `rename(2)` arbitration. Byte-for-byte
/// compatible with store directories written before [`StoreBackend`]
/// existed.
#[derive(Debug, Default)]
pub struct LocalDirBackend;

impl LocalDirBackend {
    /// A local-directory backend.
    pub fn new() -> Self {
        LocalDirBackend
    }

    fn staging_name(prefix: &str) -> String {
        format!(
            ".tmp-{prefix}{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        )
    }
}

impl StoreBackend for LocalDirBackend {
    fn name(&self) -> &'static str {
        "local"
    }

    fn ensure_dir(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn publish(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let dir = path.parent().unwrap_or(Path::new("."));
        fs::create_dir_all(dir)?;
        // Unique-per-(process, call) temp name so concurrent writers of
        // the same path never clobber each other's half-written files;
        // the final rename is atomic and last-writer-wins.
        let tmp = dir.join(Self::staging_name(""));
        let write = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, path)
        })();
        if write.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        write
    }

    fn claim(&self, path: &Path, content: &[u8]) -> io::Result<()> {
        let dir = path.parent().unwrap_or(Path::new("."));
        fs::create_dir_all(dir)?;
        // Stage the full content first, then link it under the claimed
        // name: `link(2)` fails with EEXIST if the path exists, so the
        // claim stays exactly-one-winner *and* no reader can ever see a
        // half-written claim file (the create-new-then-write protocol
        // this replaces had a torn window between create and write).
        // The staging name reuses the `.tmp-` prefix so a claimant
        // crashed mid-stage is collected by the regular orphan sweep.
        let staged = dir.join(Self::staging_name("claim-"));
        fs::write(&staged, content)?;
        let linked = fs::hard_link(&staged, path);
        let _ = fs::remove_file(&staged);
        match linked {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Err(e),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Unsupported | io::ErrorKind::PermissionDenied
                ) =>
            {
                // Filesystems without hard links: fall back to the
                // legacy create-new + write protocol (still exactly one
                // winner; readers tolerate the torn window).
                let mut f = fs::OpenOptions::new()
                    .write(true)
                    .create_new(true)
                    .open(path)?;
                f.write_all(content)
            }
            Err(e) => Err(e),
        }
    }

    fn entomb(&self, path: &Path, tomb: &Path) -> io::Result<()> {
        fs::rename(path, tomb)
    }

    fn load(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn contains(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn refresh(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new()
            .append(true)
            .open(path)?
            .set_modified(SystemTime::now())
    }

    fn mtime(&self, path: &Path) -> io::Result<SystemTime> {
        fs::metadata(path)?.modified()
    }

    fn list(&self, dir: &Path, recursive: bool) -> io::Result<Vec<FileMeta>> {
        fn walk(dir: &Path, recursive: bool, out: &mut Vec<FileMeta>) {
            let Ok(entries) = fs::read_dir(dir) else {
                return;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    if recursive {
                        walk(&path, recursive, out);
                    }
                } else if let Ok(meta) = entry.metadata() {
                    out.push(FileMeta {
                        path,
                        len: meta.len(),
                        mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                    });
                }
            }
        }
        let mut out = Vec::new();
        walk(dir, recursive, &mut out);
        Ok(out)
    }
}

/// The operation an injected fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// [`StoreBackend::publish`].
    Publish,
    /// [`StoreBackend::claim`].
    Claim,
    /// [`StoreBackend::entomb`].
    Entomb,
    /// [`StoreBackend::load`].
    Load,
    /// [`StoreBackend::refresh`].
    Refresh,
    /// [`StoreBackend::remove`].
    Remove,
}

impl FaultOp {
    /// Stable lowercase tag (journal / diagnostics).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultOp::Publish => "publish",
            FaultOp::Claim => "claim",
            FaultOp::Entomb => "entomb",
            FaultOp::Load => "load",
            FaultOp::Refresh => "refresh",
            FaultOp::Remove => "remove",
        }
    }
}

/// The failure a matched [`FaultRule`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The writer died after staging its bytes but before the atomic
    /// rename: the final path is untouched, an orphaned `.tmp-crash-*`
    /// sibling is left behind, and the operation errors.
    CrashBeforeRename,
    /// The challenger died immediately after the tomb rename: the
    /// rename *is applied* (the lease is gone, the tomb exists), then
    /// the operation errors — the crash window of satellite bug 3.
    CrashAfterEntomb,
    /// The writer died (or a reader raced it) mid-write: the path holds
    /// only the first `n` bytes of the content. On `claim` the torn
    /// file *exists* (modeling the legacy create-new-then-write
    /// protocol and NFS partial visibility); on `publish` the torn
    /// bytes land in an orphaned temp sibling, never under the final
    /// name (publish is atomic).
    TornWrite(usize),
    /// The reader observed only the first `n` bytes — an NFS
    /// close-to-open cache serving a stale partial page.
    TornRead(usize),
    /// The path is reported absent for this one operation even though
    /// it exists — NFS close-to-open delayed visibility.
    Invisible,
    /// A spurious transient error ([`io::ErrorKind::WouldBlock`]); the
    /// operation has no effect and succeeds if retried.
    Transient,
    /// The service answered only after `ms` milliseconds — surfaced to
    /// the caller as [`io::ErrorKind::TimedOut`] (its patience ran out
    /// first) with the latency charged to the backend's virtual clock,
    /// never slept. The operation has no effect and succeeds if
    /// retried.
    Latency(u64),
    /// A sustained outage: this operation fails with
    /// [`io::ErrorKind::TimedOut`] and opens a window in which the next
    /// `n` operations of any kind fail the same way — the schedule
    /// vocabulary for exercising retry exhaustion and the circuit
    /// breaker.
    Unavailable(usize),
    /// A degraded-but-correct replica: the read completes with the full
    /// bytes, but its slowness is charged to the backend's virtual
    /// clock.
    SlowRead,
}

impl Fault {
    /// Stable lowercase tag (journal / diagnostics).
    pub fn tag(&self) -> &'static str {
        match self {
            Fault::CrashBeforeRename => "crash-before-rename",
            Fault::CrashAfterEntomb => "crash-after-entomb",
            Fault::TornWrite(_) => "torn-write",
            Fault::TornRead(_) => "torn-read",
            Fault::Invisible => "invisible",
            Fault::Transient => "transient",
            Fault::Latency(_) => "latency",
            Fault::Unavailable(_) => "unavailable",
            Fault::SlowRead => "slow-read",
        }
    }

    /// Whether a schedule of this fault can never change a campaign's
    /// outcome, only its wall-clock — the admission criterion for the
    /// seeded soak schedules. Crash and torn-write faults are excluded:
    /// they mutate durable state mid-operation, which is the crash
    /// matrix's scenario, not the soak's.
    pub fn recoverable(&self) -> bool {
        matches!(
            self,
            Fault::Transient
                | Fault::Invisible
                | Fault::TornRead(_)
                | Fault::Latency(_)
                | Fault::Unavailable(_)
                | Fault::SlowRead
        )
    }
}

/// One entry of a [`FaultBackend`] schedule: the `skip`-th-and-after
/// matching operation (op kind + path substring) fires `fault`, once.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The operation kind this rule matches.
    pub op: FaultOp,
    /// Substring the operation's path must contain (`""` matches all).
    pub path_contains: String,
    /// Matching operations to let through before firing.
    pub skip: usize,
    /// The fault to inject.
    pub fault: Fault,
}

impl FaultRule {
    /// A rule firing `fault` on the first `op` whose path contains
    /// `path_contains`.
    pub fn on(op: FaultOp, path_contains: impl Into<String>, fault: Fault) -> Self {
        FaultRule {
            op,
            path_contains: path_contains.into(),
            skip: 0,
            fault,
        }
    }

    /// Let `skip` matching operations through before firing.
    pub fn after(mut self, skip: usize) -> Self {
        self.skip = skip;
        self
    }
}

/// One journaled backend operation (for test assertions).
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Global operation sequence number.
    pub seq: u64,
    /// The operation kind.
    pub op: FaultOp,
    /// The path operated on.
    pub path: PathBuf,
    /// The fault injected into this operation, if any.
    pub fault: Option<Fault>,
    /// Whether the operation returned `Ok`.
    pub ok: bool,
}

#[derive(Debug, Clone)]
struct MemFile {
    bytes: Vec<u8>,
    mtime: SystemTime,
}

#[derive(Debug)]
struct ArmedRule {
    rule: FaultRule,
    seen: usize,
    fired: bool,
}

/// An armed schedule of [`FaultRule`]s — the rule store shared by every
/// fault-injecting substrate ([`FaultBackend`] and the object store's
/// blob service), so `.after(n)` / fire-once semantics are defined in
/// exactly one place.
#[derive(Debug, Default)]
pub(crate) struct FaultSchedule {
    rules: Mutex<Vec<ArmedRule>>,
}

impl FaultSchedule {
    pub(crate) fn inject(&self, rule: FaultRule) {
        self.rules.lock().unwrap().push(ArmedRule {
            rule,
            seen: 0,
            fired: false,
        });
    }

    pub(crate) fn clear(&self) {
        self.rules.lock().unwrap().clear();
    }

    pub(crate) fn fired(&self) -> usize {
        self.rules
            .lock()
            .unwrap()
            .iter()
            .filter(|r| r.fired)
            .count()
    }

    /// The first due rule matching `(op, path)`, marked fired. Every
    /// matching unfired rule's skip count advances — `.after(n)` counts
    /// matching *operations*, not operations left over by earlier rules.
    pub(crate) fn check(&self, op: FaultOp, path: &Path) -> Option<Fault> {
        let path_str = path.to_string_lossy();
        let mut rules = self.rules.lock().unwrap();
        let mut hit = None;
        for armed in rules.iter_mut() {
            if armed.fired || armed.rule.op != op || !path_str.contains(&armed.rule.path_contains) {
                continue;
            }
            let due = armed.seen >= armed.rule.skip;
            armed.seen += 1;
            if hit.is_none() && due {
                armed.fired = true;
                hit = Some(armed.rule.fault);
            }
        }
        hit
    }
}

/// In-memory [`StoreBackend`] with deterministic fault injection.
///
/// Files live in a `BTreeMap` guarded by one mutex, so the
/// exactly-one-winner obligations hold trivially; mtimes are real
/// [`SystemTime`]s that tests doctor directly ([`FaultBackend::age`])
/// instead of sleeping, which is what makes the crash matrix run in
/// milliseconds. Faults are scheduled as [`FaultRule`]s — each fires
/// exactly once on the first matching operation past its `skip` count —
/// and every mutating/reading operation is journaled for assertions.
#[derive(Debug, Default)]
pub struct FaultBackend {
    files: Mutex<BTreeMap<PathBuf, MemFile>>,
    rules: FaultSchedule,
    journal: Mutex<Vec<JournalEntry>>,
    seq: AtomicU64,
    /// Remaining operations in an open [`Fault::Unavailable`] window.
    unavailable: AtomicU64,
    /// Virtual microseconds parked in [`StoreBackend::backoff_wait`] or
    /// charged by latency faults — the timing-free stand-in for sleeping.
    waited: AtomicU64,
}

impl FaultBackend {
    /// A fault-free in-memory backend.
    pub fn new() -> Self {
        FaultBackend::default()
    }

    /// A backend with `rules` pre-scheduled.
    pub fn with_rules(rules: impl IntoIterator<Item = FaultRule>) -> Self {
        let b = FaultBackend::new();
        for r in rules {
            b.inject(r);
        }
        b
    }

    /// Schedule one more fault rule.
    pub fn inject(&self, rule: FaultRule) {
        self.rules.inject(rule);
    }

    /// Drop all scheduled (fired or not) rules and close any open
    /// unavailability window.
    pub fn clear_rules(&self) {
        self.rules.clear();
        self.unavailable.store(0, Ordering::Relaxed);
    }

    /// How many scheduled rules have fired.
    pub fn faults_fired(&self) -> usize {
        self.rules.fired()
    }

    /// Total virtual time parked in backoff waits or charged by
    /// latency/slow-read faults — what a wall clock would have measured
    /// had the backend really slept.
    pub fn virtual_waited(&self) -> Duration {
        Duration::from_micros(self.waited.load(Ordering::Relaxed))
    }

    /// The operation journal so far.
    pub fn journal(&self) -> Vec<JournalEntry> {
        self.journal.lock().unwrap().clone()
    }

    /// Every path currently stored, in sorted order.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.files.lock().unwrap().keys().cloned().collect()
    }

    /// Raw bytes at `path`, bypassing faults and the journal.
    pub fn read_raw(&self, path: &Path) -> Option<Vec<u8>> {
        self.files
            .lock()
            .unwrap()
            .get(path)
            .map(|f| f.bytes.clone())
    }

    /// Insert `bytes` at `path` directly (mtime now), bypassing faults
    /// and the journal — for constructing post-crash states in tests.
    pub fn insert_raw(&self, path: &Path, bytes: &[u8]) {
        self.files.lock().unwrap().insert(
            path.to_path_buf(),
            MemFile {
                bytes: bytes.to_vec(),
                mtime: SystemTime::now(),
            },
        );
    }

    /// Set `path`'s mtime exactly; `false` when absent.
    pub fn set_mtime(&self, path: &Path, mtime: SystemTime) -> bool {
        match self.files.lock().unwrap().get_mut(path) {
            Some(f) => {
                f.mtime = mtime;
                true
            }
            None => false,
        }
    }

    /// Back-date `path`'s mtime by `by` — the no-sleep way to make a
    /// lease stale or an orphan old. `false` when absent.
    pub fn age(&self, path: &Path, by: Duration) -> bool {
        self.set_mtime(path, SystemTime::now() - by)
    }

    /// The service-level fault semantics every operation shares, ahead
    /// of the op-specific faults: an open unavailability window fails
    /// the operation outright; transient/latency faults error
    /// retryably; slow reads are charged to the virtual clock and let
    /// through. `Ok(Some(..))` is an op-specific fault (crash, torn
    /// write, visibility) the caller must stage itself.
    fn gate(&self, op: FaultOp, path: &Path) -> Result<Option<Fault>, io::Error> {
        let in_window = self
            .unavailable
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok();
        if in_window {
            return Err(self.injected(op, path, Fault::Unavailable(0), io::ErrorKind::TimedOut));
        }
        match self.rules.check(op, path) {
            Some(f @ Fault::Transient) => {
                Err(self.injected(op, path, f, io::ErrorKind::WouldBlock))
            }
            Some(f @ Fault::Latency(ms)) => {
                self.waited
                    .fetch_add(ms.saturating_mul(1000), Ordering::Relaxed);
                Err(self.injected(op, path, f, io::ErrorKind::TimedOut))
            }
            Some(f @ Fault::Unavailable(n)) => {
                self.unavailable.store(n as u64, Ordering::Relaxed);
                Err(self.injected(op, path, f, io::ErrorKind::TimedOut))
            }
            Some(Fault::SlowRead) => {
                // A nominal 25 ms of replica lag, charged not slept.
                self.waited.fetch_add(25_000, Ordering::Relaxed);
                self.record(op, path, Some(Fault::SlowRead), true);
                Ok(None)
            }
            other => Ok(other),
        }
    }

    fn record(&self, op: FaultOp, path: &Path, fault: Option<Fault>, ok: bool) {
        self.journal.lock().unwrap().push(JournalEntry {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            op,
            path: path.to_path_buf(),
            fault,
            ok,
        });
    }

    fn injected(&self, op: FaultOp, path: &Path, fault: Fault, kind: io::ErrorKind) -> io::Error {
        self.record(op, path, Some(fault), false);
        io::Error::new(
            kind,
            format!("injected fault: {} on {}", fault.tag(), op.tag()),
        )
    }
}

impl StoreBackend for FaultBackend {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn ensure_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn publish(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let op = FaultOp::Publish;
        match self.gate(op, path)? {
            Some(f @ (Fault::CrashBeforeRename | Fault::TornWrite(_))) => {
                // The staged temp sibling survives the crash; the final
                // path is untouched (publish stays atomic even when the
                // writer dies).
                let staged = match f {
                    Fault::TornWrite(n) => &bytes[..n.min(bytes.len())],
                    _ => bytes,
                };
                let tmp =
                    path.with_file_name(format!(".tmp-crash-{}", self.seq.load(Ordering::Relaxed)));
                self.insert_raw(&tmp, staged);
                return Err(self.injected(op, path, f, io::ErrorKind::Other));
            }
            Some(f) => return Err(self.injected(op, path, f, io::ErrorKind::Other)),
            None => {}
        }
        self.insert_raw(path, bytes);
        self.record(op, path, None, true);
        Ok(())
    }

    fn claim(&self, path: &Path, content: &[u8]) -> io::Result<()> {
        let op = FaultOp::Claim;
        let fault = self.gate(op, path)?;
        let mut files = self.files.lock().unwrap();
        if files.contains_key(path) {
            drop(files);
            self.record(op, path, None, false);
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("lease exists: {}", path.display()),
            ));
        }
        if let Some(Fault::TornWrite(n)) = fault {
            // The claimant won the create but died mid-write: the file
            // exists under the claimed name with a content prefix only.
            files.insert(
                path.to_path_buf(),
                MemFile {
                    bytes: content[..n.min(content.len())].to_vec(),
                    mtime: SystemTime::now(),
                },
            );
            drop(files);
            return Err(self.injected(op, path, Fault::TornWrite(n), io::ErrorKind::Other));
        }
        if let Some(f) = fault {
            drop(files);
            return Err(self.injected(op, path, f, io::ErrorKind::Other));
        }
        files.insert(
            path.to_path_buf(),
            MemFile {
                bytes: content.to_vec(),
                mtime: SystemTime::now(),
            },
        );
        drop(files);
        self.record(op, path, None, true);
        Ok(())
    }

    fn entomb(&self, path: &Path, tomb: &Path) -> io::Result<()> {
        let op = FaultOp::Entomb;
        let fault = self.gate(op, path)?;
        let mut files = self.files.lock().unwrap();
        let Some(file) = files.remove(path) else {
            drop(files);
            self.record(op, path, None, false);
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("entomb source missing: {}", path.display()),
            ));
        };
        files.insert(tomb.to_path_buf(), file);
        drop(files);
        if let Some(f @ Fault::CrashAfterEntomb) = fault {
            // The rename is applied — the challenger died before it
            // could read the tomb and re-create the lease.
            return Err(self.injected(op, path, f, io::ErrorKind::Other));
        }
        if let Some(f) = fault {
            return Err(self.injected(op, path, f, io::ErrorKind::Other));
        }
        self.record(op, path, None, true);
        Ok(())
    }

    fn load(&self, path: &Path) -> io::Result<Vec<u8>> {
        let op = FaultOp::Load;
        match self.gate(op, path)? {
            Some(f @ Fault::Invisible) => {
                return Err(self.injected(op, path, f, io::ErrorKind::NotFound))
            }
            Some(Fault::TornRead(n)) => {
                let files = self.files.lock().unwrap();
                let Some(file) = files.get(path) else {
                    drop(files);
                    self.record(op, path, Some(Fault::TornRead(n)), false);
                    return Err(io::Error::new(io::ErrorKind::NotFound, "no such file"));
                };
                let torn = file.bytes[..n.min(file.bytes.len())].to_vec();
                drop(files);
                self.record(op, path, Some(Fault::TornRead(n)), true);
                return Ok(torn);
            }
            Some(f) => return Err(self.injected(op, path, f, io::ErrorKind::Other)),
            None => {}
        }
        let files = self.files.lock().unwrap();
        match files.get(path) {
            Some(file) => {
                let bytes = file.bytes.clone();
                drop(files);
                self.record(op, path, None, true);
                Ok(bytes)
            }
            None => {
                drop(files);
                self.record(op, path, None, false);
                Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file: {}", path.display()),
                ))
            }
        }
    }

    fn contains(&self, path: &Path) -> bool {
        self.files.lock().unwrap().contains_key(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let op = FaultOp::Remove;
        let _ = self.gate(op, path)?;
        let removed = self.files.lock().unwrap().remove(path).is_some();
        self.record(op, path, None, removed);
        if removed {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            ))
        }
    }

    fn refresh(&self, path: &Path) -> io::Result<()> {
        let op = FaultOp::Refresh;
        let _ = self.gate(op, path)?;
        let refreshed = self.set_mtime(path, SystemTime::now());
        self.record(op, path, None, refreshed);
        if refreshed {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            ))
        }
    }

    fn mtime(&self, path: &Path) -> io::Result<SystemTime> {
        self.files
            .lock()
            .unwrap()
            .get(path)
            .map(|f| f.mtime)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn list(&self, dir: &Path, recursive: bool) -> io::Result<Vec<FileMeta>> {
        let files = self.files.lock().unwrap();
        Ok(files
            .iter()
            .filter(|(p, _)| {
                if recursive {
                    p.starts_with(dir) && p.as_path() != dir
                } else {
                    p.parent() == Some(dir)
                }
            })
            .map(|(p, f)| FileMeta {
                path: p.clone(),
                len: f.bytes.len() as u64,
                mtime: f.mtime,
            })
            .collect())
    }

    fn backoff_wait(&self, pause: Duration) {
        // Nothing real to wait for: charge the virtual clock so retry
        // schedules stay observable without costing wall-clock.
        self.waited
            .fetch_add(pause.as_micros() as u64, Ordering::Relaxed);
    }
}

/// A deterministic pseudo-random schedule of *recoverable* faults
/// (transient errors, delayed visibility, torn reads) for soak testing:
/// the same `seed` always yields the same schedule, so a failing soak
/// iteration reproduces exactly from its printed seed. Crash faults are
/// deliberately excluded — an injected crash aborts the injected-into
/// shard's operation but not its process, which is a different scenario
/// than the crash matrix constructs; recoverable faults must never
/// change a campaign's report, only its wall-clock.
pub fn recoverable_schedule(seed: u64, rules: usize) -> Vec<FaultRule> {
    // xorshift must not start at 0; xor with an odd constant keeps
    // adjacent seeds distinct (a plain `| 1` would alias 2k with 2k+1).
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    if state == 0 {
        state = 0x2545_F491_4F6C_DD1D;
    }
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..rules)
        .map(|_| {
            let op = match next() % 4 {
                0 => FaultOp::Load,
                1 => FaultOp::Publish,
                2 => FaultOp::Claim,
                _ => FaultOp::Refresh,
            };
            let fault = match (next() % 6, op) {
                // Visibility, torn and slow reads only make sense on loads.
                (0, FaultOp::Load) => Fault::Invisible,
                (1, FaultOp::Load) => Fault::TornRead((next() % 24) as usize),
                (2, FaultOp::Load) => Fault::SlowRead,
                // Short windows only: the retry budget (4 attempts by
                // default) must be able to outlast an injected outage,
                // or the soak would assert on a legitimate degradation.
                (3, _) => Fault::Unavailable(1 + (next() % 2) as usize),
                (4, _) => Fault::Latency(1 + next() % 40),
                _ => Fault::Transient,
            };
            let path_contains = match next() % 3 {
                0 => ".lease",
                1 => ".bin",
                _ => "",
            };
            FaultRule::on(op, path_contains, fault).after((next() % 6) as usize)
        })
        .collect()
}

/// The process-global registry behind the `memory` value of
/// [`STORE_BACKEND_ENV`]: every store root maps to one shared
/// [`FaultBackend`] (no faults scheduled), so the N shard handles a test
/// opens on one directory cooperate exactly as N `LocalDirBackend`
/// handles would on a real directory.
pub fn memory_backend_for(root: &Path) -> Arc<FaultBackend> {
    static ROOTS: OnceLock<Mutex<BTreeMap<PathBuf, Arc<FaultBackend>>>> = OnceLock::new();
    ROOTS
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap()
        .entry(root.to_path_buf())
        .or_default()
        .clone()
}

/// The backend selected by [`STORE_BACKEND_ENV`] for a store rooted at
/// `root`: `local`/unset → [`LocalDirBackend`], `memory` → the shared
/// [`memory_backend_for`] registry entry, `object` → the shared
/// [`crate::object_backend_for`] registry entry. Malformed values warn
/// (via [`crate::env`]) and fall back to `local`.
pub fn backend_from_env(root: &Path) -> Arc<dyn StoreBackend> {
    match crate::env::knob_validated::<String>(
        STORE_BACKEND_ENV,
        "\"local\", \"memory\" or \"object\"",
        |v| matches!(v.as_str(), "local" | "memory" | "object"),
    )
    .as_deref()
    {
        Some("memory") => memory_backend_for(root),
        Some("object") => crate::object::object_backend_for(root),
        _ => Arc::new(LocalDirBackend::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gnnunlock-backend-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Every shipped backend under the same contract exercises.
    fn backends(tag: &str) -> Vec<(Arc<dyn StoreBackend>, PathBuf)> {
        let local_root = tmp_dir(tag);
        vec![
            (
                Arc::new(LocalDirBackend::new()) as Arc<dyn StoreBackend>,
                local_root,
            ),
            (
                Arc::new(FaultBackend::new()) as Arc<dyn StoreBackend>,
                PathBuf::from("/virtual/backend-test"),
            ),
            (
                Arc::new(crate::object::ObjectStoreBackend::new()) as Arc<dyn StoreBackend>,
                PathBuf::from("/bucket/backend-test"),
            ),
        ]
    }

    #[test]
    fn publish_is_atomic_last_writer_wins() {
        for (backend, root) in backends("publish") {
            let path = root.join("objects/a/entry.bin");
            backend.publish(&path, b"first").unwrap();
            assert_eq!(backend.load(&path).unwrap(), b"first");
            backend.publish(&path, b"second, longer").unwrap();
            assert_eq!(backend.load(&path).unwrap(), b"second, longer");
            assert!(backend.contains(&path));
            // No staging debris after successful publishes.
            let leftovers: Vec<_> = backend
                .list(path.parent().unwrap(), false)
                .unwrap()
                .into_iter()
                .filter(|m| m.path != path)
                .collect();
            assert!(leftovers.is_empty(), "{}: {leftovers:?}", backend.name());
            let _ = fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn claim_has_exactly_one_winner_under_contention() {
        for (backend, root) in backends("claim") {
            let path = root.join("objects/a/entry.lease");
            let backend = &backend;
            let winners: usize = std::thread::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|i| {
                        let path = path.clone();
                        s.spawn(move || {
                            match backend.claim(&path, format!("owner={i}\n").as_bytes()) {
                                Ok(()) => 1usize,
                                Err(e) => {
                                    assert_eq!(
                                        e.kind(),
                                        io::ErrorKind::AlreadyExists,
                                        "loser must see AlreadyExists, got {e:?}"
                                    );
                                    0
                                }
                            }
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(winners, 1, "{}: exactly one claimant wins", backend.name());
            // The winner's content is complete (never torn).
            let content = backend.load(&path).unwrap();
            assert!(content.starts_with(b"owner=") && content.ends_with(b"\n"));
            let _ = fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn entomb_has_exactly_one_winner_and_preserves_content() {
        for (backend, root) in backends("entomb") {
            let path = root.join("objects/a/entry.lease");
            backend.claim(&path, b"victim content\n").unwrap();
            let backend = &backend;
            let winners: usize = std::thread::scope(|s| {
                let handles: Vec<_> = (0..6)
                    .map(|i| {
                        let path = path.clone();
                        let tomb = path.with_file_name(format!("entry.lease.tomb-{i}"));
                        s.spawn(move || match backend.entomb(&path, &tomb) {
                            Ok(()) => {
                                assert_eq!(backend.load(&tomb).unwrap(), b"victim content\n");
                                1usize
                            }
                            Err(_) => 0,
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(winners, 1, "{}: exactly one entomber wins", backend.name());
            assert!(!backend.contains(&path), "source gone after entomb");
            let _ = fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn refresh_and_mtime_round_trip() {
        for (backend, root) in backends("refresh") {
            let path = root.join("x.lease");
            backend.claim(&path, b"c").unwrap();
            let before = backend.mtime(&path).unwrap();
            std::thread::sleep(Duration::from_millis(15));
            backend.refresh(&path).unwrap();
            let after = backend.mtime(&path).unwrap();
            assert!(
                after > before,
                "{}: refresh must advance mtime",
                backend.name()
            );
            assert!(backend.refresh(&root.join("missing")).is_err());
            let _ = fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn list_is_scoped_and_recursive_when_asked() {
        for (backend, root) in backends("list") {
            backend
                .publish(&root.join("objects/k/aa/1.bin"), b"one")
                .unwrap();
            backend
                .publish(&root.join("objects/k/aa/2.bin"), b"two")
                .unwrap();
            backend
                .publish(&root.join("objects/k/bb/3.bin"), b"three")
                .unwrap();
            backend.publish(&root.join("outside.bin"), b"x").unwrap();
            let all = backend.list(&root.join("objects"), true).unwrap();
            assert_eq!(all.len(), 3, "{}", backend.name());
            let direct = backend.list(&root.join("objects/k/aa"), false).unwrap();
            assert_eq!(direct.len(), 2);
            assert!(direct.iter().all(|m| m.len > 0));
            let missing = backend.list(&root.join("nope"), true).unwrap();
            assert!(missing.is_empty());
            let _ = fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn fault_rules_fire_once_in_schedule_order() {
        let b = FaultBackend::with_rules([
            FaultRule::on(FaultOp::Load, ".bin", Fault::Transient),
            FaultRule::on(FaultOp::Load, ".bin", Fault::Invisible).after(1),
        ]);
        let path = Path::new("/v/x.bin");
        b.publish(path, b"payload").unwrap();
        // 1st load: transient. 2nd: the second rule has skipped one
        // match, so it fires invisible. 3rd: clean.
        assert_eq!(b.load(path).unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(b.load(path).unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(b.load(path).unwrap(), b"payload");
        assert_eq!(b.faults_fired(), 2);
        let journal = b.journal();
        assert_eq!(journal.len(), 4); // publish + 3 loads
        assert_eq!(journal[1].fault, Some(Fault::Transient));
        assert_eq!(journal[2].fault, Some(Fault::Invisible));
        assert!(journal[3].ok && journal[3].fault.is_none());
    }

    #[test]
    fn crash_before_rename_leaves_an_orphan_tmp_not_a_torn_entry() {
        let b = FaultBackend::with_rules([FaultRule::on(
            FaultOp::Publish,
            "entry.bin",
            Fault::CrashBeforeRename,
        )]);
        let path = Path::new("/v/objects/entry.bin");
        assert!(b.publish(path, b"payload").is_err());
        assert!(!b.contains(path), "final path untouched by the crash");
        let orphans: Vec<_> = b
            .paths()
            .into_iter()
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(".tmp-"))
            })
            .collect();
        assert_eq!(orphans.len(), 1, "crash leaves exactly the staged temp");
        // Retried publish (no fault left) succeeds.
        b.publish(path, b"payload").unwrap();
        assert_eq!(b.load(path).unwrap(), b"payload");
    }

    #[test]
    fn torn_claim_leaves_a_partial_lease_file() {
        let b = FaultBackend::with_rules([FaultRule::on(
            FaultOp::Claim,
            ".lease",
            Fault::TornWrite(7),
        )]);
        let path = Path::new("/v/objects/x.lease");
        assert!(b.claim(path, b"gnnunlock-lease owner=a gen=0\n").is_err());
        assert_eq!(b.read_raw(path).unwrap(), b"gnnunlo");
        // The torn file *exists*: a later claimant must see AlreadyExists.
        let err = b.claim(path, b"other\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn crash_after_entomb_applies_the_rename_then_errors() {
        let b = FaultBackend::with_rules([FaultRule::on(
            FaultOp::Entomb,
            ".lease",
            Fault::CrashAfterEntomb,
        )]);
        let path = Path::new("/v/objects/x.lease");
        let tomb = Path::new("/v/objects/x.lease.tomb-1-0");
        b.claim(path, b"victim\n").unwrap();
        assert!(b.entomb(path, tomb).is_err());
        assert!(!b.contains(path), "lease gone: the rename was applied");
        assert_eq!(b.read_raw(tomb).unwrap(), b"victim\n");
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_recoverable_only() {
        let a = recoverable_schedule(42, 8);
        let b = recoverable_schedule(42, 8);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.op, y.op);
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.path_contains, y.path_contains);
            assert_eq!(x.skip, y.skip);
        }
        let c = recoverable_schedule(43, 8);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.op != y.op || x.fault != y.fault || x.skip != y.skip),
            "different seeds must differ"
        );
        for r in a.iter().chain(&c) {
            assert!(
                r.fault.recoverable(),
                "soak schedules must stay recoverable: {:?}",
                r.fault
            );
            if let Fault::Unavailable(n) = r.fault {
                assert!(
                    n <= 2,
                    "soak outage windows must stay inside the default retry budget"
                );
            }
        }
    }

    #[test]
    fn latency_fault_errs_timed_out_and_charges_the_virtual_clock() {
        let b = FaultBackend::with_rules([FaultRule::on(FaultOp::Load, ".bin", Fault::Latency(7))]);
        let path = Path::new("/v/x.bin");
        b.publish(path, b"payload").unwrap();
        let err = b.load(path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(b.virtual_waited(), Duration::from_millis(7));
        // The retry succeeds and a backoff wait is charged, not slept.
        b.backoff_wait(Duration::from_millis(13));
        assert_eq!(b.load(path).unwrap(), b"payload");
        assert_eq!(b.virtual_waited(), Duration::from_millis(20));
    }

    #[test]
    fn unavailable_fault_opens_a_window_over_every_operation() {
        let b = FaultBackend::with_rules([FaultRule::on(FaultOp::Load, "", Fault::Unavailable(2))]);
        let path = Path::new("/v/x.bin");
        b.publish(path, b"payload").unwrap();
        // The matched load fails and opens a 2-op window: the next two
        // operations — whatever their kind or path — fail too.
        assert_eq!(b.load(path).unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(
            b.publish(Path::new("/v/y.bin"), b"z").unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        assert_eq!(b.refresh(path).unwrap_err().kind(), io::ErrorKind::TimedOut);
        // Window exhausted: service back.
        assert_eq!(b.load(path).unwrap(), b"payload");
        // clear_rules also closes a half-consumed window.
        b.inject(FaultRule::on(FaultOp::Load, "", Fault::Unavailable(9)));
        assert!(b.load(path).is_err());
        b.clear_rules();
        assert_eq!(b.load(path).unwrap(), b"payload");
    }

    #[test]
    fn slow_read_succeeds_with_full_bytes_but_is_charged() {
        let b = FaultBackend::with_rules([FaultRule::on(FaultOp::Load, ".bin", Fault::SlowRead)]);
        let path = Path::new("/v/x.bin");
        b.publish(path, b"payload").unwrap();
        assert_eq!(b.load(path).unwrap(), b"payload");
        assert!(b.virtual_waited() > Duration::ZERO);
        assert_eq!(b.faults_fired(), 1);
    }

    #[test]
    fn memory_registry_shares_one_backend_per_root() {
        let a = memory_backend_for(Path::new("/reg/alpha"));
        let b = memory_backend_for(Path::new("/reg/alpha"));
        let c = memory_backend_for(Path::new("/reg/beta"));
        a.publish(Path::new("/reg/alpha/x.bin"), b"shared").unwrap();
        assert_eq!(b.load(Path::new("/reg/alpha/x.bin")).unwrap(), b"shared");
        assert!(!c.contains(Path::new("/reg/alpha/x.bin")));
    }
}
