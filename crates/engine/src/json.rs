//! A tiny JSON value type with deterministic serialization and a full
//! parser.
//!
//! The engine keeps serde out of its dependency tree, so reports and
//! event logs are built on this module instead: objects preserve
//! insertion order (deterministic byte-for-byte output), strings are
//! fully escaped, and [`Json::parse`] round-trips everything the
//! renderers emit — which is what lets a crashed campaign's JSONL event
//! log be replayed on resume.

use std::fmt::Write as _;

/// A JSON value with deterministic (insertion-ordered) objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (rendered via shortest-roundtrip `{}`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The value under `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serialize on a single line with no whitespace (JSONL records).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// `indent: None` renders compact; `Some(depth)` pretty-prints.
    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(d) = indent {
                        newline_indent(out, d + 1);
                    }
                    item.write(out, indent.map(|d| d + 1));
                }
                if let Some(d) = indent {
                    newline_indent(out, d);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(d) = indent {
                        newline_indent(out, d + 1);
                    }
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                if let Some(d) = indent {
                    newline_indent(out, d);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the full grammar both renderers emit,
    /// including `\uXXXX` escapes and surrogate pairs).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low surrogate
                                // must follow — validate it, or a
                                // malformed pair overflows the addition.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (validity is guaranteed
                    // by the &str input).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shapes() {
        let doc = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd\u{1}".into())),
            ("n", Json::Num(3.0)),
            ("x", Json::Num(0.5)),
            ("b", Json::Bool(true)),
            ("v", Json::Arr(vec![Json::Null])),
            ("e", Json::Obj(vec![])),
        ]);
        let s = doc.render();
        assert!(s.contains(r#""a\"b\\c\nd\u0001""#));
        assert!(s.contains("\"n\": 3"));
        assert!(s.contains("\"x\": 0.5"));
        assert!(s.contains("\"e\": {}"));
    }

    #[test]
    fn parse_round_trips_both_renderers() {
        let doc = Json::obj(vec![
            ("nested", Json::Arr(vec![Json::Num(-2.5), Json::Num(1e-3)])),
            ("text", Json::Str("tabs\tand \"quotes\" and π\u{2}".into())),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            ("obj", Json::obj(vec![("k", Json::Num(7.0))])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
        // Compact output is a single line.
        assert!(!doc.render_compact().contains('\n'));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        // A high surrogate not followed by a low surrogate is rejected
        // (not wrapped into an overflowing code point).
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(Json::parse("\"\\ud83dxx\"").is_err());
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::obj(vec![("a", Json::Num(1.0)), ("b", Json::Str("x".into()))]);
        assert_eq!(doc.get("a").and_then(Json::as_num), Some(1.0));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert!(doc.get("c").is_none());
    }
}
