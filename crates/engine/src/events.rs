//! Streaming JSONL event logs for long campaigns.
//!
//! Long campaigns used to be silent until the final report; the
//! [`EventLog`] streams one JSON record per line as jobs start, finish,
//! cache-hit or fail, flushed per event so `tail -f` (and a post-crash
//! reader) always sees a consistent prefix. The same log is what
//! [`crate::Campaign::resume`] replays to know how far a crashed run
//! got.
//!
//! Schema (one object per line, `ev` discriminates — see
//! `tests/golden/events.jsonl` for the pinned golden examples):
//!
//! ```text
//! {"ev":"run-started","campaign":..,"jobs":N,"shape":"<hex>","resumed":bool}
//! {"ev":"job-started","id":N,"label":..}
//! {"ev":"cache-hit","id":N,"label":..,"source":"memory"|"disk"}
//! {"ev":"job-claimed","id":N,"label":..,"owner":..,"generation":N,"takeover":bool}
//! {"ev":"job-elided","id":N,"label":..}
//! {"ev":"job-finished","id":N,"label":..,"status":"ok"|"failed"|"skipped"|"cancelled","ms":F}
//! {"ev":"stage-error","id":N,"label":..,"error":..}
//! {"ev":"stage-summary","kind":..,"total":N,"executed":N,"memory_hits":N,"disk_hits":N,"failed":N,"skipped":N,"cancelled":N,"ms":F,"over_budget":bool}
//! {"ev":"run-finished","succeeded":N,"failed":N,"skipped":N,"cancelled":N}
//! ```
//!
//! `job-claimed` and `job-elided` appear only in *sharded* runs
//! (`Campaign::execute_sharded`): a claim marks this shard acquiring
//! the job's lease immediately before executing its body — so across
//! the merged per-shard logs, "claims whose run also finished the job
//! `ok`" counts true completed executions — and an elision marks a job
//! skipped by probe-ahead scheduling (every dependent's cache entry
//! already exists, so nobody needs its output).
//!
//! `stage-error` accompanies every `job-finished` with status `failed`,
//! carrying the job id and the failure text — including the payload of a
//! panicking job body, so a crash inside one stage is visible in the
//! stream, not only in the final report. Timestamps/durations (`ms`) are
//! wall-clock and therefore volatile; everything else is deterministic
//! content.

use crate::json::Json;
use std::fs;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

/// Environment variable naming the event-log path for the bench
/// binaries.
pub const EVENTS_ENV: &str = "GNNUNLOCK_EVENTS";

/// File name of the event log inside a campaign cache directory.
pub const EVENTS_FILE: &str = "events.jsonl";

/// One record of a campaign event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A run began (`resumed` when continuing an interrupted campaign).
    RunStarted {
        /// Campaign name.
        campaign: String,
        /// Number of planned jobs.
        jobs: usize,
        /// Campaign shape fingerprint (hex) — resume validates it.
        shape: u64,
        /// Whether this run resumes an earlier log.
        resumed: bool,
    },
    /// A job body is about to execute.
    JobStarted {
        /// Job id (graph index).
        id: usize,
        /// Job label.
        label: String,
    },
    /// A job was served from the result cache without executing.
    CacheHit {
        /// Job id.
        id: usize,
        /// Job label.
        label: String,
        /// `"memory"` or `"disk"`.
        source: String,
    },
    /// A shard acquired the lease on a job and is about to execute it
    /// (sharded runs only). One completed successful execution of a job
    /// leaves exactly one log run containing both its `job-claimed` and
    /// a `job-finished` of status `ok` for it.
    JobClaimed {
        /// Job id (graph index).
        id: usize,
        /// Job label.
        label: String,
        /// The claiming shard's owner string.
        owner: String,
        /// The lease's ownership epoch (0 = fresh claim).
        generation: u64,
        /// Whether the claim took over a stale lease from a dead shard.
        takeover: bool,
    },
    /// A job's execution was elided by probe-ahead scheduling: its own
    /// entry is absent but every dependent's cache entry already
    /// exists, so no one needs its output (sharded runs only).
    JobElided {
        /// Job id.
        id: usize,
        /// Job label.
        label: String,
    },
    /// A job reached a terminal status.
    JobFinished {
        /// Job id.
        id: usize,
        /// Job label.
        label: String,
        /// Status tag (`ok` / `failed` / `skipped` / `cancelled`).
        status: String,
        /// Wall-clock execution milliseconds (volatile).
        ms: f64,
    },
    /// A job failed; carries the error (or panic) text.
    StageError {
        /// Job id.
        id: usize,
        /// Job label.
        label: String,
        /// Failure text.
        error: String,
    },
    /// Per-stage aggregate emitted as a run drains (one record per stage
    /// kind present in the graph, before `run-finished`). The counts
    /// partition the stage's jobs: `total = executed + memory_hits +
    /// disk_hits + failed + skipped + cancelled`.
    StageSummary {
        /// Stage kind tag (`parse`, `train-epoch`, …).
        kind: String,
        /// Jobs of this stage.
        total: usize,
        /// Jobs whose bodies ran.
        executed: usize,
        /// Jobs served from the memory cache tier.
        memory_hits: usize,
        /// Jobs served from the disk cache tier.
        disk_hits: usize,
        /// Jobs that failed.
        failed: usize,
        /// Jobs skipped because a dependency did not succeed.
        skipped: usize,
        /// Jobs cancelled before they could run.
        cancelled: usize,
        /// Summed execution milliseconds (volatile).
        ms: f64,
        /// Whether `ms` exceeded the run's `GNNUNLOCK_STAGE_BUDGET_MS`
        /// (observability only; volatile like `ms`).
        over_budget: bool,
    },
    /// The run drained; terminal counters.
    RunFinished {
        /// Jobs that succeeded (executed or cache-served).
        succeeded: usize,
        /// Jobs that failed.
        failed: usize,
        /// Jobs skipped due to failed dependencies.
        skipped: usize,
        /// Jobs cancelled.
        cancelled: usize,
    },
}

impl Event {
    /// The JSON document of this event.
    pub fn to_json(&self) -> Json {
        let num = |n: usize| Json::Num(n as f64);
        match self {
            Event::RunStarted {
                campaign,
                jobs,
                shape,
                resumed,
            } => Json::obj(vec![
                ("ev", Json::Str("run-started".into())),
                ("campaign", Json::Str(campaign.clone())),
                ("jobs", num(*jobs)),
                ("shape", Json::Str(format!("{shape:016x}"))),
                ("resumed", Json::Bool(*resumed)),
            ]),
            Event::JobStarted { id, label } => Json::obj(vec![
                ("ev", Json::Str("job-started".into())),
                ("id", num(*id)),
                ("label", Json::Str(label.clone())),
            ]),
            Event::CacheHit { id, label, source } => Json::obj(vec![
                ("ev", Json::Str("cache-hit".into())),
                ("id", num(*id)),
                ("label", Json::Str(label.clone())),
                ("source", Json::Str(source.clone())),
            ]),
            Event::JobClaimed {
                id,
                label,
                owner,
                generation,
                takeover,
            } => Json::obj(vec![
                ("ev", Json::Str("job-claimed".into())),
                ("id", num(*id)),
                ("label", Json::Str(label.clone())),
                ("owner", Json::Str(owner.clone())),
                ("generation", Json::Num(*generation as f64)),
                ("takeover", Json::Bool(*takeover)),
            ]),
            Event::JobElided { id, label } => Json::obj(vec![
                ("ev", Json::Str("job-elided".into())),
                ("id", num(*id)),
                ("label", Json::Str(label.clone())),
            ]),
            Event::JobFinished {
                id,
                label,
                status,
                ms,
            } => Json::obj(vec![
                ("ev", Json::Str("job-finished".into())),
                ("id", num(*id)),
                ("label", Json::Str(label.clone())),
                ("status", Json::Str(status.clone())),
                ("ms", Json::Num(*ms)),
            ]),
            Event::StageError { id, label, error } => Json::obj(vec![
                ("ev", Json::Str("stage-error".into())),
                ("id", num(*id)),
                ("label", Json::Str(label.clone())),
                ("error", Json::Str(error.clone())),
            ]),
            Event::StageSummary {
                kind,
                total,
                executed,
                memory_hits,
                disk_hits,
                failed,
                skipped,
                cancelled,
                ms,
                over_budget,
            } => Json::obj(vec![
                ("ev", Json::Str("stage-summary".into())),
                ("kind", Json::Str(kind.clone())),
                ("total", num(*total)),
                ("executed", num(*executed)),
                ("memory_hits", num(*memory_hits)),
                ("disk_hits", num(*disk_hits)),
                ("failed", num(*failed)),
                ("skipped", num(*skipped)),
                ("cancelled", num(*cancelled)),
                ("ms", Json::Num(*ms)),
                ("over_budget", Json::Bool(*over_budget)),
            ]),
            Event::RunFinished {
                succeeded,
                failed,
                skipped,
                cancelled,
            } => Json::obj(vec![
                ("ev", Json::Str("run-finished".into())),
                ("succeeded", num(*succeeded)),
                ("failed", num(*failed)),
                ("skipped", num(*skipped)),
                ("cancelled", num(*cancelled)),
            ]),
        }
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().render_compact()
    }

    /// Parse one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not valid JSON or not a known
    /// event shape.
    pub fn parse(line: &str) -> Result<Event, String> {
        let doc = Json::parse(line)?;
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{k}'"))
        };
        let num_field = |k: &str| -> Result<usize, String> {
            doc.get(k)
                .and_then(Json::as_num)
                .map(|x| x as usize)
                .ok_or_else(|| format!("missing numeric field '{k}'"))
        };
        let ev = str_field("ev")?;
        match ev.as_str() {
            "run-started" => Ok(Event::RunStarted {
                campaign: str_field("campaign")?,
                jobs: num_field("jobs")?,
                shape: u64::from_str_radix(&str_field("shape")?, 16)
                    .map_err(|_| "bad shape hex".to_string())?,
                resumed: matches!(doc.get("resumed"), Some(Json::Bool(true))),
            }),
            "job-started" => Ok(Event::JobStarted {
                id: num_field("id")?,
                label: str_field("label")?,
            }),
            "cache-hit" => Ok(Event::CacheHit {
                id: num_field("id")?,
                label: str_field("label")?,
                source: str_field("source")?,
            }),
            "job-claimed" => Ok(Event::JobClaimed {
                id: num_field("id")?,
                label: str_field("label")?,
                owner: str_field("owner")?,
                generation: num_field("generation")? as u64,
                takeover: matches!(doc.get("takeover"), Some(Json::Bool(true))),
            }),
            "job-elided" => Ok(Event::JobElided {
                id: num_field("id")?,
                label: str_field("label")?,
            }),
            "job-finished" => Ok(Event::JobFinished {
                id: num_field("id")?,
                label: str_field("label")?,
                status: str_field("status")?,
                ms: doc
                    .get("ms")
                    .and_then(Json::as_num)
                    .ok_or("missing field 'ms'")?,
            }),
            "stage-error" => Ok(Event::StageError {
                id: num_field("id")?,
                label: str_field("label")?,
                error: str_field("error")?,
            }),
            "stage-summary" => Ok(Event::StageSummary {
                kind: str_field("kind")?,
                total: num_field("total")?,
                executed: num_field("executed")?,
                memory_hits: num_field("memory_hits")?,
                disk_hits: num_field("disk_hits")?,
                failed: num_field("failed")?,
                skipped: num_field("skipped")?,
                cancelled: num_field("cancelled")?,
                ms: doc
                    .get("ms")
                    .and_then(Json::as_num)
                    .ok_or("missing field 'ms'")?,
                // Absent in pre-budget logs: default false so old event
                // streams replay unchanged.
                over_budget: matches!(doc.get("over_budget"), Some(Json::Bool(true))),
            }),
            "run-finished" => Ok(Event::RunFinished {
                succeeded: num_field("succeeded")?,
                failed: num_field("failed")?,
                skipped: num_field("skipped")?,
                cancelled: num_field("cancelled")?,
            }),
            other => Err(format!("unknown event '{other}'")),
        }
    }
}

/// What an event-log replay recovered.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Every event that parsed, in file order.
    pub events: Vec<Event>,
    /// Whether the file ended in an unparsable line — the signature of a
    /// writer killed mid-record. The consistent prefix is still usable.
    pub truncated: bool,
}

impl Replay {
    /// Ids of jobs that reached success in this log (executed `ok` or
    /// cache-served) — the set a resumed run may skip.
    pub fn completed_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Event::JobFinished { id, status, .. } if status == "ok" => Some(*id),
                Event::CacheHit { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The shape fingerprint of the last `run-started` record, if any.
    pub fn last_shape(&self) -> Option<u64> {
        self.events.iter().rev().find_map(|e| match e {
            Event::RunStarted { shape, .. } => Some(*shape),
            _ => None,
        })
    }
}

/// A chunk of complete lines read off a growing JSONL log by
/// [`EventLog::tail_from`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogTail {
    /// The complete (newline-terminated) lines read since the polled
    /// offset, without their newlines, in file order. A torn final
    /// line — a writer caught mid-record — is never included.
    pub lines: Vec<String>,
    /// The offset to poll from next: one byte past the last newline
    /// consumed. Because the offset never advances past a torn line,
    /// the line is yielded exactly once — on the poll that first sees
    /// it complete — and never twice.
    pub offset: u64,
    /// The file shrank below the polled offset (log recreated, e.g. by
    /// [`EventLog::create`]): this tail restarted from the beginning of
    /// the new file.
    pub reset: bool,
}

/// An append-only JSONL event sink, flushed per event.
pub struct EventLog {
    writer: Mutex<BufWriter<fs::File>>,
}

impl EventLog {
    /// Create (truncating) a log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> io::Result<EventLog> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        Ok(EventLog {
            writer: Mutex::new(BufWriter::new(fs::File::create(path)?)),
        })
    }

    /// Open a log at `path` for appending (resume flows). A file whose
    /// last record was torn by a crash (no trailing newline) is
    /// repaired with a newline first, so appended records never merge
    /// into the torn line.
    ///
    /// # Errors
    ///
    /// Propagates file-open errors.
    pub fn open_append(path: &Path) -> io::Result<EventLog> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if !ends_with_newline(path).unwrap_or(true) {
            file.write_all(b"\n")?;
        }
        Ok(EventLog {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Append one event and flush it to the OS, so readers (and crash
    /// forensics) always see whole records.
    pub fn append(&self, event: &Event) {
        let mut w = self.writer.lock().unwrap();
        // Event emission is observability: an unwritable log must not
        // fail the campaign, so errors are swallowed here (the campaign
        // entry points surface creation errors, which catch the common
        // misconfigurations).
        let _ = writeln!(w, "{}", event.to_jsonl());
        let _ = w.flush();
    }

    /// Tail a log file being appended concurrently: read the complete
    /// lines between `offset` and the last newline currently on disk.
    ///
    /// The contract live subscribers need (and [`LogTail`] documents):
    /// polling in a loop with the returned offset yields every line
    /// **exactly once**, and never a torn final line — a record a
    /// concurrent [`EventLog::append`] has only partially flushed is
    /// left unconsumed until a later poll sees its newline. A missing
    /// file is an empty tail at the same offset (the writer may simply
    /// not have created the log yet); a file that shrank below `offset`
    /// (recreated log) restarts from the top with `reset` set.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn tail_from(path: &Path, offset: u64) -> io::Result<LogTail> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut file = match fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(LogTail {
                    offset,
                    ..LogTail::default()
                })
            }
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        let (start, reset) = if len < offset {
            (0, true)
        } else {
            (offset, false)
        };
        let mut tail = LogTail {
            offset: start,
            reset,
            ..LogTail::default()
        };
        if len == start {
            return Ok(tail);
        }
        file.seek(SeekFrom::Start(start))?;
        let mut bytes = Vec::with_capacity((len - start) as usize);
        file.read_to_end(&mut bytes)?;
        // Consume only up to the last newline: everything after it is a
        // torn final line still being written, and the unadvanced offset
        // re-reads it on the next poll — by then complete.
        let Some(last_newline) = bytes.iter().rposition(|&b| b == b'\n') else {
            return Ok(tail);
        };
        tail.lines = bytes[..last_newline]
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .collect();
        tail.offset = start + last_newline as u64 + 1;
        Ok(tail)
    }

    /// Replay a log file: parse every line, skipping (and flagging via
    /// `truncated = true`) any malformed record — the signature of a
    /// writer killed mid-write. Records appended after a torn line
    /// (e.g. by a resumed run) are still recovered.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a missing file is an empty replay.
    pub fn replay(path: &Path) -> io::Result<Replay> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(e),
        };
        let mut replay = Replay::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::parse(line) {
                Ok(ev) => replay.events.push(ev),
                Err(_) => replay.truncated = true,
            }
        }
        Ok(replay)
    }
}

/// Whether the file's final byte is a newline — O(1): seek to the end
/// and read one byte (event logs can be large; never slurp them here).
/// An empty file counts as newline-terminated.
fn ends_with_newline(path: &Path) -> io::Result<bool> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    let mut f = fs::File::open(path)?;
    if f.metadata()?.len() == 0 {
        return Ok(true);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] == b'\n')
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStarted {
                campaign: "demo".into(),
                jobs: 3,
                shape: 0xabcdef,
                resumed: false,
            },
            Event::JobStarted {
                id: 0,
                label: "lock/a".into(),
            },
            Event::JobFinished {
                id: 0,
                label: "lock/a".into(),
                status: "ok".into(),
                ms: 1.5,
            },
            Event::CacheHit {
                id: 1,
                label: "train/a".into(),
                source: "disk".into(),
            },
            Event::JobClaimed {
                id: 3,
                label: "dataset/a".into(),
                owner: "shard-1".into(),
                generation: 2,
                takeover: true,
            },
            Event::JobElided {
                id: 4,
                label: "lock/a".into(),
            },
            Event::StageError {
                id: 2,
                label: "attack/a".into(),
                error: "job panicked: \"boom\"".into(),
            },
            Event::JobFinished {
                id: 2,
                label: "attack/a".into(),
                status: "failed".into(),
                ms: 0.25,
            },
            Event::StageSummary {
                kind: "train-epoch".into(),
                total: 8,
                executed: 5,
                memory_hits: 1,
                disk_hits: 2,
                failed: 0,
                skipped: 0,
                cancelled: 0,
                ms: 412.5,
                over_budget: false,
            },
            Event::RunFinished {
                succeeded: 2,
                failed: 1,
                skipped: 0,
                cancelled: 0,
            },
        ]
    }

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "gnnunlock-events-test-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn serialize_parse_round_trip() {
        for ev in sample_events() {
            let line = ev.to_jsonl();
            assert!(!line.contains('\n'), "JSONL records are single lines");
            assert_eq!(Event::parse(&line).unwrap(), ev);
        }
    }

    #[test]
    fn stage_summary_parse_tolerates_pre_budget_records() {
        // Logs written before the over_budget field must still replay.
        let old = r#"{"ev": "stage-summary", "kind": "train", "total": 2, "executed": 2, "memory_hits": 0, "disk_hits": 0, "failed": 0, "skipped": 0, "cancelled": 0, "ms": 7.5}"#;
        match Event::parse(old).unwrap() {
            Event::StageSummary { over_budget, .. } => assert!(!over_budget),
            other => panic!("expected stage-summary, got {other:?}"),
        }
    }

    #[test]
    fn log_write_and_replay() {
        let path = tmp_path("replay");
        let log = EventLog::create(&path).unwrap();
        for ev in sample_events() {
            log.append(&ev);
        }
        drop(log);
        let replay = EventLog::replay(&path).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.events, sample_events());
        assert_eq!(replay.completed_ids(), vec![0, 1]);
        assert_eq!(replay.last_shape(), Some(0xabcdef));
        // Appending continues the stream.
        let log = EventLog::open_append(&path).unwrap();
        log.append(&Event::JobStarted {
            id: 9,
            label: "late".into(),
        });
        drop(log);
        assert_eq!(
            EventLog::replay(&path).unwrap().events.len(),
            sample_events().len() + 1
        );
        let _ = fs::remove_file(&path);
    }

    /// The tailing contract under an interleaved writer: every poll
    /// between writer flushes sees exactly the newly completed lines —
    /// a torn final line is yielded neither early (torn) nor twice
    /// (after completion).
    #[test]
    fn tail_from_interleaved_writer_flushes_and_reader_polls() {
        use std::io::Write as _;
        let path = tmp_path("tail");
        let _ = fs::remove_file(&path);

        // Poll 0: no file yet — empty tail, offset unmoved.
        let t = EventLog::tail_from(&path, 0).unwrap();
        assert_eq!((t.lines.len(), t.offset, t.reset), (0, 0, false));

        let events = sample_events();
        let log = EventLog::create(&path).unwrap();
        let mut seen: Vec<String> = Vec::new();
        let mut offset = 0u64;

        // Interleave: after each writer flush, one reader poll must see
        // exactly the one new line.
        for ev in &events[..3] {
            log.append(ev);
            let t = EventLog::tail_from(&path, offset).unwrap();
            assert_eq!(t.lines, vec![ev.to_jsonl()]);
            assert!(!t.reset);
            offset = t.offset;
            seen.extend(t.lines);
        }

        // A torn write: the writer flushed half a record (no newline).
        // (Drop the EventLog first — its `File::create` handle tracks
        // its own position and would overwrite raw appends.)
        drop(log);
        let full = events[3].to_jsonl();
        let (head, rest) = full.split_at(full.len() / 2);
        let mut raw = fs::OpenOptions::new().append(true).open(&path).unwrap();
        raw.write_all(head.as_bytes()).unwrap();
        raw.flush().unwrap();
        let t = EventLog::tail_from(&path, offset).unwrap();
        assert!(t.lines.is_empty(), "a torn line must not be yielded");
        assert_eq!(t.offset, offset, "the offset must not consume a torn line");

        // Polling again before the line completes still yields nothing
        // (no double consumption of the partial bytes either).
        let t = EventLog::tail_from(&path, offset).unwrap();
        assert!(t.lines.is_empty());

        // The writer completes the record: one poll, exactly one line,
        // byte-identical to the full record — yielded once, not twice.
        raw.write_all(rest.as_bytes()).unwrap();
        raw.write_all(b"\n").unwrap();
        raw.flush().unwrap();
        let t = EventLog::tail_from(&path, offset).unwrap();
        assert_eq!(t.lines, vec![full.clone()]);
        offset = t.offset;
        seen.extend(t.lines);

        // A multi-line burst arrives between polls (a resumed writer
        // appends — open_append positions at the true end of file).
        drop(raw);
        let log = EventLog::open_append(&path).unwrap();
        for ev in &events[4..] {
            log.append(ev);
        }
        let t = EventLog::tail_from(&path, offset).unwrap();
        assert_eq!(t.lines.len(), events.len() - 4);
        offset = t.offset;
        seen.extend(t.lines);

        // Quiescent poll: nothing new.
        let t = EventLog::tail_from(&path, offset).unwrap();
        assert!(t.lines.is_empty());
        assert_eq!(t.offset, offset);

        // Loss-free and duplicate-free: the concatenation of every poll
        // equals the writer's stream.
        let expected: Vec<String> = events.iter().map(Event::to_jsonl).collect();
        assert_eq!(seen, expected);

        // A recreated (shrunk) log resets the tail to the new content.
        drop(log);
        let log = EventLog::create(&path).unwrap();
        log.append(&events[0]);
        let t = EventLog::tail_from(&path, offset).unwrap();
        assert!(t.reset, "a shrunk file must be reported as a reset");
        assert_eq!(t.lines, vec![events[0].to_jsonl()]);

        let _ = fs::remove_file(&path);
    }

    #[test]
    fn replay_tolerates_a_torn_tail() {
        let path = tmp_path("torn");
        let log = EventLog::create(&path).unwrap();
        log.append(&sample_events()[0]);
        drop(log);
        // Simulate a writer killed mid-record.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"ev\":\"job-fin");
        fs::write(&path, text).unwrap();
        let replay = EventLog::replay(&path).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.events.len(), 1);
        // A missing file is just an empty replay.
        let replay = EventLog::replay(&tmp_path("nonexistent")).unwrap();
        assert!(replay.events.is_empty() && !replay.truncated);
        let _ = fs::remove_file(&path);
    }
}
