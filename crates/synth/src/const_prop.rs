//! Constant propagation and dead-logic sweeping.

use crate::decompose::expand_complex;
use gnnunlock_netlist::{Driver, GateType, NetId, Netlist};

/// Propagate constants through the netlist to a fixpoint. Complex cells
/// with constant inputs are first expanded into base gates. Returns the
/// number of gates simplified.
pub fn constant_propagation(nl: &mut Netlist) -> usize {
    let mut total = 0;
    loop {
        let changed = const_prop_pass(nl);
        total += changed;
        if changed == 0 {
            return total;
        }
    }
}

fn const_value(nl: &Netlist, net: NetId) -> Option<bool> {
    match nl.driver(net) {
        Driver::Const(v) => Some(v),
        _ => None,
    }
}

fn const_prop_pass(nl: &mut Netlist) -> usize {
    let Ok(order) = nl.topo_order() else {
        return 0;
    };
    let mut changed = 0;
    for g in order {
        if !nl.is_alive(g) {
            continue;
        }
        let inputs: Vec<NetId> = nl.gate_inputs(g).to_vec();
        let consts: Vec<Option<bool>> = inputs.iter().map(|&n| const_value(nl, n)).collect();
        if consts.iter().all(|c| c.is_none()) {
            continue;
        }
        let ty = nl.gate_type(g);
        let role = nl.role(g);
        let out = nl.gate_output(g);
        use GateType::*;
        match ty {
            Buf | Inv => {
                let v = consts[0].expect("checked above");
                nl.remove_gate(g);
                nl.tie_const(out, if ty == Inv { !v } else { v });
                changed += 1;
            }
            And | Nand | Or | Nor => {
                // Normalize to AND logic: OR(x) = !AND(!x), etc.
                let (and_like, inverted) = match ty {
                    And => (true, false),
                    Nand => (true, true),
                    Or => (false, false),
                    Nor => (false, true),
                    _ => unreachable!(),
                };
                // In AND terms the controlling value is 0; for OR it is 1.
                let controlling = !and_like;
                if consts.iter().flatten().any(|&v| v == controlling) {
                    let value = controlling ^ inverted;
                    nl.remove_gate(g);
                    nl.tie_const(out, value);
                    changed += 1;
                    continue;
                }
                // All constant inputs are non-controlling: drop them.
                let kept: Vec<NetId> = inputs
                    .iter()
                    .zip(&consts)
                    .filter(|(_, c)| c.is_none())
                    .map(|(&n, _)| n)
                    .collect();
                nl.remove_gate(g);
                match kept.len() {
                    0 => {
                        // AND of nothing = 1, OR of nothing = 0.
                        nl.tie_const(out, and_like ^ inverted);
                    }
                    1 => {
                        let ty2 = if inverted { Inv } else { Buf };
                        let ng = nl.add_gate_into(ty2, &kept, out);
                        nl.set_role(ng, role);
                    }
                    _ => {
                        let ng = nl.add_gate_into(ty, &kept, out);
                        nl.set_role(ng, role);
                    }
                }
                changed += 1;
            }
            Xor | Xnor => {
                let mut parity = ty == Xnor;
                let kept: Vec<NetId> = inputs
                    .iter()
                    .zip(&consts)
                    .filter_map(|(&n, c)| match c {
                        Some(true) => {
                            parity = !parity;
                            None
                        }
                        Some(false) => None,
                        None => Some(n),
                    })
                    .collect();
                nl.remove_gate(g);
                match kept.len() {
                    0 => nl.tie_const(out, parity),
                    1 => {
                        let ty2 = if parity { Inv } else { Buf };
                        let ng = nl.add_gate_into(ty2, &kept, out);
                        nl.set_role(ng, role);
                    }
                    _ => {
                        let ty2 = if parity { Xnor } else { Xor };
                        let ng = nl.add_gate_into(ty2, &kept, out);
                        nl.set_role(ng, role);
                    }
                }
                changed += 1;
            }
            // Complex cells: expand into base gates; the next pass
            // simplifies the expansion.
            _ => {
                expand_complex(nl, g);
                changed += 1;
            }
        }
    }
    changed
}

/// Remove every gate that cannot reach a primary output. Returns the
/// number of gates removed.
pub fn sweep_dead(nl: &mut Netlist) -> usize {
    let mut live = vec![false; nl.gate_capacity()];
    let mut queue: Vec<_> = Vec::new();
    for (_, net) in nl.outputs() {
        if let Driver::Gate(g) = nl.driver(net) {
            if nl.is_alive(g) && !live[g.index()] {
                live[g.index()] = true;
                queue.push(g);
            }
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let g = queue[head];
        head += 1;
        for &inp in nl.gate_inputs(g) {
            if let Driver::Gate(src) = nl.driver(inp) {
                if nl.is_alive(src) && !live[src.index()] {
                    live[src.index()] = true;
                    queue.push(src);
                }
            }
        }
    }
    let dead: Vec<_> = nl.gate_ids().filter(|g| !live[g.index()]).collect();
    let n = dead.len();
    for g in dead {
        nl.remove_gate(g);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_netlist::GateType;

    #[test]
    fn and_with_zero_becomes_constant() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let zero = nl.const_net(false);
        let g = nl.add_gate(GateType::And, &[a, zero]);
        nl.add_output("y", nl.gate_output(g));
        constant_propagation(&mut nl);
        assert_eq!(nl.num_gates(), 0);
        assert_eq!(nl.eval_outputs(&[true], &[]).unwrap(), vec![false]);
    }

    #[test]
    fn xor_with_one_becomes_inverter() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let one = nl.const_net(true);
        let g = nl.add_gate(GateType::Xor, &[a, one]);
        nl.add_output("y", nl.gate_output(g));
        constant_propagation(&mut nl);
        let g = nl.gate_ids().next().unwrap();
        assert_eq!(nl.gate_type(g), GateType::Inv);
        assert_eq!(nl.eval_outputs(&[true], &[]).unwrap(), vec![false]);
    }

    #[test]
    fn nand_dropping_noncontrolling_constants() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let one = nl.const_net(true);
        let g = nl.add_gate(GateType::Nand, &[a, one, b]);
        nl.add_output("y", nl.gate_output(g));
        constant_propagation(&mut nl);
        let g = nl.gate_ids().next().unwrap();
        assert_eq!(nl.gate_type(g), GateType::Nand);
        assert_eq!(nl.gate_inputs(g).len(), 2);
        assert_eq!(nl.eval_outputs(&[true, true], &[]).unwrap(), vec![false]);
    }

    #[test]
    fn cascading_constants_reach_fixpoint() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let zero = nl.const_net(false);
        let g1 = nl.add_gate(GateType::Or, &[a, zero]); // = a
        let g2 = nl.add_gate(GateType::And, &[nl.gate_output(g1), zero]); // = 0
        let g3 = nl.add_gate(GateType::Xor, &[nl.gate_output(g2), a]); // = a
        nl.add_output("y", nl.gate_output(g3));
        constant_propagation(&mut nl);
        sweep_dead(&mut nl);
        nl.compact();
        assert_eq!(nl.eval_outputs(&[true], &[]).unwrap(), vec![true]);
        assert_eq!(nl.eval_outputs(&[false], &[]).unwrap(), vec![false]);
        assert!(nl.num_gates() <= 1, "got {} gates", nl.num_gates());
    }

    #[test]
    fn mux_with_constant_select_expands_and_simplifies() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let one = nl.const_net(true);
        let g = nl.add_gate(GateType::Mux2, &[a, b, one]);
        nl.add_output("y", nl.gate_output(g));
        constant_propagation(&mut nl);
        sweep_dead(&mut nl);
        // Mux with s=1 selects b.
        assert_eq!(nl.eval_outputs(&[true, false], &[]).unwrap(), vec![false]);
        assert_eq!(nl.eval_outputs(&[false, true], &[]).unwrap(), vec![true]);
    }

    #[test]
    fn sweep_removes_unreachable_logic() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let g1 = nl.add_gate(GateType::Inv, &[a]);
        let _dead = nl.add_gate(GateType::Inv, &[nl.gate_output(g1)]);
        nl.add_output("y", nl.gate_output(g1));
        assert_eq!(sweep_dead(&mut nl), 1);
        assert_eq!(nl.num_gates(), 1);
    }
}
