//! Synthesis simulator: technology mapping and structural rewrites with
//! label provenance.
//!
//! The paper synthesizes locked RTL with Synopsys Design Compiler for a
//! 65nm LPe library (and Nangate 45nm for the format-robustness study).
//! This crate reproduces what synthesis means *to the attack*: the same
//! locking instance maps to structurally different netlists depending on
//! library and seed, while the ground-truth
//! [`gnnunlock_netlist::NodeRole`] of every gate survives all rewrites
//! (protection roles are sticky — see [`roles::merge_roles`]).
//!
//! Pass pipeline ([`synthesize`]):
//!
//! 1. constant propagation + dead sweep,
//! 2. buffer removal and inverter-pair collapsing,
//! 3. `effort` rounds of randomized De Morgan rewrites and AOI/OAI/MUX
//!    complex-cell extraction,
//! 4. legalization into the target [`CellLibrary`] (tree decomposition of
//!    wide gates, expansion of unsupported cells),
//! 5. final cleanup, compaction and validation.
//!
//! # Examples
//!
//! ```
//! use gnnunlock_netlist::{generator::BenchmarkSpec, CellLibrary};
//! use gnnunlock_synth::{synthesize, SynthesisConfig};
//!
//! let nl = BenchmarkSpec::named("c2670").unwrap().scaled(0.03).generate();
//! let cfg = SynthesisConfig::new(CellLibrary::Lpe65).with_seed(7);
//! let mapped = synthesize(&nl, &cfg).unwrap();
//! mapped.validate(Some(CellLibrary::Lpe65)).unwrap();
//! ```

#![warn(missing_docs)]

mod cleanup;
mod const_prop;
mod decompose;
mod restructure;
pub mod roles;

pub use cleanup::{collapse_inverter_pairs, remove_buffers};
pub use const_prop::{constant_propagation, sweep_dead};
pub use decompose::{expand_complex, is_legal, legalize};
pub use restructure::{absorb_inverters, demorgan, map_complex_cells};

use gnnunlock_netlist::{CellLibrary, Netlist, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Target cell library.
    pub library: CellLibrary,
    /// Number of randomized restructuring rounds (0 = mapping only).
    pub effort: u8,
    /// Seed for the randomized rewrites; different seeds model different
    /// synthesis runs/settings.
    pub seed: u64,
    /// Probability of applying a De Morgan rewrite per candidate gate.
    pub demorgan_p: f64,
    /// Probability of extracting a complex cell per matched pattern.
    pub map_p: f64,
}

impl SynthesisConfig {
    /// Default configuration for a library: effort 2, balanced rewrite
    /// probabilities.
    pub fn new(library: CellLibrary) -> Self {
        SynthesisConfig {
            library,
            effort: 2,
            seed: 0,
            demorgan_p: 0.25,
            map_p: 0.6,
        }
    }

    /// Replace the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the effort (builder style).
    pub fn with_effort(mut self, effort: u8) -> Self {
        self.effort = effort;
        self
    }
}

/// Synthesize `input` into the configured library.
///
/// The result is functionally equivalent to `input` (same PIs/KIs/POs),
/// contains only legal cells of `cfg.library`, and carries role labels
/// inherited from the source gates.
///
/// # Errors
///
/// Propagates structural errors (e.g. a cyclic input netlist).
pub fn synthesize(input: &Netlist, cfg: &SynthesisConfig) -> Result<Netlist> {
    let mut nl = input.clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    constant_propagation(&mut nl);
    remove_buffers(&mut nl);
    collapse_inverter_pairs(&mut nl);
    sweep_dead(&mut nl);
    // Polarity optimization runs unconditionally (every synthesis tool
    // performs it); the randomized passes below are effort-gated.
    absorb_inverters(&mut nl, &mut rng, cfg.library, 0.9);
    for _ in 0..cfg.effort {
        absorb_inverters(&mut nl, &mut rng, cfg.library, 0.9);
        demorgan(&mut nl, &mut rng, cfg.library, cfg.demorgan_p);
        map_complex_cells(&mut nl, &mut rng, cfg.library, cfg.map_p);
        collapse_inverter_pairs(&mut nl);
        sweep_dead(&mut nl);
    }
    legalize(&mut nl, cfg.library);
    remove_buffers(&mut nl);
    sweep_dead(&mut nl);
    nl.compact();
    nl.validate(Some(cfg.library))?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_locking::{lock_sfll_hd, SfllConfig};
    use gnnunlock_netlist::generator::BenchmarkSpec;

    use rand::RngExt;

    fn check_equiv_random(a: &Netlist, b: &Netlist, kis: usize, seed: u64) {
        let n_pi = a.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..30 {
            let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
            let ki: Vec<bool> = (0..kis).map(|_| rng.random_bool(0.5)).collect();
            assert_eq!(
                a.eval_outputs(&pi, &ki).unwrap(),
                b.eval_outputs(&pi, &ki).unwrap(),
                "synthesized netlist diverges"
            );
        }
    }

    #[test]
    fn synthesis_preserves_function_lpe65() {
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.05)
            .generate();
        let mapped =
            synthesize(&nl, &SynthesisConfig::new(CellLibrary::Lpe65).with_seed(11)).unwrap();
        mapped.validate(Some(CellLibrary::Lpe65)).unwrap();
        check_equiv_random(&nl, &mapped, 0, 1);
    }

    #[test]
    fn synthesis_preserves_function_nangate45() {
        let nl = BenchmarkSpec::named("c3540")
            .unwrap()
            .scaled(0.05)
            .generate();
        let mapped = synthesize(
            &nl,
            &SynthesisConfig::new(CellLibrary::Nangate45).with_seed(3),
        )
        .unwrap();
        mapped.validate(Some(CellLibrary::Nangate45)).unwrap();
        check_equiv_random(&nl, &mapped, 0, 2);
    }

    #[test]
    fn different_seeds_give_different_structures() {
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.05)
            .generate();
        let a = synthesize(&nl, &SynthesisConfig::new(CellLibrary::Lpe65).with_seed(1)).unwrap();
        let b = synthesize(&nl, &SynthesisConfig::new(CellLibrary::Lpe65).with_seed(2)).unwrap();
        let ha = a.cell_histogram();
        let hb = b.cell_histogram();
        assert_ne!(ha, hb, "seeds produced identical cell mixes");
        check_equiv_random(&a, &b, 0, 3);
    }

    #[test]
    fn locked_circuit_roles_survive_synthesis() {
        let design = BenchmarkSpec::named("c3540")
            .unwrap()
            .scaled(0.04)
            .generate();
        let locked = lock_sfll_hd(&design, &SfllConfig::new(12, 2, 5)).unwrap();
        let mapped = synthesize(
            &locked.netlist,
            &SynthesisConfig::new(CellLibrary::Lpe65).with_seed(9),
        )
        .unwrap();
        let [_, pn, rn, _] = mapped.role_histogram();
        assert!(pn > 0, "perturb labels lost in synthesis");
        assert!(rn > 0, "restore labels lost in synthesis");
        check_equiv_random(&locked.netlist, &mapped, 12, 4);
    }

    #[test]
    fn keys_still_unlock_after_synthesis() {
        let design = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.04)
            .generate();
        let locked = lock_sfll_hd(&design, &SfllConfig::new(10, 2, 6)).unwrap();
        let mapped = synthesize(
            &locked.netlist,
            &SynthesisConfig::new(CellLibrary::Nangate45).with_seed(10),
        )
        .unwrap();
        let n_pi = design.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
            assert_eq!(
                design.eval_outputs(&pi, &[]).unwrap(),
                mapped.eval_outputs(&pi, locked.key.bits()).unwrap()
            );
        }
    }

    #[test]
    fn effort_zero_is_pure_mapping() {
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.03)
            .generate();
        let cfg = SynthesisConfig {
            effort: 0,
            ..SynthesisConfig::new(CellLibrary::Lpe65)
        };
        let mapped = synthesize(&nl, &cfg).unwrap();
        assert!(is_legal(&mapped, CellLibrary::Lpe65));
        check_equiv_random(&nl, &mapped, 0, 5);
        // No randomized passes ran: no complex cells should appear.
        assert!(!mapped
            .gate_ids()
            .any(|g| matches!(mapped.gate_type(g), gnnunlock_netlist::GateType::Aoi21)));
    }

    #[test]
    fn protection_never_relabelled_as_design() {
        // Count protection gates before and after: rewrites may merge or
        // split them, but the boundary rule keeps protection sticky, so
        // the protected cone cannot vanish while its logic remains.
        let design = BenchmarkSpec::named("c3540")
            .unwrap()
            .scaled(0.04)
            .generate();
        let locked = lock_sfll_hd(&design, &SfllConfig::new(16, 4, 3)).unwrap();
        let mapped = synthesize(
            &locked.netlist,
            &SynthesisConfig::new(CellLibrary::Lpe65).with_seed(4),
        )
        .unwrap();
        let before = locked.netlist.role_histogram();
        let after = mapped.role_histogram();
        // Protection shrinks only through genuine logic simplification;
        // it must stay within a sane band of the original size.
        let before_prot = before[1] + before[2];
        let after_prot = after[1] + after[2];
        assert!(
            after_prot * 2 >= before_prot,
            "protection logic collapsed: {before_prot} -> {after_prot}"
        );
    }
}
