//! Gate decomposition and library legalization.

use crate::roles::merge_all;
use gnnunlock_netlist::{CellLibrary, GateType, NetId, Netlist, NodeRole};

/// Largest arity the library accepts for `family`, scanning up to 8.
fn max_arity(lib: CellLibrary, family: GateType) -> usize {
    if lib == CellLibrary::Bench8 && family.fixed_arity().is_none() {
        return usize::MAX;
    }
    (2..=8)
        .filter(|&n| lib.allows(family, n))
        .max()
        .unwrap_or(0)
}

/// Expand a complex cell (`Aoi*`, `Oai*`, `Mux2`, `Mxi2`, `Maj3`) into base
/// AND/OR/INV gates in place. The root of the expansion drives the gate's
/// original output net; all new gates inherit the gate's role.
///
/// # Panics
///
/// Panics if `g` is a base-family gate.
pub fn expand_complex(nl: &mut Netlist, g: gnnunlock_netlist::GateId) {
    use GateType::*;
    let ty = nl.gate_type(g);
    let ins: Vec<NetId> = nl.gate_inputs(g).to_vec();
    let role = nl.role(g);
    let out = nl.gate_output(g);
    nl.remove_gate(g);
    let gate = |nl: &mut Netlist, ty: GateType, inputs: &[NetId]| -> NetId {
        let gg = nl.add_gate_with_role(ty, inputs, role);
        nl.gate_output(gg)
    };
    let finish = |nl: &mut Netlist, ty: GateType, inputs: &[NetId], out: NetId| {
        let gg = nl.add_gate_into(ty, inputs, out);
        nl.set_role(gg, role);
    };
    match ty {
        Aoi21 => {
            let ab = gate(nl, And, &ins[0..2]);
            finish(nl, Nor, &[ab, ins[2]], out);
        }
        Aoi22 => {
            let ab = gate(nl, And, &ins[0..2]);
            let cd = gate(nl, And, &ins[2..4]);
            finish(nl, Nor, &[ab, cd], out);
        }
        Aoi211 => {
            let ab = gate(nl, And, &ins[0..2]);
            finish(nl, Nor, &[ab, ins[2], ins[3]], out);
        }
        Aoi221 => {
            let ab = gate(nl, And, &ins[0..2]);
            let cd = gate(nl, And, &ins[2..4]);
            finish(nl, Nor, &[ab, cd, ins[4]], out);
        }
        Oai21 => {
            let ab = gate(nl, Or, &ins[0..2]);
            finish(nl, Nand, &[ab, ins[2]], out);
        }
        Oai22 => {
            let ab = gate(nl, Or, &ins[0..2]);
            let cd = gate(nl, Or, &ins[2..4]);
            finish(nl, Nand, &[ab, cd], out);
        }
        Oai211 => {
            let ab = gate(nl, Or, &ins[0..2]);
            finish(nl, Nand, &[ab, ins[2], ins[3]], out);
        }
        Oai221 => {
            let ab = gate(nl, Or, &ins[0..2]);
            let cd = gate(nl, Or, &ins[2..4]);
            finish(nl, Nand, &[ab, cd, ins[4]], out);
        }
        Mux2 => {
            let ns = gate(nl, Inv, &[ins[2]]);
            let a_side = gate(nl, And, &[ins[0], ns]);
            let b_side = gate(nl, And, &[ins[1], ins[2]]);
            finish(nl, Or, &[a_side, b_side], out);
        }
        Mxi2 => {
            let ns = gate(nl, Inv, &[ins[2]]);
            let a_side = gate(nl, And, &[ins[0], ns]);
            let b_side = gate(nl, And, &[ins[1], ins[2]]);
            finish(nl, Nor, &[a_side, b_side], out);
        }
        Maj3 => {
            let ab = gate(nl, And, &ins[0..2]);
            let axb = gate(nl, Xor, &ins[0..2]);
            let c_axb = gate(nl, And, &[ins[2], axb]);
            finish(nl, Or, &[ab, c_axb], out);
        }
        _ => panic!("expand_complex called on base gate {ty}"),
    }
}

/// Rewrite every gate that is not a legal cell of `library` into legal
/// gates, preserving function and role provenance.
///
/// Returns the number of gates rewritten.
pub fn legalize(nl: &mut Netlist, library: CellLibrary) -> usize {
    let mut rewritten = 0;
    // Complex cells outside the library expand first.
    loop {
        let bad: Vec<_> = nl
            .gate_ids()
            .filter(|&g| {
                let ty = nl.gate_type(g);
                ty.fixed_arity().is_some()
                    && !matches!(ty, GateType::Buf | GateType::Inv)
                    && !library.allows(ty, nl.gate_inputs(g).len())
            })
            .collect();
        if bad.is_empty() {
            break;
        }
        for g in bad {
            expand_complex(nl, g);
            rewritten += 1;
        }
    }
    // Wide simple gates decompose into trees.
    loop {
        let bad: Vec<_> = nl
            .gate_ids()
            .filter(|&g| !library.allows(nl.gate_type(g), nl.gate_inputs(g).len()))
            .collect();
        if bad.is_empty() {
            break;
        }
        for g in bad {
            decompose_simple(nl, g, library);
            rewritten += 1;
        }
    }
    rewritten
}

/// Decompose one over-wide simple gate into a tree of legal cells.
fn decompose_simple(nl: &mut Netlist, g: gnnunlock_netlist::GateId, library: CellLibrary) {
    use GateType::*;
    let ty = nl.gate_type(g);
    let ins: Vec<NetId> = nl.gate_inputs(g).to_vec();
    let role = nl.role(g);
    let out = nl.gate_output(g);
    let (base, root): (GateType, GateType) = match ty {
        And => (And, And),
        Nand => (And, Nand),
        Or => (Or, Or),
        Nor => (Or, Nor),
        Xor => (Xor, Xor),
        Xnor => (Xor, Xnor),
        other => panic!("decompose_simple on {other}"),
    };
    let base_max = max_arity(library, base).max(2);
    let root_max = max_arity(library, root).max(2);
    nl.remove_gate(g);
    // Reduce the leaf layer until it fits under a single root gate.
    let mut layer = ins;
    while layer.len() > root_max {
        let mut next = Vec::with_capacity(layer.len() / 2 + 1);
        let mut chunk_iter = layer.chunks(base_max.min(layer.len() - 1).max(2));
        for chunk in &mut chunk_iter {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                let gg = nl.add_gate_with_role(base, chunk, role);
                next.push(nl.gate_output(gg));
            }
        }
        layer = next;
    }
    let gg = nl.add_gate_into(root, &layer, out);
    nl.set_role(gg, role);
}

/// Check that every live gate is a legal library cell.
pub fn is_legal(nl: &Netlist, library: CellLibrary) -> bool {
    nl.gate_ids()
        .all(|g| library.allows(nl.gate_type(g), nl.gate_inputs(g).len()))
}

/// Convenience used by pattern rewrites: role of a set of gates.
pub fn roles_of(nl: &Netlist, gates: &[gnnunlock_netlist::GateId]) -> NodeRole {
    let roles: Vec<NodeRole> = gates.iter().map(|&g| nl.role(g)).collect();
    merge_all(&roles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_netlist::generator::BenchmarkSpec;
    use gnnunlock_netlist::ALL_GATE_TYPES;

    #[test]
    fn expansion_preserves_function() {
        for &ty in ALL_GATE_TYPES.iter() {
            if ty.fixed_arity().is_none() || matches!(ty, GateType::Buf | GateType::Inv) {
                continue;
            }
            let arity = ty.fixed_arity().unwrap();
            let mut nl = Netlist::new("t");
            let ins: Vec<NetId> = (0..arity)
                .map(|i| nl.add_primary_input(format!("i{i}")))
                .collect();
            let g = nl.add_gate(ty, &ins);
            nl.add_output("y", nl.gate_output(g));
            let mut expanded = nl.clone();
            let g2 = expanded.gate_ids().next().unwrap();
            expand_complex(&mut expanded, g2);
            for bits in 0..(1u32 << arity) {
                let pattern: Vec<bool> = (0..arity).map(|i| (bits >> i) & 1 == 1).collect();
                assert_eq!(
                    nl.eval_outputs(&pattern, &[]).unwrap(),
                    expanded.eval_outputs(&pattern, &[]).unwrap(),
                    "{ty} mismatch at {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn wide_gate_decomposition_preserves_function() {
        for ty in [GateType::And, GateType::Nand, GateType::Xor, GateType::Xnor] {
            let mut nl = Netlist::new("t");
            let ins: Vec<NetId> = (0..7)
                .map(|i| nl.add_primary_input(format!("i{i}")))
                .collect();
            let g = nl.add_gate(ty, &ins);
            nl.add_output("y", nl.gate_output(g));
            let mut mapped = nl.clone();
            legalize(&mut mapped, CellLibrary::Nangate45);
            assert!(is_legal(&mapped, CellLibrary::Nangate45), "{ty} not legal");
            for bits in 0..128u32 {
                let pattern: Vec<bool> = (0..7).map(|i| (bits >> i) & 1 == 1).collect();
                assert_eq!(
                    nl.eval_outputs(&pattern, &[]).unwrap(),
                    mapped.eval_outputs(&pattern, &[]).unwrap(),
                    "{ty} mismatch at {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn roles_inherited_through_decomposition() {
        let mut nl = Netlist::new("t");
        let ins: Vec<NetId> = (0..6)
            .map(|i| nl.add_primary_input(format!("i{i}")))
            .collect();
        let g = nl.add_gate_with_role(GateType::And, &ins, NodeRole::Perturb);
        nl.add_output("y", nl.gate_output(g));
        legalize(&mut nl, CellLibrary::Lpe65);
        assert!(nl.num_gates() > 1);
        for g in nl.gate_ids() {
            assert_eq!(nl.role(g), NodeRole::Perturb);
        }
    }

    #[test]
    fn legalize_full_benchmark() {
        let nl = BenchmarkSpec::named("c3540")
            .unwrap()
            .scaled(0.05)
            .generate();
        let mut mapped = nl.clone();
        legalize(&mut mapped, CellLibrary::Nangate45);
        assert!(is_legal(&mapped, CellLibrary::Nangate45));
        mapped.validate(Some(CellLibrary::Nangate45)).unwrap();
    }
}
