//! Label provenance through rewrites.

use gnnunlock_netlist::NodeRole;

/// Role of a gate produced by consuming gates with roles `a` and `b`.
///
/// Protection roles are sticky: merging design logic with protection logic
/// yields the protection role, so rewrites can never silently launder
/// protection gates into the design class. When two *different* protection
/// roles meet (which the constructions never arrange, but a rewrite across
/// the restore/perturb boundary could), the first operand wins.
pub fn merge_roles(a: NodeRole, b: NodeRole) -> NodeRole {
    match (a.is_protection(), b.is_protection()) {
        (true, _) => a,
        (false, true) => b,
        (false, false) => NodeRole::Design,
    }
}

/// Fold [`merge_roles`] over a list.
pub fn merge_all(roles: &[NodeRole]) -> NodeRole {
    roles.iter().copied().fold(NodeRole::Design, merge_roles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_is_sticky() {
        assert_eq!(
            merge_roles(NodeRole::Design, NodeRole::Perturb),
            NodeRole::Perturb
        );
        assert_eq!(
            merge_roles(NodeRole::Restore, NodeRole::Design),
            NodeRole::Restore
        );
        assert_eq!(
            merge_roles(NodeRole::Design, NodeRole::Design),
            NodeRole::Design
        );
    }

    #[test]
    fn first_protection_role_wins() {
        assert_eq!(
            merge_roles(NodeRole::Perturb, NodeRole::Restore),
            NodeRole::Perturb
        );
        assert_eq!(
            merge_all(&[NodeRole::Design, NodeRole::AntiSat, NodeRole::Design]),
            NodeRole::AntiSat
        );
    }
}
