//! Structural cleanup: buffer removal and inverter-pair collapsing.

use gnnunlock_netlist::{Driver, GateType, Netlist};

/// Remove buffer gates by rewiring their readers to the buffer input.
/// Returns the number of buffers removed.
pub fn remove_buffers(nl: &mut Netlist) -> usize {
    let mut removed = 0;
    loop {
        let Some(buf) = nl.gate_ids().find(|&g| nl.gate_type(g) == GateType::Buf) else {
            return removed;
        };
        let src = nl.gate_inputs(buf)[0];
        let out = nl.gate_output(buf);
        nl.replace_net_uses(out, src);
        nl.remove_gate(buf);
        removed += 1;
    }
}

/// Collapse `Inv(Inv(x))` chains: readers of the outer inverter are rewired
/// to `x`. Inner inverters that become dead are swept by the caller.
/// Returns the number of pairs collapsed.
pub fn collapse_inverter_pairs(nl: &mut Netlist) -> usize {
    let mut removed = 0;
    loop {
        let mut found = None;
        for g in nl.gate_ids() {
            if nl.gate_type(g) != GateType::Inv {
                continue;
            }
            let input = nl.gate_inputs(g)[0];
            if let Driver::Gate(inner) = nl.driver(input) {
                if nl.is_alive(inner) && nl.gate_type(inner) == GateType::Inv {
                    found = Some((g, nl.gate_inputs(inner)[0]));
                    break;
                }
            }
        }
        let Some((outer, origin)) = found else {
            return removed;
        };
        let out = nl.gate_output(outer);
        nl.replace_net_uses(out, origin);
        nl.remove_gate(outer);
        removed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::const_prop::sweep_dead;

    #[test]
    fn buffers_are_removed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let b1 = nl.add_gate(GateType::Buf, &[a]);
        let b2 = nl.add_gate(GateType::Buf, &[nl.gate_output(b1)]);
        let inv = nl.add_gate(GateType::Inv, &[nl.gate_output(b2)]);
        nl.add_output("y", nl.gate_output(inv));
        assert_eq!(remove_buffers(&mut nl), 2);
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.eval_outputs(&[true], &[]).unwrap(), vec![false]);
    }

    #[test]
    fn inverter_pairs_collapse() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let i1 = nl.add_gate(GateType::Inv, &[a]);
        let i2 = nl.add_gate(GateType::Inv, &[nl.gate_output(i1)]);
        let g = nl.add_gate(GateType::And, &[nl.gate_output(i2), a]);
        nl.add_output("y", nl.gate_output(g));
        assert_eq!(collapse_inverter_pairs(&mut nl), 1);
        sweep_dead(&mut nl);
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.eval_outputs(&[true], &[]).unwrap(), vec![true]);
    }

    #[test]
    fn shared_inner_inverter_survives() {
        // Inner inverter also feeds an output: only the outer pair is
        // bypassed; the inner stays live.
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let i1 = nl.add_gate(GateType::Inv, &[a]);
        let i2 = nl.add_gate(GateType::Inv, &[nl.gate_output(i1)]);
        nl.add_output("na", nl.gate_output(i1));
        nl.add_output("y", nl.gate_output(i2));
        collapse_inverter_pairs(&mut nl);
        sweep_dead(&mut nl);
        assert_eq!(nl.eval_outputs(&[true], &[]).unwrap(), vec![false, true]);
    }
}
