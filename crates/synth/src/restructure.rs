//! Structure-diversifying rewrites: randomized De Morgan transformations
//! and complex-cell (AOI/OAI/MUX) extraction.
//!
//! These are the passes that make two synthesis runs of the same locked
//! RTL structurally different — the variability the paper attributes to
//! "different synthesis settings" and that the GNN must generalize over.

use crate::decompose::roles_of;
use gnnunlock_netlist::{CellLibrary, Driver, GateId, GateType, NetId, Netlist};
use rand::rngs::StdRng;
use rand::RngExt;

/// Apply randomized De Morgan rewrites with probability `p` per candidate.
/// Returns the number of rewrites applied.
///
/// Two directions are used:
/// - `AND(a,b)` → `INV(NAND(a,b))` / `OR(a,b)` → `INV(NOR(a,b))` (split);
/// - `INV(NAND(a,b))` → `AND(a,b)` / `INV(NOR(a,b))` → `OR(a,b)` (fuse,
///   when the inner gate has a single reader).
pub fn demorgan(nl: &mut Netlist, rng: &mut StdRng, library: CellLibrary, p: f64) -> usize {
    let mut rewrites = 0;
    let counts = ReaderCounts::build(nl);
    let gates: Vec<GateId> = nl.gate_ids().collect();
    for g in gates {
        if !nl.is_alive(g) || !rng.random_bool(p) {
            continue;
        }
        let ty = nl.gate_type(g);
        let arity = nl.gate_inputs(g).len();
        match ty {
            GateType::And | GateType::Or => {
                let dual = if ty == GateType::And {
                    GateType::Nand
                } else {
                    GateType::Nor
                };
                if !library.allows(dual, arity) || !library.allows(GateType::Inv, 1) {
                    continue;
                }
                let ins: Vec<NetId> = nl.gate_inputs(g).to_vec();
                let role = nl.role(g);
                let out = nl.gate_output(g);
                nl.remove_gate(g);
                let inner = nl.add_gate_with_role(dual, &ins, role);
                let inner_out = nl.gate_output(inner);
                let outer = nl.add_gate_into(GateType::Inv, &[inner_out], out);
                nl.set_role(outer, role);
                rewrites += 1;
            }
            GateType::Inv => {
                let input = nl.gate_inputs(g)[0];
                let Driver::Gate(inner) = nl.driver(input) else {
                    continue;
                };
                if !nl.is_alive(inner) {
                    continue;
                }
                let inner_ty = nl.gate_type(inner);
                let fused = match inner_ty {
                    GateType::Nand => GateType::And,
                    GateType::Nor => GateType::Or,
                    GateType::And => GateType::Nand,
                    GateType::Or => GateType::Nor,
                    _ => continue,
                };
                let inner_arity = nl.gate_inputs(inner).len();
                if !library.allows(fused, inner_arity) {
                    continue;
                }
                // The inner gate must have no other reader.
                if counts.get(input) != 1 || nl.is_output_net(input) {
                    continue;
                }
                let ins: Vec<NetId> = nl.gate_inputs(inner).to_vec();
                let role = roles_of(nl, &[g, inner]);
                let out = nl.gate_output(g);
                nl.remove_gate(g);
                nl.remove_gate(inner);
                let ng = nl.add_gate_into(fused, &ins, out);
                nl.set_role(ng, role);
                rewrites += 1;
            }
            _ => {}
        }
    }
    rewrites
}

/// Absorb inverters into XOR/XNOR gates with probability `p` per match
/// (`XOR(INV(x), b)` → `XNOR(x, b)`, `INV(XOR(a, b))` → `XNOR(a, b)` and
/// their duals). Returns the number of rewrites.
///
/// This is the polarity optimization every synthesis tool performs; it is
/// what folds SFLL's hard-coded-key inverter layer into the perturb
/// unit's first adder stage, making the perturb structure key-dependent
/// deep into the tree (paper Section II-A.2).
pub fn absorb_inverters(nl: &mut Netlist, rng: &mut StdRng, library: CellLibrary, p: f64) -> usize {
    let mut rewrites = 0;
    let counts = ReaderCounts::build(nl);
    let gates: Vec<GateId> = nl.gate_ids().collect();
    for g in gates {
        if !nl.is_alive(g) || !rng.random_bool(p) {
            continue;
        }
        let ty = nl.gate_type(g);
        match ty {
            GateType::Xor | GateType::Xnor if nl.gate_inputs(g).len() == 2 => {
                let ins: Vec<NetId> = nl.gate_inputs(g).to_vec();
                let dual = if ty == GateType::Xor {
                    GateType::Xnor
                } else {
                    GateType::Xor
                };
                if !library.allows(dual, 2) {
                    continue;
                }
                for (slot, &input) in ins.iter().enumerate() {
                    let Some(inv) = single_driver(nl, input, GateType::Inv, 1, &counts) else {
                        continue;
                    };
                    let origin = nl.gate_inputs(inv)[0];
                    let role = roles_of(nl, &[g, inv]);
                    let mut new_ins = ins.clone();
                    new_ins[slot] = origin;
                    nl.set_gate_inputs(g, &new_ins);
                    nl.set_gate_type(g, dual);
                    nl.set_role(g, role);
                    nl.remove_gate(inv);
                    rewrites += 1;
                    break; // one absorption per gate per pass
                }
            }
            GateType::Inv => {
                let input = nl.gate_inputs(g)[0];
                let (inner, fused) = match single_driver(nl, input, GateType::Xor, 2, &counts) {
                    Some(x) => (x, GateType::Xnor),
                    None => match single_driver(nl, input, GateType::Xnor, 2, &counts) {
                        Some(x) => (x, GateType::Xor),
                        None => continue,
                    },
                };
                if !library.allows(fused, 2) {
                    continue;
                }
                let ins: Vec<NetId> = nl.gate_inputs(inner).to_vec();
                let role = roles_of(nl, &[g, inner]);
                let out = nl.gate_output(g);
                nl.remove_gate(g);
                nl.remove_gate(inner);
                let ng = nl.add_gate_into(fused, &ins, out);
                nl.set_role(ng, role);
                rewrites += 1;
            }
            _ => {}
        }
    }
    rewrites
}

/// Extract AOI/OAI/MUX complex cells from base-gate patterns with
/// probability `p` per match. Returns the number of cells extracted.
pub fn map_complex_cells(
    nl: &mut Netlist,
    rng: &mut StdRng,
    library: CellLibrary,
    p: f64,
) -> usize {
    let mut mapped = 0;
    let counts = ReaderCounts::build(nl);
    let gates: Vec<GateId> = nl.gate_ids().collect();
    for g in gates {
        if !nl.is_alive(g) || !rng.random_bool(p) {
            continue;
        }
        if try_aoi_oai(nl, g, library, &counts) || try_mux(nl, g, library, &counts) {
            mapped += 1;
        }
    }
    mapped
}

/// Gate-input reader counts snapshotted at pass entry.
///
/// Every rewrite in this module preserves the reader counts of surviving
/// pre-existing nets (removed consumers are replaced one-for-one by the
/// new cell), so a snapshot stays valid for the whole pass. Nets created
/// during the pass are unknown and report `usize::MAX`, which makes the
/// single-reader checks conservatively skip them.
struct ReaderCounts(Vec<usize>);

impl ReaderCounts {
    fn build(nl: &Netlist) -> Self {
        let mut counts = vec![0usize; nl.num_nets()];
        for g in nl.gate_ids() {
            for &n in nl.gate_inputs(g) {
                counts[n.index()] += 1;
            }
        }
        ReaderCounts(counts)
    }

    fn get(&self, net: NetId) -> usize {
        self.0.get(net.index()).copied().unwrap_or(usize::MAX)
    }
}

/// Single-reader, non-output, gate-driven net whose driver is `want`.
fn single_driver(
    nl: &Netlist,
    net: NetId,
    want: GateType,
    arity: usize,
    counts: &ReaderCounts,
) -> Option<GateId> {
    let Driver::Gate(g) = nl.driver(net) else {
        return None;
    };
    if !nl.is_alive(g)
        || nl.gate_type(g) != want
        || nl.gate_inputs(g).len() != arity
        || nl.is_output_net(net)
        || counts.get(net) != 1
    {
        return None;
    }
    Some(g)
}

/// `NOR(AND(a,b), c)` → `AOI21` and friends; `NAND(OR(a,b), c)` → `OAI21`
/// and friends.
fn try_aoi_oai(nl: &mut Netlist, g: GateId, library: CellLibrary, counts: &ReaderCounts) -> bool {
    let ty = nl.gate_type(g);
    let (inner_ty, family21, family22) = match ty {
        GateType::Nor => (GateType::And, GateType::Aoi21, GateType::Aoi22),
        GateType::Nand => (GateType::Or, GateType::Oai21, GateType::Oai22),
        _ => return false,
    };
    let ins: Vec<NetId> = nl.gate_inputs(g).to_vec();
    if ins.len() != 2 {
        return false;
    }
    let d0 = single_driver(nl, ins[0], inner_ty, 2, counts);
    let d1 = single_driver(nl, ins[1], inner_ty, 2, counts);
    let out = nl.gate_output(g);
    match (d0, d1) {
        (Some(a), Some(b)) if library.allows(family22, 4) => {
            let mut new_ins = nl.gate_inputs(a).to_vec();
            new_ins.extend_from_slice(nl.gate_inputs(b));
            let role = roles_of(nl, &[g, a, b]);
            nl.remove_gate(g);
            nl.remove_gate(a);
            nl.remove_gate(b);
            let ng = nl.add_gate_into(family22, &new_ins, out);
            nl.set_role(ng, role);
            true
        }
        (Some(inner), None) | (None, Some(inner)) if library.allows(family21, 3) => {
            let other = if d0.is_some() { ins[1] } else { ins[0] };
            let mut new_ins = nl.gate_inputs(inner).to_vec();
            new_ins.push(other);
            let role = roles_of(nl, &[g, inner]);
            nl.remove_gate(g);
            nl.remove_gate(inner);
            let ng = nl.add_gate_into(family21, &new_ins, out);
            nl.set_role(ng, role);
            true
        }
        _ => false,
    }
}

/// `OR(AND(a, INV(s)), AND(b, s))` → `MUX2(a, b, s)`.
fn try_mux(nl: &mut Netlist, g: GateId, library: CellLibrary, counts: &ReaderCounts) -> bool {
    if nl.gate_type(g) != GateType::Or
        || nl.gate_inputs(g).len() != 2
        || !library.allows(GateType::Mux2, 3)
    {
        return false;
    }
    let ins: Vec<NetId> = nl.gate_inputs(g).to_vec();
    let Some(x) = single_driver(nl, ins[0], GateType::And, 2, counts) else {
        return false;
    };
    let Some(y) = single_driver(nl, ins[1], GateType::And, 2, counts) else {
        return false;
    };
    // Find (data, select) split: one AND input must be INV(sel) where sel
    // is an input of the other AND.
    let x_ins: Vec<NetId> = nl.gate_inputs(x).to_vec();
    let y_ins: Vec<NetId> = nl.gate_inputs(y).to_vec();
    for (ni, &maybe_nsel) in x_ins.iter().enumerate() {
        let Driver::Gate(invg) = nl.driver(maybe_nsel) else {
            continue;
        };
        if !nl.is_alive(invg) || nl.gate_type(invg) != GateType::Inv {
            continue;
        }
        let sel = nl.gate_inputs(invg)[0];
        for (pi, &cand) in y_ins.iter().enumerate() {
            if cand == sel {
                let a = x_ins[1 - ni];
                let b = y_ins[1 - pi];
                let role = roles_of(nl, &[g, x, y]);
                let out = nl.gate_output(g);
                nl.remove_gate(g);
                nl.remove_gate(x);
                nl.remove_gate(y);
                // The inverter may have other readers; leave it for the
                // dead sweep.
                let ng = nl.add_gate_into(GateType::Mux2, &[a, b, sel], out);
                nl.set_role(ng, role);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::const_prop::sweep_dead;
    use rand::SeedableRng;

    #[test]
    fn demorgan_preserves_function() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let c = nl.add_primary_input("c");
        let g1 = nl.add_gate(GateType::And, &[a, b]);
        let g2 = nl.add_gate(GateType::Or, &[nl.gate_output(g1), c]);
        nl.add_output("y", nl.gate_output(g2));
        let mut rng = StdRng::seed_from_u64(3);
        let n = demorgan(&mut nl, &mut rng, CellLibrary::Lpe65, 1.0);
        assert!(n >= 2, "expected rewrites, got {n}");
        for bits in 0..8u32 {
            let p: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            let expected = (p[0] & p[1]) | p[2];
            assert_eq!(nl.eval_outputs(&p, &[]).unwrap(), vec![expected]);
        }
    }

    #[test]
    fn aoi21_extraction() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let c = nl.add_primary_input("c");
        let and = nl.add_gate(GateType::And, &[a, b]);
        let nor = nl.add_gate(GateType::Nor, &[nl.gate_output(and), c]);
        nl.add_output("y", nl.gate_output(nor));
        let mut rng = StdRng::seed_from_u64(1);
        let n = map_complex_cells(&mut nl, &mut rng, CellLibrary::Lpe65, 1.0);
        assert_eq!(n, 1);
        sweep_dead(&mut nl);
        let g = nl.gate_ids().next().unwrap();
        assert_eq!(nl.gate_type(g), GateType::Aoi21);
        for bits in 0..8u32 {
            let p: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            let expected = !((p[0] & p[1]) | p[2]);
            assert_eq!(nl.eval_outputs(&p, &[]).unwrap(), vec![expected]);
        }
    }

    #[test]
    fn mux_extraction() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let s = nl.add_primary_input("s");
        let ns = nl.add_gate(GateType::Inv, &[s]);
        let x = nl.add_gate(GateType::And, &[a, nl.gate_output(ns)]);
        let y = nl.add_gate(GateType::And, &[b, s]);
        let or = nl.add_gate(GateType::Or, &[nl.gate_output(x), nl.gate_output(y)]);
        nl.add_output("y", nl.gate_output(or));
        let mut rng = StdRng::seed_from_u64(1);
        let n = map_complex_cells(&mut nl, &mut rng, CellLibrary::Lpe65, 1.0);
        assert_eq!(n, 1);
        sweep_dead(&mut nl);
        assert!(nl.gate_ids().any(|g| nl.gate_type(g) == GateType::Mux2));
        for bits in 0..8u32 {
            let p: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            let expected = if p[2] { p[1] } else { p[0] };
            assert_eq!(nl.eval_outputs(&p, &[]).unwrap(), vec![expected]);
        }
    }

    #[test]
    fn shared_inner_gate_blocks_extraction() {
        // The AND feeds two readers; AOI extraction must not fire.
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let c = nl.add_primary_input("c");
        let and = nl.add_gate(GateType::And, &[a, b]);
        let nor = nl.add_gate(GateType::Nor, &[nl.gate_output(and), c]);
        nl.add_output("y", nl.gate_output(nor));
        nl.add_output("z", nl.gate_output(and));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            map_complex_cells(&mut nl, &mut rng, CellLibrary::Lpe65, 1.0),
            0
        );
    }
}
