//! SAT solving and combinational equivalence checking.
//!
//! Three layers:
//!
//! - [`Solver`]: a CDCL SAT solver (two-watched literals, VSIDS, phase
//!   saving, Luby restarts, learnt-clause DB reduction, assumptions,
//!   conflict budgets);
//! - [`encode_netlist`]: Tseitin encoding of a
//!   [`gnnunlock_netlist::Netlist`] into CNF with shared-input support for
//!   miter construction;
//! - [`check_equivalence`]: the Formality stand-in — a staged pipeline
//!   (bit-parallel random-simulation prefilter, output-cone-partitioned
//!   incremental SAT miters solved across a worker pool), used to verify
//!   recovered designs and by the FALL / SAT-attack baselines. The
//!   pre-pipeline monolithic checker is retained as [`equiv::reference`]
//!   for oracle comparisons and benchmarking.
//!
//! # Examples
//!
//! ```
//! use gnnunlock_sat::{check_equivalence, EquivOptions};
//! use gnnunlock_netlist::generator::BenchmarkSpec;
//!
//! let nl = BenchmarkSpec::named("c2670").unwrap().scaled(0.02).generate();
//! let r = check_equivalence(&nl, &nl.clone(), &EquivOptions::default());
//! assert!(r.is_equivalent());
//! ```

#![warn(missing_docs)]

mod dimacs;
mod encode;
pub mod equiv;
mod lit;
mod solver;

pub use dimacs::Cnf;
pub use encode::{
    assert_lit, encode_netlist, encode_netlist_filtered, fresh_lit, or_lit, xor_lit,
    CircuitEncoding, StrashTable,
};
pub use equiv::{
    check_equivalence, check_equivalence_stats, EquivOptions, EquivResult, VerifyStats,
};
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
