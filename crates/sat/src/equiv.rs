//! Miter-based combinational equivalence checking — the stand-in for
//! Synopsys Formality in the paper's evaluation flow (Fig. 4).
//!
//! Two netlists are compared over their shared primary inputs; key inputs
//! of either side may be bound to constant values (checking a locked
//! circuit under a specific key against the original). A fast 64-way
//! random-simulation pass runs first; only if it finds no difference is
//! the SAT miter solved.

use crate::encode::{assert_lit, encode_netlist, or_lit, xor_lit};
use crate::lit::Lit;
use crate::solver::{SolveResult, Solver};
use gnnunlock_netlist::Netlist;
use std::collections::HashMap;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivResult {
    /// The circuits agree on every input pattern.
    Equivalent,
    /// A distinguishing primary-input pattern (in `a`'s PI declaration
    /// order) was found.
    NotEquivalent(Vec<bool>),
    /// The circuits' interfaces cannot be matched.
    InterfaceMismatch(String),
}

impl EquivResult {
    /// `true` when the result is [`EquivResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Configuration for [`check_equivalence`].
#[derive(Debug, Clone, Default)]
pub struct EquivOptions {
    /// Key values for `a`'s key inputs (`keyinput{i}` gets bit `i`).
    pub key_a: Option<Vec<bool>>,
    /// Key values for `b`'s key inputs.
    pub key_b: Option<Vec<bool>>,
    /// Number of 64-pattern random-simulation words to try before SAT
    /// (default 32 → 2048 patterns).
    pub sim_words: usize,
    /// RNG seed for the simulation prefilter.
    pub seed: u64,
}

/// Check combinational equivalence of `a` and `b`.
///
/// Primary inputs and outputs are matched by name; both sides must expose
/// the same sets. Unbound key inputs are treated as free variables, i.e.
/// the check asks whether the circuits agree for *every* key — bind keys
/// via [`EquivOptions`] for the usual locked-vs-original comparison.
pub fn check_equivalence(a: &Netlist, b: &Netlist, opts: &EquivOptions) -> EquivResult {
    // Interface matching.
    let mut a_pis: Vec<String> = a
        .inputs()
        .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
        .map(|(n, _, _)| n.to_string())
        .collect();
    let mut b_pis: Vec<String> = b
        .inputs()
        .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
        .map(|(n, _, _)| n.to_string())
        .collect();
    a_pis.sort();
    b_pis.sort();
    if a_pis != b_pis {
        return EquivResult::InterfaceMismatch(format!(
            "primary inputs differ: {} vs {}",
            a_pis.len(),
            b_pis.len()
        ));
    }
    let mut a_pos: Vec<String> = a.outputs().map(|(n, _)| n.to_string()).collect();
    let mut b_pos: Vec<String> = b.outputs().map(|(n, _)| n.to_string()).collect();
    a_pos.sort();
    a_pos.dedup();
    b_pos.sort();
    b_pos.dedup();
    if a_pos != b_pos {
        return EquivResult::InterfaceMismatch(format!(
            "primary outputs differ: {} vs {}",
            a_pos.len(),
            b_pos.len()
        ));
    }

    if let Some(cex) = simulate_difference(a, b, opts) {
        return EquivResult::NotEquivalent(cex);
    }

    // SAT miter.
    let mut solver = Solver::new();
    let enc_a = encode_netlist(&mut solver, a, None);
    let shared: HashMap<String, Lit> = enc_a
        .primary_inputs
        .iter()
        .map(|(n, l)| (n.clone(), *l))
        .collect();
    let enc_b = encode_netlist(&mut solver, b, Some(&shared));
    if let Some(key) = &opts.key_a {
        bind_key(&mut solver, &enc_a.key_inputs, key);
    }
    if let Some(key) = &opts.key_b {
        bind_key(&mut solver, &enc_b.key_inputs, key);
    }
    let out_b: HashMap<&str, Lit> = enc_b
        .outputs
        .iter()
        .map(|(n, l)| (n.as_str(), *l))
        .collect();
    let diffs: Vec<Lit> = enc_a
        .outputs
        .iter()
        .map(|(n, la)| xor_lit(&mut solver, *la, out_b[n.as_str()]))
        .collect();
    let any_diff = or_lit(&mut solver, &diffs);
    assert_lit(&mut solver, any_diff, true);
    match solver.solve() {
        SolveResult::Unsat => EquivResult::Equivalent,
        SolveResult::Sat => {
            let cex = a
                .inputs()
                .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
                .map(|(n, _, _)| {
                    let lit = enc_a
                        .primary_inputs
                        .iter()
                        .find(|(pn, _)| pn == n)
                        .map(|&(_, l)| l)
                        .expect("pi encoded");
                    solver.model_lit(lit).unwrap_or(false)
                })
                .collect();
            EquivResult::NotEquivalent(cex)
        }
    }
}

fn bind_key(solver: &mut Solver, kis: &[(String, Lit)], key: &[bool]) {
    for (name, lit) in kis {
        let idx: usize = name
            .trim_start_matches(gnnunlock_netlist::KEY_INPUT_PREFIX)
            .parse()
            .unwrap_or(0);
        let value = key.get(idx).copied().unwrap_or(false);
        assert_lit(solver, *lit, value);
    }
}

/// Random-simulation prefilter: returns a counterexample pattern if one is
/// found. Only meaningful when both keys are bound (free keys require SAT).
fn simulate_difference(a: &Netlist, b: &Netlist, opts: &EquivOptions) -> Option<Vec<bool>> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let a_kis = a.key_inputs().len();
    let b_kis = b.key_inputs().len();
    if (a_kis > 0 && opts.key_a.is_none()) || (b_kis > 0 && opts.key_b.is_none()) {
        return None; // cannot fix keys for simulation
    }
    let names: Vec<String> = a
        .inputs()
        .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
        .map(|(n, _, _)| n.to_string())
        .collect();
    let b_order: Vec<usize> = b
        .inputs()
        .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
        .map(|(n, _, _)| names.iter().position(|x| x == n).expect("matched"))
        .collect();
    let key_a = opts.key_a.clone().unwrap_or_default();
    let key_b = opts.key_b.clone().unwrap_or_default();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let words = if opts.sim_words == 0 {
        32
    } else {
        opts.sim_words
    };
    let n_patterns = words * 64;
    let mut pi_a: Vec<Vec<bool>> = Vec::with_capacity(n_patterns);
    for _ in 0..n_patterns {
        pi_a.push((0..names.len()).map(|_| rng.random_bool(0.5)).collect());
    }
    let ki_a = vec![key_a.clone(); n_patterns];
    let out_a = a.eval_many(&pi_a, &ki_a).ok()?;
    let pi_b: Vec<Vec<bool>> = pi_a
        .iter()
        .map(|p| b_order.iter().map(|&i| p[i]).collect())
        .collect();
    let ki_b = vec![key_b.clone(); n_patterns];
    let out_b = b.eval_many(&pi_b, &ki_b).ok()?;
    // Compare by output name.
    let a_out_names: Vec<&str> = a.outputs().map(|(n, _)| n).collect();
    let b_out_names: Vec<&str> = b.outputs().map(|(n, _)| n).collect();
    let b_pos: Vec<usize> = a_out_names
        .iter()
        .map(|n| b_out_names.iter().position(|x| x == n).expect("matched"))
        .collect();
    for (i, (ra, rb)) in out_a.iter().zip(&out_b).enumerate() {
        for (j, &bj) in b_pos.iter().enumerate() {
            if ra[j] != rb[bj] {
                return Some(pi_a[i].clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_netlist::generator::BenchmarkSpec;
    use gnnunlock_netlist::GateType;

    #[test]
    fn identical_circuits_are_equivalent() {
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let r = check_equivalence(&nl, &nl.clone(), &EquivOptions::default());
        assert!(r.is_equivalent());
    }

    #[test]
    fn single_gate_change_is_caught() {
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let mut other = nl.clone();
        // Flip one gate type (And -> Nand preserves arity).
        let victim = other
            .gate_ids()
            .find(|&g| other.gate_type(g) == GateType::And)
            .expect("an AND exists");
        other.set_gate_type(victim, GateType::Nand);
        match check_equivalence(&nl, &other, &EquivOptions::default()) {
            EquivResult::NotEquivalent(cex) => {
                let out_a = nl.eval_outputs(&cex, &[]).unwrap();
                let out_b = other.eval_outputs(&cex, &[]).unwrap();
                assert_ne!(out_a, out_b, "counterexample does not distinguish");
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn structurally_different_but_equal_functions() {
        // y = !(a & b) vs y = !a | !b (De Morgan).
        let mut x = Netlist::new("x");
        let a = x.add_primary_input("a");
        let b = x.add_primary_input("b");
        let g = x.add_gate(GateType::Nand, &[a, b]);
        x.add_output("y", x.gate_output(g));

        let mut y = Netlist::new("y");
        let a2 = y.add_primary_input("a");
        let b2 = y.add_primary_input("b");
        let na = y.add_gate(GateType::Inv, &[a2]);
        let nb = y.add_gate(GateType::Inv, &[b2]);
        let o = y.add_gate(GateType::Or, &[y.gate_output(na), y.gate_output(nb)]);
        y.add_output("y", y.gate_output(o));

        assert!(check_equivalence(&x, &y, &EquivOptions::default()).is_equivalent());
    }

    #[test]
    fn interface_mismatch_detected() {
        let mut x = Netlist::new("x");
        let a = x.add_primary_input("a");
        let g = x.add_gate(GateType::Inv, &[a]);
        x.add_output("y", x.gate_output(g));
        let mut y = Netlist::new("y");
        let a2 = y.add_primary_input("different");
        let g2 = y.add_gate(GateType::Inv, &[a2]);
        y.add_output("y", y.gate_output(g2));
        assert!(matches!(
            check_equivalence(&x, &y, &EquivOptions::default()),
            EquivResult::InterfaceMismatch(_)
        ));
    }

    #[test]
    fn locked_circuit_equivalent_under_correct_key_only() {
        // Minimal inline "locking": y = a XOR k, correct key = 0.
        let mut orig = Netlist::new("o");
        let a = orig.add_primary_input("a");
        let g = orig.add_gate(GateType::Buf, &[a]);
        orig.add_output("y", orig.gate_output(g));

        let mut locked = Netlist::new("l");
        let a2 = locked.add_primary_input("a");
        let k = locked.add_key_input("keyinput0");
        let g2 = locked.add_gate(GateType::Xor, &[a2, k]);
        locked.add_output("y", locked.gate_output(g2));

        let good = EquivOptions {
            key_b: Some(vec![false]),
            ..Default::default()
        };
        assert!(check_equivalence(&orig, &locked, &good).is_equivalent());
        let bad = EquivOptions {
            key_b: Some(vec![true]),
            ..Default::default()
        };
        assert!(!check_equivalence(&orig, &locked, &bad).is_equivalent());
    }

    // Placeholder module so the test above reads naturally without a
    // dependency on the locking crate (which depends on us... it does not,
    // but keep the layering clean).
    mod gnnunlock_locking_like {}
}
