//! Staged combinational equivalence checking — the stand-in for
//! Synopsys Formality in the paper's evaluation flow (Fig. 4).
//!
//! Two netlists are compared over their shared primary inputs; key inputs
//! of either side may be bound to constant values (checking a locked
//! circuit under a specific key against the original). The check runs as
//! a pipeline of stages, each discharging the instance as cheaply as it
//! can before handing the rest to the next:
//!
//! 1. **Bit-parallel prefilter** — `sim_words` rounds of 64-way random
//!    word simulation directly on both netlists (one random `u64` per
//!    primary input, word-level XOR compare over matched outputs);
//!    bit-index extraction happens only on a mismatch. Most
//!    not-equivalent instances die here without ever touching CNF.
//! 2. **Output-cone partitioning** — primary outputs are grouped by
//!    shared transitive-fanin support ([`Netlist::output_cones`] +
//!    union-find), and each group becomes an independent sub-miter over
//!    only its cone's logic. Cones are solved across a worker pool;
//!    verdict selection is deterministic (the lowest cone index with a
//!    difference wins), so results are byte-identical at any worker
//!    count.
//! 3. **Incremental solving** — each worker encodes its cones' logic
//!    once and checks every owned cone through
//!    [`Solver::solve_with_assumptions`] with a per-cone activation
//!    literal, so learned clauses are reused across the output family
//!    instead of re-deriving them per miter.
//!
//! Counterexamples are canonicalized by re-solving the winning cone in a
//! fresh solver, which makes the returned pattern independent of which
//! worker found the difference first.
//!
//! The pre-pipeline monolithic checker survives verbatim as
//! [`reference`], the oracle the proptests and the `BENCH_verify`
//! harness compare against.

use crate::encode::{assert_lit, encode_netlist_filtered, fresh_lit, or_lit, xor_lit, StrashTable};
use crate::lit::Lit;
use crate::solver::{SolveResult, Solver};
use gnnunlock_netlist::{InputKind, Netlist, OutputCone, KEY_INPUT_PREFIX};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivResult {
    /// The circuits agree on every input pattern.
    Equivalent,
    /// A distinguishing primary-input pattern (in `a`'s PI declaration
    /// order) was found.
    NotEquivalent(Vec<bool>),
    /// The circuits' interfaces cannot be matched.
    InterfaceMismatch(String),
}

impl EquivResult {
    /// `true` when the result is [`EquivResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Configuration for [`check_equivalence`].
#[derive(Debug, Clone, Default)]
pub struct EquivOptions {
    /// Key values for `a`'s key inputs (`keyinput{i}` gets bit `i`).
    pub key_a: Option<Vec<bool>>,
    /// Key values for `b`'s key inputs.
    pub key_b: Option<Vec<bool>>,
    /// Number of 64-pattern random-simulation words to try before SAT
    /// (default 32 → 2048 patterns).
    pub sim_words: usize,
    /// RNG seed for the simulation prefilter.
    pub seed: u64,
    /// Worker threads for the cone-partitioned SAT stage (`0` and `1`
    /// both mean serial). Verdicts and counterexamples are byte-identical
    /// at any value — the lowest not-equivalent cone index always wins,
    /// and its counterexample is re-derived in a fresh solver.
    pub workers: usize,
}

/// Aggregate statistics of one staged equivalence check: how far each
/// stage got and what the SAT search cost. Purely observational — the
/// verdict never depends on them — and summed across every worker of
/// the cone stage (plus the canonical-counterexample re-solve).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// The random-simulation prefilter found the counterexample; no CNF
    /// was ever built.
    pub prefilter_discharged: bool,
    /// Output-cone groups the SAT stage partitioned the miter into
    /// (0 when the prefilter discharged the instance).
    pub cones: usize,
    /// Cones whose every output collapsed to identical literals under
    /// structural hashing — equivalent with no SAT search at all.
    pub strash_collapsed_cones: usize,
    /// `solve` / `solve_with_assumptions` queries issued.
    pub solver_calls: u64,
    /// Conflicts across every solver involved.
    pub conflicts: u64,
    /// Decisions across every solver involved.
    pub decisions: u64,
    /// Unit propagations across every solver involved.
    pub propagations: u64,
    /// Restarts across every solver involved.
    pub restarts: u64,
    /// Learnt clauses still live per worker solver at the end of its
    /// cone family — reuse across the family is the point of the
    /// incremental encoding.
    pub learnt_clauses: u64,
}

/// Shared accumulator the cone-stage workers fold their solver costs
/// into (relaxed atomics; the totals are read only after the worker
/// scope joins).
#[derive(Default)]
struct StatsAcc {
    solver_calls: AtomicU64,
    conflicts: AtomicU64,
    decisions: AtomicU64,
    propagations: AtomicU64,
    restarts: AtomicU64,
    learnt_clauses: AtomicU64,
    strash_collapsed: AtomicU64,
}

impl StatsAcc {
    /// Fold one solver's cumulative stats (and live learnt count) in.
    fn fold_solver(&self, solver: &Solver) {
        let s = solver.stats();
        self.conflicts.fetch_add(s.conflicts, Ordering::Relaxed);
        self.decisions.fetch_add(s.decisions, Ordering::Relaxed);
        self.propagations
            .fetch_add(s.propagations, Ordering::Relaxed);
        self.restarts.fetch_add(s.restarts, Ordering::Relaxed);
        self.learnt_clauses
            .fetch_add(solver.num_learnts() as u64, Ordering::Relaxed);
    }
}

/// The matched interface of the two circuits: name↔position index maps
/// built once up front (the old checker re-scanned name lists per output
/// and per primary input during counterexample extraction).
struct Interface {
    /// For each `b` primary input (in `b` declaration order), its
    /// position in `a`'s primary-input declaration order.
    b_pi_to_a: Vec<usize>,
    /// `a` output names in declaration order.
    a_out_names: Vec<String>,
    /// For each `a` output position, the matching `b` output position
    /// (by name; the last duplicate wins, matching the monolithic
    /// checker's map semantics).
    b_out_pos: Vec<usize>,
    /// Parsed `keyinput{i}` indices per `a` key input in declaration
    /// order; empty when `a`'s key is unbound.
    a_key_idx: Vec<usize>,
    /// Same for `b`.
    b_key_idx: Vec<usize>,
}

fn primary_input_names(nl: &Netlist) -> Vec<String> {
    nl.inputs()
        .filter(|(_, k, _)| *k == InputKind::Primary)
        .map(|(n, _, _)| n.to_string())
        .collect()
}

/// Parse the `keyinput{i}` bit index out of a key-input name.
fn key_bit_index(name: &str) -> Option<usize> {
    name.strip_prefix(KEY_INPUT_PREFIX)?.parse().ok()
}

/// Parse every key-input bit index of `nl`, in declaration order.
fn key_indices(nl: &Netlist) -> Result<Vec<usize>, String> {
    nl.inputs()
        .filter(|(_, k, _)| *k == InputKind::Key)
        .map(|(name, _, _)| {
            key_bit_index(name)
                .ok_or_else(|| format!("malformed key input name '{name}' (want keyinput<N>)"))
        })
        .collect()
}

impl Interface {
    fn match_up(a: &Netlist, b: &Netlist, opts: &EquivOptions) -> Result<Interface, String> {
        let a_pis = primary_input_names(a);
        let b_pis = primary_input_names(b);
        let mut a_sorted = a_pis.clone();
        let mut b_sorted = b_pis.clone();
        a_sorted.sort();
        b_sorted.sort();
        if a_sorted != b_sorted {
            return Err(format!(
                "primary inputs differ: {} vs {}",
                a_pis.len(),
                b_pis.len()
            ));
        }
        let a_out_names: Vec<String> = a.outputs().map(|(n, _)| n.to_string()).collect();
        let b_out_names: Vec<&str> = b.outputs().map(|(n, _)| n).collect();
        let mut a_pos: Vec<&str> = a_out_names.iter().map(String::as_str).collect();
        let mut b_pos = b_out_names.clone();
        a_pos.sort();
        a_pos.dedup();
        b_pos.sort();
        b_pos.dedup();
        if a_pos != b_pos {
            return Err(format!(
                "primary outputs differ: {} vs {}",
                a_pos.len(),
                b_pos.len()
            ));
        }
        let a_pi_index: HashMap<&str, usize> = a_pis
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let b_pi_to_a = b_pis.iter().map(|n| a_pi_index[n.as_str()]).collect();
        let b_out_index: HashMap<&str, usize> = b_out_names
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, i))
            .collect();
        let b_out_pos = a_out_names
            .iter()
            .map(|n| b_out_index[n.as_str()])
            .collect();
        let a_key_idx = if opts.key_a.is_some() {
            key_indices(a)?
        } else {
            Vec::new()
        };
        let b_key_idx = if opts.key_b.is_some() {
            key_indices(b)?
        } else {
            Vec::new()
        };
        Ok(Interface {
            b_pi_to_a,
            a_out_names,
            b_out_pos,
            a_key_idx,
            b_key_idx,
        })
    }
}

/// Check combinational equivalence of `a` and `b`.
///
/// Primary inputs and outputs are matched by name; both sides must expose
/// the same sets. Unbound key inputs are treated as free variables, i.e.
/// the check asks whether the circuits agree for *every* key — bind keys
/// via [`EquivOptions`] for the usual locked-vs-original comparison.
///
/// Bound keys require canonical `keyinput{i}` names; anything else is an
/// [`EquivResult::InterfaceMismatch`] (the bit a malformed name should
/// bind to is unknowable, and guessing bit 0 silently verifies the wrong
/// circuit).
///
/// The result — including the counterexample pattern — is a pure
/// function of `(a, b, opts)` minus `opts.workers`: any worker count
/// produces identical bytes.
pub fn check_equivalence(a: &Netlist, b: &Netlist, opts: &EquivOptions) -> EquivResult {
    check_equivalence_stats(a, b, opts).0
}

/// [`check_equivalence`] plus the per-check [`VerifyStats`]. The
/// verdict is identical; the stats are observational (and mirrored
/// into the process-wide telemetry registry).
pub fn check_equivalence_stats(
    a: &Netlist,
    b: &Netlist,
    opts: &EquivOptions,
) -> (EquivResult, VerifyStats) {
    let mut stats = VerifyStats::default();
    let iface = match Interface::match_up(a, b, opts) {
        Ok(iface) => iface,
        Err(msg) => return (EquivResult::InterfaceMismatch(msg), stats),
    };
    if let Some(cex) = word_prefilter(a, b, opts, &iface) {
        stats.prefilter_discharged = true;
        metrics::mirror(&stats);
        return (EquivResult::NotEquivalent(cex), stats);
    }
    let result = solve_cones(a, b, opts, &iface, &mut stats);
    metrics::mirror(&stats);
    (result, stats)
}

/// Process-wide telemetry mirrors of [`VerifyStats`] (resolved once;
/// increments are relaxed atomics off the solver's inner loops — stats
/// are folded per check, never per conflict).
mod metrics {
    use super::VerifyStats;
    use gnnunlock_telemetry::{Counter, Registry};
    use std::sync::OnceLock;

    fn counter(
        slot: &'static OnceLock<Counter>,
        name: &'static str,
        help: &'static str,
    ) -> &'static Counter {
        slot.get_or_init(|| Registry::global().counter_with(name, help, &[]))
    }

    macro_rules! sat_counter {
        ($fn_name:ident, $name:literal, $help:literal) => {
            fn $fn_name() -> &'static Counter {
                static C: OnceLock<Counter> = OnceLock::new();
                counter(&C, $name, $help)
            }
        };
    }

    sat_counter!(
        checks,
        "sat_equiv_checks_total",
        "Staged equivalence checks completed."
    );
    sat_counter!(
        prefilter,
        "sat_prefilter_discharged_total",
        "Checks discharged by the random-simulation prefilter (no CNF built)."
    );
    sat_counter!(
        cones,
        "sat_cones_total",
        "Output-cone groups partitioned across all checks."
    );
    sat_counter!(
        strash_collapsed,
        "sat_strash_collapsed_cones_total",
        "Cones proved equivalent by structural hashing alone (no SAT search)."
    );
    sat_counter!(
        solver_calls,
        "sat_solver_calls_total",
        "SAT solve queries issued by the equivalence pipeline."
    );
    sat_counter!(
        conflicts,
        "sat_conflicts_total",
        "Solver conflicts across all equivalence checks."
    );
    sat_counter!(
        propagations,
        "sat_propagations_total",
        "Solver unit propagations across all equivalence checks."
    );
    sat_counter!(
        learnt,
        "sat_learnt_clauses_total",
        "Learnt clauses live at the end of each worker's cone family."
    );

    pub(super) fn mirror(stats: &VerifyStats) {
        checks().inc();
        if stats.prefilter_discharged {
            prefilter().inc();
        }
        cones().add(stats.cones as u64);
        strash_collapsed().add(stats.strash_collapsed_cones as u64);
        solver_calls().add(stats.solver_calls);
        conflicts().add(stats.conflicts);
        propagations().add(stats.propagations);
        learnt().add(stats.learnt_clauses);
    }
}

// ---------------------------------------------------------------------
// Stage 1: bit-parallel random-simulation prefilter.

/// Random-simulation prefilter: returns a counterexample pattern if one
/// is found. Only meaningful when both keys are bound (free keys require
/// SAT). Works directly on 64-wide simulation words — one random `u64`
/// per primary input per round, constant words for the bound key bits —
/// and extracts a Boolean pattern only for the first differing bit.
fn word_prefilter(
    a: &Netlist,
    b: &Netlist,
    opts: &EquivOptions,
    iface: &Interface,
) -> Option<Vec<bool>> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let a_kis = a.key_inputs();
    let b_kis = b.key_inputs();
    if (!a_kis.is_empty() && opts.key_a.is_none()) || (!b_kis.is_empty() && opts.key_b.is_none()) {
        return None; // cannot fix keys for simulation
    }
    let a_order = a.topo_order().ok()?;
    let b_order = b.topo_order().ok()?;
    let a_pis = a.primary_inputs();
    let b_pis = b.primary_inputs();
    let a_out_nets = a.output_nets();
    let b_out_nets = b.output_nets();

    let mut a_in = vec![0u64; a.num_nets()];
    let mut b_in = vec![0u64; b.num_nets()];
    let key_a = opts.key_a.as_deref().unwrap_or(&[]);
    let key_b = opts.key_b.as_deref().unwrap_or(&[]);
    for (net, &idx) in a_kis.iter().zip(&iface.a_key_idx) {
        a_in[net.index()] = word_of(key_a.get(idx).copied().unwrap_or(false));
    }
    for (net, &idx) in b_kis.iter().zip(&iface.b_key_idx) {
        b_in[net.index()] = word_of(key_b.get(idx).copied().unwrap_or(false));
    }

    let words = if opts.sim_words == 0 {
        32
    } else {
        opts.sim_words
    };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut pi_words = vec![0u64; a_pis.len()];
    let (mut wa, mut wb) = (Vec::new(), Vec::new());
    for _ in 0..words {
        for (w, net) in pi_words.iter_mut().zip(&a_pis) {
            *w = rng.random();
            a_in[net.index()] = *w;
        }
        for (net, &a_idx) in b_pis.iter().zip(&iface.b_pi_to_a) {
            b_in[net.index()] = pi_words[a_idx];
        }
        a.simulate_words_into(&a_order, &|n| a_in[n.index()], &mut wa);
        b.simulate_words_into(&b_order, &|n| b_in[n.index()], &mut wb);
        let mut diff = 0u64;
        for (p, an) in a_out_nets.iter().enumerate() {
            let bn = b_out_nets[iface.b_out_pos[p]];
            diff |= wa[an.index()] ^ wb[bn.index()];
        }
        if diff != 0 {
            // Lowest differing bit = lowest pattern index in this word,
            // mirroring the monolithic checker's first-pattern rule.
            let bit = diff.trailing_zeros();
            return Some(pi_words.iter().map(|w| (w >> bit) & 1 == 1).collect());
        }
    }
    None
}

fn word_of(bit: bool) -> u64 {
    if bit {
        !0u64
    } else {
        0u64
    }
}

// ---------------------------------------------------------------------
// Stages 2+3: cone-partitioned incremental SAT.

/// Minimal union-find over output positions.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] != x {
            self.0[x] = self.0[self.0[x]];
            x = self.0[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins so group ordering is stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi] = lo;
        }
    }
}

/// Group `a`'s output positions into cones of shared transitive-fanin
/// support (an input shared through *either* circuit merges the
/// outputs). Cones are ordered by their smallest member position and
/// list members in ascending position order — the deterministic verdict
/// order.
fn partition_outputs(
    a: &Netlist,
    b: &Netlist,
    iface: &Interface,
    a_cones: &[OutputCone],
    b_cones: &[OutputCone],
) -> Vec<Vec<usize>> {
    let n_out = iface.a_out_names.len();
    let mut uf = UnionFind::new(n_out);
    let mut first_seen: HashMap<&str, usize> = HashMap::new();
    for p in 0..n_out {
        let sides = [(a, &a_cones[p]), (b, &b_cones[iface.b_out_pos[p]])];
        for (nl, cone) in sides {
            for &net in &cone.inputs {
                match first_seen.entry(nl.net_name(net)) {
                    std::collections::hash_map::Entry::Occupied(e) => uf.union(p, *e.get()),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                }
            }
        }
    }
    let mut group_of_root: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for p in 0..n_out {
        let root = uf.find(p);
        let g = *group_of_root.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(p);
    }
    groups
}

/// The per-worker encoding of the owned cones' logic, plus name-keyed
/// output literal maps.
struct ConeContext {
    solver: Solver,
    a_out: HashMap<String, Lit>,
    b_out: HashMap<String, Lit>,
    a_pi_lits: Vec<Lit>,
}

/// Encode the union of the given cones' logic for both circuits into a
/// fresh solver, sharing primary inputs and binding any fixed keys.
///
/// A single structural-hashing table spans both encodings, so wherever
/// `b` repeats `a`'s structure over the shared inputs the two sides
/// collapse to the *same literals* — a design checked against a clone
/// (or a perfectly recovered netlist) produces identical output
/// literals and its cones discharge without any SAT search.
#[allow(clippy::too_many_arguments)]
fn encode_cones(
    a: &Netlist,
    b: &Netlist,
    opts: &EquivOptions,
    iface: &Interface,
    a_cones: &[OutputCone],
    b_cones: &[OutputCone],
    groups: &[Vec<usize>],
    owned: impl Iterator<Item = usize>,
) -> ConeContext {
    let mut fa = vec![false; a.gate_capacity()];
    let mut fb = vec![false; b.gate_capacity()];
    for c in owned {
        for &p in &groups[c] {
            for &g in &a_cones[p].gates {
                fa[g.index()] = true;
            }
            for &g in &b_cones[iface.b_out_pos[p]].gates {
                fb[g.index()] = true;
            }
        }
    }
    let mut solver = Solver::new();
    let mut strash = StrashTable::new();
    let enc_a = encode_netlist_filtered(&mut solver, a, None, Some(&fa), Some(&mut strash));
    let shared: HashMap<String, Lit> = enc_a
        .primary_inputs
        .iter()
        .map(|(n, l)| (n.clone(), *l))
        .collect();
    let enc_b =
        encode_netlist_filtered(&mut solver, b, Some(&shared), Some(&fb), Some(&mut strash));
    if let Some(key) = &opts.key_a {
        for ((_, lit), &idx) in enc_a.key_inputs.iter().zip(&iface.a_key_idx) {
            assert_lit(&mut solver, *lit, key.get(idx).copied().unwrap_or(false));
        }
    }
    if let Some(key) = &opts.key_b {
        for ((_, lit), &idx) in enc_b.key_inputs.iter().zip(&iface.b_key_idx) {
            assert_lit(&mut solver, *lit, key.get(idx).copied().unwrap_or(false));
        }
    }
    let a_pi_lits = enc_a.primary_inputs.iter().map(|&(_, l)| l).collect();
    let into_map = |outs: Vec<(String, Lit)>| outs.into_iter().collect();
    ConeContext {
        solver,
        a_out: into_map(enc_a.outputs),
        b_out: into_map(enc_b.outputs),
        a_pi_lits,
    }
}

/// Build the sub-miter of one cone: a literal that is true iff some
/// output in the cone differs. Outputs that structural hashing already
/// proved identical (same literal on both sides) are skipped; `None`
/// means *every* output collapsed and the cone is equivalent without
/// any SAT search.
fn cone_diff_lit(ctx: &mut ConeContext, iface: &Interface, members: &[usize]) -> Option<Lit> {
    let diffs: Vec<Lit> = members
        .iter()
        .filter_map(|&p| {
            let name = iface.a_out_names[p].as_str();
            let la = ctx.a_out[name];
            let lb = ctx.b_out[name];
            if la == lb {
                None
            } else {
                Some(xor_lit(&mut ctx.solver, la, lb))
            }
        })
        .collect();
    if diffs.is_empty() {
        None
    } else {
        Some(or_lit(&mut ctx.solver, &diffs))
    }
}

/// Solve the cones a worker owns (ascending indices), incrementally in
/// one solver via per-cone activation literals; publishes the lowest
/// not-equivalent cone index into `best`.
#[allow(clippy::too_many_arguments)]
fn solve_owned_cones(
    a: &Netlist,
    b: &Netlist,
    opts: &EquivOptions,
    iface: &Interface,
    a_cones: &[OutputCone],
    b_cones: &[OutputCone],
    groups: &[Vec<usize>],
    owned: &[usize],
    best: &AtomicUsize,
    acc: &StatsAcc,
) {
    if owned.is_empty() {
        return;
    }
    let mut ctx = encode_cones(
        a,
        b,
        opts,
        iface,
        a_cones,
        b_cones,
        groups,
        owned.iter().copied(),
    );
    for &c in owned {
        // A lower cone already reported a difference: it wins the
        // verdict whatever we find, so everything at or above it is
        // dead work (owned indices ascend).
        if best.load(Ordering::Acquire) < c {
            break;
        }
        let Some(d) = cone_diff_lit(&mut ctx, iface, &groups[c]) else {
            // every output strash-collapsed: trivially equivalent
            acc.strash_collapsed.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let act = fresh_lit(&mut ctx.solver);
        ctx.solver.add_clause(&[!act, d]);
        acc.solver_calls.fetch_add(1, Ordering::Relaxed);
        if ctx.solver.solve_with_assumptions(&[act]) == SolveResult::Sat {
            best.fetch_min(c, Ordering::AcqRel);
            break;
        }
    }
    acc.fold_solver(&ctx.solver);
}

/// Re-solve the winning cone in a fresh solver to extract a canonical
/// counterexample: the model of a deterministic clause sequence, so the
/// pattern does not depend on which worker (or what learned-clause
/// history) found the difference.
#[allow(clippy::too_many_arguments)]
fn canonical_cex(
    a: &Netlist,
    b: &Netlist,
    opts: &EquivOptions,
    iface: &Interface,
    a_cones: &[OutputCone],
    b_cones: &[OutputCone],
    groups: &[Vec<usize>],
    winner: usize,
    acc: &StatsAcc,
) -> Vec<bool> {
    let mut ctx = encode_cones(
        a,
        b,
        opts,
        iface,
        a_cones,
        b_cones,
        groups,
        std::iter::once(winner),
    );
    let d = cone_diff_lit(&mut ctx, iface, &groups[winner])
        .expect("winning cone has at least one non-collapsed output diff");
    assert_lit(&mut ctx.solver, d, true);
    acc.solver_calls.fetch_add(1, Ordering::Relaxed);
    let r = ctx.solver.solve();
    assert_eq!(
        r,
        SolveResult::Sat,
        "winning cone must re-solve SAT (it did under assumptions)"
    );
    acc.fold_solver(&ctx.solver);
    ctx.a_pi_lits
        .iter()
        .map(|&l| ctx.solver.model_lit(l).unwrap_or(false))
        .collect()
}

/// The SAT stage: partition outputs into support cones, fan the cones
/// out over `opts.workers` threads (each with one incremental solver
/// over its cones' union logic), pick the deterministic winner.
fn solve_cones(
    a: &Netlist,
    b: &Netlist,
    opts: &EquivOptions,
    iface: &Interface,
    stats: &mut VerifyStats,
) -> EquivResult {
    let n_out = iface.a_out_names.len();
    if n_out == 0 {
        return EquivResult::Equivalent;
    }
    let a_cones = a.output_cones();
    let b_cones = b.output_cones();
    let groups = partition_outputs(a, b, iface, &a_cones, &b_cones);
    stats.cones = groups.len();
    let workers = opts.workers.max(1).min(groups.len());
    let best = AtomicUsize::new(usize::MAX);
    let acc = StatsAcc::default();
    if workers <= 1 {
        let owned: Vec<usize> = (0..groups.len()).collect();
        solve_owned_cones(
            a, b, opts, iface, &a_cones, &b_cones, &groups, &owned, &best, &acc,
        );
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (a_cones, b_cones, groups, best, acc) =
                    (&a_cones, &b_cones, &groups, &best, &acc);
                let owned: Vec<usize> = (w..groups.len()).step_by(workers).collect();
                scope.spawn(move || {
                    solve_owned_cones(
                        a, b, opts, iface, a_cones, b_cones, groups, &owned, best, acc,
                    );
                });
            }
        });
    }
    let result = match best.into_inner() {
        usize::MAX => EquivResult::Equivalent,
        winner => EquivResult::NotEquivalent(canonical_cex(
            a, b, opts, iface, &a_cones, &b_cones, &groups, winner, &acc,
        )),
    };
    stats.strash_collapsed_cones = acc.strash_collapsed.load(Ordering::Relaxed) as usize;
    stats.solver_calls = acc.solver_calls.load(Ordering::Relaxed);
    stats.conflicts = acc.conflicts.load(Ordering::Relaxed);
    stats.decisions = acc.decisions.load(Ordering::Relaxed);
    stats.propagations = acc.propagations.load(Ordering::Relaxed);
    stats.restarts = acc.restarts.load(Ordering::Relaxed);
    stats.learnt_clauses = acc.learnt_clauses.load(Ordering::Relaxed);
    result
}

pub mod reference {
    //! The pre-pipeline monolithic equivalence checker, kept verbatim as
    //! the oracle the staged path is validated and benchmarked against
    //! (the `BENCH_verify.json` `baseline_ns` column times this path,
    //! per-pattern `Vec<Vec<bool>>` allocation storm and quadratic name
    //! lookups included — it is the honest historical baseline, exactly
    //! like `gnnunlock_neural::reference` for the kernels).

    use super::{EquivOptions, EquivResult};
    use crate::encode::{assert_lit, encode_netlist, or_lit, xor_lit};
    use crate::lit::Lit;
    use crate::solver::{SolveResult, Solver};
    use gnnunlock_netlist::Netlist;
    use std::collections::HashMap;

    /// Monolithic check: per-pattern random simulation, then one SAT
    /// miter over every output at once. Same verdicts as
    /// [`super::check_equivalence`] (the proptests assert it), slower,
    /// and counterexamples may differ (both always distinguish).
    pub fn check_equivalence(a: &Netlist, b: &Netlist, opts: &EquivOptions) -> EquivResult {
        // Interface matching.
        let mut a_pis: Vec<String> = a
            .inputs()
            .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
            .map(|(n, _, _)| n.to_string())
            .collect();
        let mut b_pis: Vec<String> = b
            .inputs()
            .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
            .map(|(n, _, _)| n.to_string())
            .collect();
        a_pis.sort();
        b_pis.sort();
        if a_pis != b_pis {
            return EquivResult::InterfaceMismatch(format!(
                "primary inputs differ: {} vs {}",
                a_pis.len(),
                b_pis.len()
            ));
        }
        let mut a_pos: Vec<String> = a.outputs().map(|(n, _)| n.to_string()).collect();
        let mut b_pos: Vec<String> = b.outputs().map(|(n, _)| n.to_string()).collect();
        a_pos.sort();
        a_pos.dedup();
        b_pos.sort();
        b_pos.dedup();
        if a_pos != b_pos {
            return EquivResult::InterfaceMismatch(format!(
                "primary outputs differ: {} vs {}",
                a_pos.len(),
                b_pos.len()
            ));
        }

        if let Some(cex) = simulate_difference(a, b, opts) {
            return EquivResult::NotEquivalent(cex);
        }

        // SAT miter.
        let mut solver = Solver::new();
        let enc_a = encode_netlist(&mut solver, a, None);
        let shared: HashMap<String, Lit> = enc_a
            .primary_inputs
            .iter()
            .map(|(n, l)| (n.clone(), *l))
            .collect();
        let enc_b = encode_netlist(&mut solver, b, Some(&shared));
        if let Some(key) = &opts.key_a {
            bind_key(&mut solver, &enc_a.key_inputs, key);
        }
        if let Some(key) = &opts.key_b {
            bind_key(&mut solver, &enc_b.key_inputs, key);
        }
        let out_b: HashMap<&str, Lit> = enc_b
            .outputs
            .iter()
            .map(|(n, l)| (n.as_str(), *l))
            .collect();
        let diffs: Vec<Lit> = enc_a
            .outputs
            .iter()
            .map(|(n, la)| xor_lit(&mut solver, *la, out_b[n.as_str()]))
            .collect();
        let any_diff = or_lit(&mut solver, &diffs);
        assert_lit(&mut solver, any_diff, true);
        match solver.solve() {
            SolveResult::Unsat => EquivResult::Equivalent,
            SolveResult::Sat => {
                let cex = a
                    .inputs()
                    .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
                    .map(|(n, _, _)| {
                        let lit = enc_a
                            .primary_inputs
                            .iter()
                            .find(|(pn, _)| pn == n)
                            .map(|&(_, l)| l)
                            .expect("pi encoded");
                        solver.model_lit(lit).unwrap_or(false)
                    })
                    .collect();
                EquivResult::NotEquivalent(cex)
            }
        }
    }

    fn bind_key(solver: &mut Solver, kis: &[(String, Lit)], key: &[bool]) {
        for (name, lit) in kis {
            // Historical quirk, preserved in the oracle only: a
            // malformed name silently binds bit 0. The staged checker
            // reports an interface mismatch instead.
            let idx: usize = name
                .trim_start_matches(gnnunlock_netlist::KEY_INPUT_PREFIX)
                .parse()
                .unwrap_or(0);
            let value = key.get(idx).copied().unwrap_or(false);
            assert_lit(solver, *lit, value);
        }
    }

    /// Random-simulation prefilter: returns a counterexample pattern if
    /// one is found. Only meaningful when both keys are bound.
    fn simulate_difference(a: &Netlist, b: &Netlist, opts: &EquivOptions) -> Option<Vec<bool>> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let a_kis = a.key_inputs().len();
        let b_kis = b.key_inputs().len();
        if (a_kis > 0 && opts.key_a.is_none()) || (b_kis > 0 && opts.key_b.is_none()) {
            return None; // cannot fix keys for simulation
        }
        let names: Vec<String> = a
            .inputs()
            .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
            .map(|(n, _, _)| n.to_string())
            .collect();
        let b_order: Vec<usize> = b
            .inputs()
            .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
            .map(|(n, _, _)| names.iter().position(|x| x == n).expect("matched"))
            .collect();
        let key_a = opts.key_a.clone().unwrap_or_default();
        let key_b = opts.key_b.clone().unwrap_or_default();
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let words = if opts.sim_words == 0 {
            32
        } else {
            opts.sim_words
        };
        let n_patterns = words * 64;
        let mut pi_a: Vec<Vec<bool>> = Vec::with_capacity(n_patterns);
        for _ in 0..n_patterns {
            pi_a.push((0..names.len()).map(|_| rng.random_bool(0.5)).collect());
        }
        let ki_a = vec![key_a.clone(); n_patterns];
        let out_a = a.eval_many(&pi_a, &ki_a).ok()?;
        let pi_b: Vec<Vec<bool>> = pi_a
            .iter()
            .map(|p| b_order.iter().map(|&i| p[i]).collect())
            .collect();
        let ki_b = vec![key_b.clone(); n_patterns];
        let out_b = b.eval_many(&pi_b, &ki_b).ok()?;
        // Compare by output name.
        let a_out_names: Vec<&str> = a.outputs().map(|(n, _)| n).collect();
        let b_out_names: Vec<&str> = b.outputs().map(|(n, _)| n).collect();
        let b_pos: Vec<usize> = a_out_names
            .iter()
            .map(|n| b_out_names.iter().position(|x| x == n).expect("matched"))
            .collect();
        for (i, (ra, rb)) in out_a.iter().zip(&out_b).enumerate() {
            for (j, &bj) in b_pos.iter().enumerate() {
                if ra[j] != rb[bj] {
                    return Some(pi_a[i].clone());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_netlist::generator::BenchmarkSpec;
    use gnnunlock_netlist::GateType;

    #[test]
    fn identical_circuits_are_equivalent() {
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let r = check_equivalence(&nl, &nl.clone(), &EquivOptions::default());
        assert!(r.is_equivalent());
    }

    #[test]
    fn single_gate_change_is_caught() {
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let mut other = nl.clone();
        // Flip one gate type (And -> Nand preserves arity).
        let victim = other
            .gate_ids()
            .find(|&g| other.gate_type(g) == GateType::And)
            .expect("an AND exists");
        other.set_gate_type(victim, GateType::Nand);
        match check_equivalence(&nl, &other, &EquivOptions::default()) {
            EquivResult::NotEquivalent(cex) => {
                let out_a = nl.eval_outputs(&cex, &[]).unwrap();
                let out_b = other.eval_outputs(&cex, &[]).unwrap();
                assert_ne!(out_a, out_b, "counterexample does not distinguish");
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn structurally_different_but_equal_functions() {
        // y = !(a & b) vs y = !a | !b (De Morgan).
        let mut x = Netlist::new("x");
        let a = x.add_primary_input("a");
        let b = x.add_primary_input("b");
        let g = x.add_gate(GateType::Nand, &[a, b]);
        x.add_output("y", x.gate_output(g));

        let mut y = Netlist::new("y");
        let a2 = y.add_primary_input("a");
        let b2 = y.add_primary_input("b");
        let na = y.add_gate(GateType::Inv, &[a2]);
        let nb = y.add_gate(GateType::Inv, &[b2]);
        let o = y.add_gate(GateType::Or, &[y.gate_output(na), y.gate_output(nb)]);
        y.add_output("y", y.gate_output(o));

        assert!(check_equivalence(&x, &y, &EquivOptions::default()).is_equivalent());
    }

    #[test]
    fn interface_mismatch_detected() {
        let mut x = Netlist::new("x");
        let a = x.add_primary_input("a");
        let g = x.add_gate(GateType::Inv, &[a]);
        x.add_output("y", x.gate_output(g));
        let mut y = Netlist::new("y");
        let a2 = y.add_primary_input("different");
        let g2 = y.add_gate(GateType::Inv, &[a2]);
        y.add_output("y", y.gate_output(g2));
        assert!(matches!(
            check_equivalence(&x, &y, &EquivOptions::default()),
            EquivResult::InterfaceMismatch(_)
        ));
    }

    #[test]
    fn locked_circuit_equivalent_under_correct_key_only() {
        // Minimal inline "locking": y = a XOR k, correct key = 0.
        let mut orig = Netlist::new("o");
        let a = orig.add_primary_input("a");
        let g = orig.add_gate(GateType::Buf, &[a]);
        orig.add_output("y", orig.gate_output(g));

        let mut locked = Netlist::new("l");
        let a2 = locked.add_primary_input("a");
        let k = locked.add_key_input("keyinput0");
        let g2 = locked.add_gate(GateType::Xor, &[a2, k]);
        locked.add_output("y", locked.gate_output(g2));

        let good = EquivOptions {
            key_b: Some(vec![false]),
            ..Default::default()
        };
        assert!(check_equivalence(&orig, &locked, &good).is_equivalent());
        let bad = EquivOptions {
            key_b: Some(vec![true]),
            ..Default::default()
        };
        assert!(!check_equivalence(&orig, &locked, &bad).is_equivalent());
    }

    #[test]
    fn malformed_key_input_name_is_an_interface_mismatch() {
        // Regression: the old checker silently bound a malformed key
        // input name to bit 0 and could verify the wrong circuit.
        let mut orig = Netlist::new("o");
        let a = orig.add_primary_input("a");
        let g = orig.add_gate(GateType::Buf, &[a]);
        orig.add_output("y", orig.gate_output(g));

        let mut locked = Netlist::new("l");
        let a2 = locked.add_primary_input("a");
        let k = locked.add_key_input("key_enable"); // not keyinput<N>
        let g2 = locked.add_gate(GateType::Xor, &[a2, k]);
        locked.add_output("y", locked.gate_output(g2));

        let opts = EquivOptions {
            key_b: Some(vec![false]),
            ..Default::default()
        };
        match check_equivalence(&orig, &locked, &opts) {
            EquivResult::InterfaceMismatch(msg) => {
                assert!(msg.contains("key_enable"), "message names the input: {msg}");
            }
            other => panic!("expected InterfaceMismatch, got {other:?}"),
        }
        // Unbound (free) keys never parse names, so the same netlist is
        // still checkable in for-all-keys mode.
        let free = EquivOptions::default();
        assert!(!check_equivalence(&orig, &locked, &free).is_equivalent());
    }

    /// A circuit with two independent output cones: the staged checker
    /// must catch a difference confined to the second cone, and report
    /// identical results at every worker count.
    #[test]
    fn disjoint_cones_and_worker_independence() {
        let build = |flip: bool| {
            let mut nl = Netlist::new("two-cones");
            let a = nl.add_primary_input("a");
            let b = nl.add_primary_input("b");
            let c = nl.add_primary_input("c");
            let d = nl.add_primary_input("d");
            let g0 = nl.add_gate(GateType::And, &[a, b]);
            let ty = if flip { GateType::Nor } else { GateType::Or };
            let g1 = nl.add_gate(ty, &[c, d]);
            nl.add_output("y0", nl.gate_output(g0));
            nl.add_output("y1", nl.gate_output(g1));
            nl
        };
        let x = build(false);
        let y = build(true);
        // Disable the prefilter's luck by making it tiny but present;
        // the cones still catch the diff via SAT if simulation misses.
        let base = EquivOptions {
            sim_words: 1,
            ..Default::default()
        };
        let serial = check_equivalence(&x, &y, &base);
        let EquivResult::NotEquivalent(cex) = &serial else {
            panic!("expected NotEquivalent, got {serial:?}");
        };
        assert_ne!(
            x.eval_outputs(cex, &[]).unwrap(),
            y.eval_outputs(cex, &[]).unwrap()
        );
        for workers in [2, 3, 8] {
            let opts = EquivOptions {
                workers,
                ..base.clone()
            };
            assert_eq!(check_equivalence(&x, &y, &opts), serial);
            let opts_eq = EquivOptions {
                workers,
                sim_words: 1,
                ..Default::default()
            };
            assert!(check_equivalence(&x, &x.clone(), &opts_eq).is_equivalent());
        }
    }

    /// The stats surface tracks which stage discharged the instance: a
    /// clone strash-collapses every cone (zero SAT search), a mutated
    /// circuit under the default prefilter dies before CNF exists.
    #[test]
    fn verify_stats_reflect_stage_discharge() {
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let (r, s) = check_equivalence_stats(&nl, &nl.clone(), &EquivOptions::default());
        assert!(r.is_equivalent());
        assert!(!s.prefilter_discharged);
        assert!(s.cones > 0);
        assert_eq!(
            s.strash_collapsed_cones, s.cones,
            "a clone's cones all collapse under shared structural hashing"
        );
        assert_eq!(s.solver_calls, 0);
        assert_eq!(s.conflicts, 0);

        let mut other = nl.clone();
        let victim = other
            .gate_ids()
            .find(|&g| other.gate_type(g) == GateType::And)
            .expect("an AND exists");
        other.set_gate_type(victim, GateType::Nand);
        let (r, s) = check_equivalence_stats(&nl, &other, &EquivOptions::default());
        assert!(!r.is_equivalent());
        assert!(
            s.prefilter_discharged || s.solver_calls > 0,
            "a real difference is found by simulation or by SAT: {s:?}"
        );
    }

    /// The staged pipeline and the retained monolithic oracle agree on
    /// the classic scenarios.
    #[test]
    fn staged_agrees_with_reference() {
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let mut other = nl.clone();
        let victim = other
            .gate_ids()
            .find(|&g| other.gate_type(g) == GateType::And)
            .expect("an AND exists");
        other.set_gate_type(victim, GateType::Nand);
        let opts = EquivOptions::default();
        assert_eq!(
            check_equivalence(&nl, &nl.clone(), &opts).is_equivalent(),
            reference::check_equivalence(&nl, &nl.clone(), &opts).is_equivalent()
        );
        assert_eq!(
            check_equivalence(&nl, &other, &opts).is_equivalent(),
            reference::check_equivalence(&nl, &other, &opts).is_equivalent()
        );
    }
}
