//! DIMACS CNF import/export, for interoperability with external SAT
//! solvers and for archiving the miters the attacks build.

use crate::lit::{Lit, Var};
use crate::solver::Solver;
use std::fmt::Write as _;

/// A plain CNF formula (1-based DIMACS variable numbering).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses as non-zero DIMACS literals.
    pub clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// Serialize in DIMACS format.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let _ = write!(out, "{lit} ");
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parse DIMACS text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_dimacs(text: &str) -> Result<Cnf, String> {
        let mut cnf = Cnf::default();
        let mut declared: Option<(usize, usize)> = None;
        let mut current: Vec<i32> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("p cnf") {
                let mut parts = rest.split_whitespace();
                let vars: usize = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("line {}: bad var count", lineno + 1))?;
                let clauses: usize = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("line {}: bad clause count", lineno + 1))?;
                declared = Some((vars, clauses));
                cnf.num_vars = vars;
                continue;
            }
            for tok in line.split_whitespace() {
                let lit: i32 = tok
                    .parse()
                    .map_err(|_| format!("line {}: bad literal `{tok}`", lineno + 1))?;
                if lit == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    cnf.num_vars = cnf.num_vars.max(lit.unsigned_abs() as usize);
                    current.push(lit);
                }
            }
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        if let Some((_, clauses)) = declared {
            if clauses != cnf.clauses.len() {
                return Err(format!(
                    "header declares {clauses} clauses, found {}",
                    cnf.clauses.len()
                ));
            }
        }
        Ok(cnf)
    }

    /// Load the formula into a fresh [`Solver`], returning the solver and
    /// the variable mapping (`vars[i]` is DIMACS variable `i + 1`).
    pub fn into_solver(&self) -> (Solver, Vec<Var>) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        for clause in &self.clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| {
                    let v = vars[(l.unsigned_abs() - 1) as usize];
                    Lit::with_polarity(v, l > 0)
                })
                .collect();
            solver.add_clause(&lits);
        }
        (solver, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn round_trip() {
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![vec![1, -2], vec![2, 3], vec![-1, -3]],
        };
        let text = cnf.to_dimacs();
        let back = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(cnf, back);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "c a comment\n\np cnf 2 2\n1 2 0\n-1 -2 0\n";
        let cnf = Cnf::from_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses.len(), 2);
    }

    #[test]
    fn clause_count_mismatch_detected() {
        let text = "p cnf 2 3\n1 0\n";
        assert!(Cnf::from_dimacs(text).is_err());
    }

    #[test]
    fn solves_loaded_formula() {
        // (x1 | x2) & (!x1) & (!x2) is UNSAT.
        let cnf = Cnf::from_dimacs("p cnf 2 3\n1 2 0\n-1 0\n-2 0\n").unwrap();
        let (mut solver, _) = cnf.into_solver();
        assert_eq!(solver.solve(), SolveResult::Unsat);
        // (x1 | x2) & (!x1) is SAT with x2 = true.
        let cnf = Cnf::from_dimacs("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let (mut solver, vars) = cnf.into_solver();
        assert_eq!(solver.solve(), SolveResult::Sat);
        assert_eq!(solver.model_value(vars[1]), Some(true));
    }

    #[test]
    fn multiline_clauses_parse() {
        let cnf = Cnf::from_dimacs("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses, vec![vec![1, 2, 3]]);
    }
}
