//! Tseitin encoding of netlists into CNF.

use crate::lit::{Lit, Var};
use crate::solver::Solver;
use gnnunlock_netlist::{Driver, GateType, NetId, Netlist};
use std::collections::HashMap;

/// Literals representing a netlist inside a [`Solver`].
///
/// Input/output literals are listed in the netlist's declaration order so
/// callers can bind keys or compare outputs positionally.
#[derive(Debug, Clone)]
pub struct CircuitEncoding {
    /// `(name, literal)` per primary input.
    pub primary_inputs: Vec<(String, Lit)>,
    /// `(name, literal)` per key input.
    pub key_inputs: Vec<(String, Lit)>,
    /// `(name, literal)` per primary output.
    pub outputs: Vec<(String, Lit)>,
    net_lits: HashMap<NetId, Lit>,
}

impl CircuitEncoding {
    /// Literal of an arbitrary net, if it was encoded.
    pub fn net_lit(&self, net: NetId) -> Option<Lit> {
        self.net_lits.get(&net).copied()
    }

    /// Literal of a primary input by name.
    pub fn pi_lit(&self, name: &str) -> Option<Lit> {
        self.primary_inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, l)| l)
    }
}

/// Encode `nl` into `solver`, optionally reusing existing literals for
/// inputs (`shared_inputs`, keyed by input name). An input of *any* kind
/// whose name appears in the map reuses the mapped literal — miters share
/// primary inputs this way, and the incremental SAT attack ties per-DIP
/// circuit copies to its canonical key literals and to constant literals
/// for the fixed primary inputs. Inputs not in the map get fresh
/// variables.
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle (validate first).
pub fn encode_netlist(
    solver: &mut Solver,
    nl: &Netlist,
    shared_inputs: Option<&HashMap<String, Lit>>,
) -> CircuitEncoding {
    encode_netlist_filtered(solver, nl, shared_inputs, None, None)
}

/// A structural-hashing table: `(gate type, exact input literals)` →
/// the literal already encoding that function in the solver.
///
/// Passing one table across several `encode_netlist_filtered` calls into
/// the *same* solver deduplicates structurally identical logic: a gate
/// whose type and input literals match an earlier gate reuses its output
/// literal instead of re-encoding (sound — identical inputs plus
/// identical function is identical output). Equivalence miters collapse
/// this way wherever the two circuits share structure over the shared
/// inputs — for a perfect structural match the outputs become the *same
/// literal* and no SAT search is needed at all. Keys are exact literal
/// sequences (no commutative normalization): cheap, conservative, and
/// deterministic.
pub type StrashTable = HashMap<(GateType, Vec<Lit>), Lit>;

/// [`encode_netlist`] restricted to a subset of gates: only gates whose
/// raw index is set in `gate_filter` are encoded. The filter must be
/// fan-in closed (every encoded gate's transitive gate fan-in is also in
/// the filter — [`gnnunlock_netlist::Netlist::output_cones`] cones are,
/// by construction). Inputs and constants are always encoded (they are
/// single variables); outputs whose driver falls outside the filter are
/// omitted from [`CircuitEncoding::outputs`].
///
/// The cone-partitioned equivalence checker uses this to encode only the
/// logic feeding the outputs a worker owns instead of the full circuit.
///
/// `strash` optionally threads a [`StrashTable`] through the encoding
/// (and across encodings sharing a solver) so structurally identical
/// gates reuse one literal.
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle, or if the
/// filter is not fan-in closed.
pub fn encode_netlist_filtered(
    solver: &mut Solver,
    nl: &Netlist,
    shared_inputs: Option<&HashMap<String, Lit>>,
    gate_filter: Option<&[bool]>,
    mut strash: Option<&mut StrashTable>,
) -> CircuitEncoding {
    let mut net_lits: HashMap<NetId, Lit> = HashMap::new();
    let mut primary_inputs = Vec::new();
    let mut key_inputs = Vec::new();
    for (name, kind, net) in nl.inputs() {
        let lit = match shared_inputs.and_then(|map| map.get(name)) {
            Some(&l) => l,
            None => Lit::positive(solver.new_var()),
        };
        net_lits.insert(net, lit);
        match kind {
            gnnunlock_netlist::InputKind::Primary => primary_inputs.push((name.to_string(), lit)),
            gnnunlock_netlist::InputKind::Key => key_inputs.push((name.to_string(), lit)),
        }
    }
    // Constants: a frozen true variable.
    let mut const_lit: Option<Lit> = None;
    for net in nl.net_ids() {
        if let Driver::Const(v) = nl.driver(net) {
            let t = *const_lit.get_or_insert_with(|| {
                let l = Lit::positive(solver.new_var());
                solver.add_clause(&[l]);
                l
            });
            net_lits.insert(net, if v { t } else { !t });
        }
    }
    for g in nl.topo_order().expect("acyclic netlist") {
        if let Some(filter) = gate_filter {
            if !filter.get(g.index()).copied().unwrap_or(false) {
                continue;
            }
        }
        let ins: Vec<Lit> = nl.gate_inputs(g).iter().map(|n| net_lits[n]).collect();
        let ty = nl.gate_type(g);
        let out = match strash.as_mut() {
            Some(table) => match table.entry((ty, ins.clone())) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let out = encode_gate(solver, ty, &ins);
                    e.insert(out);
                    out
                }
            },
            None => encode_gate(solver, ty, &ins),
        };
        net_lits.insert(nl.gate_output(g), out);
    }
    let outputs = nl
        .outputs()
        .filter_map(|(name, net)| Some((name.to_string(), *net_lits.get(&net)?)))
        .collect();
    CircuitEncoding {
        primary_inputs,
        key_inputs,
        outputs,
        net_lits,
    }
}

/// Encode one gate, returning the output literal.
fn encode_gate(solver: &mut Solver, ty: GateType, ins: &[Lit]) -> Lit {
    use GateType::*;
    match ty {
        Buf => ins[0],
        Inv => !ins[0],
        And => encode_and(solver, ins),
        Nand => !encode_and(solver, ins),
        Or => !encode_and(solver, &negate_all(ins)),
        Nor => encode_and(solver, &negate_all(ins)),
        Xor => encode_xor(solver, ins),
        Xnor => !encode_xor(solver, ins),
        Aoi21 => {
            let ab = encode_and(solver, &ins[0..2]);
            encode_and(solver, &[!ab, !ins[2]])
        }
        Aoi22 => {
            let ab = encode_and(solver, &ins[0..2]);
            let cd = encode_and(solver, &ins[2..4]);
            encode_and(solver, &[!ab, !cd])
        }
        Aoi211 => {
            let ab = encode_and(solver, &ins[0..2]);
            encode_and(solver, &[!ab, !ins[2], !ins[3]])
        }
        Aoi221 => {
            let ab = encode_and(solver, &ins[0..2]);
            let cd = encode_and(solver, &ins[2..4]);
            encode_and(solver, &[!ab, !cd, !ins[4]])
        }
        Oai21 => {
            let ab = encode_and(solver, &[!ins[0], !ins[1]]); // = !(a|b)
            !encode_and(solver, &[!ab, ins[2]])
        }
        Oai22 => {
            let ab = encode_and(solver, &[!ins[0], !ins[1]]);
            let cd = encode_and(solver, &[!ins[2], !ins[3]]);
            !encode_and(solver, &[!ab, !cd])
        }
        Oai211 => {
            let ab = encode_and(solver, &[!ins[0], !ins[1]]);
            !encode_and(solver, &[!ab, ins[2], ins[3]])
        }
        Oai221 => {
            let ab = encode_and(solver, &[!ins[0], !ins[1]]);
            let cd = encode_and(solver, &[!ins[2], !ins[3]]);
            !encode_and(solver, &[!ab, !cd, ins[4]])
        }
        Mux2 => {
            // y = (a & !s) | (b & s)
            let y = Lit::positive(solver.new_var());
            let (a, b, s) = (ins[0], ins[1], ins[2]);
            solver.add_clause(&[s, !a, y]);
            solver.add_clause(&[s, a, !y]);
            solver.add_clause(&[!s, !b, y]);
            solver.add_clause(&[!s, b, !y]);
            y
        }
        Mxi2 => {
            let y = Lit::positive(solver.new_var());
            let (a, b, s) = (ins[0], ins[1], ins[2]);
            solver.add_clause(&[s, !a, !y]);
            solver.add_clause(&[s, a, y]);
            solver.add_clause(&[!s, !b, !y]);
            solver.add_clause(&[!s, b, y]);
            y
        }
        Maj3 => {
            let y = Lit::positive(solver.new_var());
            let (a, b, c) = (ins[0], ins[1], ins[2]);
            solver.add_clause(&[!a, !b, y]);
            solver.add_clause(&[!a, !c, y]);
            solver.add_clause(&[!b, !c, y]);
            solver.add_clause(&[a, b, !y]);
            solver.add_clause(&[a, c, !y]);
            solver.add_clause(&[b, c, !y]);
            y
        }
    }
}

fn negate_all(ins: &[Lit]) -> Vec<Lit> {
    ins.iter().map(|&l| !l).collect()
}

/// `y ↔ AND(ins)` with a fresh `y`.
fn encode_and(solver: &mut Solver, ins: &[Lit]) -> Lit {
    debug_assert!(!ins.is_empty());
    if ins.len() == 1 {
        return ins[0];
    }
    let y = Lit::positive(solver.new_var());
    let mut long: Vec<Lit> = vec![y];
    for &l in ins {
        solver.add_clause(&[!y, l]);
        long.push(!l);
    }
    solver.add_clause(&long);
    y
}

/// `y ↔ XOR(ins)` as a chain of 2-input XORs.
fn encode_xor(solver: &mut Solver, ins: &[Lit]) -> Lit {
    debug_assert!(!ins.is_empty());
    let mut acc = ins[0];
    for &l in &ins[1..] {
        let y = Lit::positive(solver.new_var());
        solver.add_clause(&[!acc, !l, !y]);
        solver.add_clause(&[acc, l, !y]);
        solver.add_clause(&[!acc, l, y]);
        solver.add_clause(&[acc, !l, y]);
        acc = y;
    }
    acc
}

/// Force literal `l` to equal `value` via a unit clause.
pub fn assert_lit(solver: &mut Solver, l: Lit, value: bool) {
    solver.add_clause(&[if value { l } else { !l }]);
}

/// Fresh literal constrained to `a XOR b` (used by miters).
pub fn xor_lit(solver: &mut Solver, a: Lit, b: Lit) -> Lit {
    encode_xor(solver, &[a, b])
}

/// Fresh literal constrained to `OR(ins)` (used by miters).
pub fn or_lit(solver: &mut Solver, ins: &[Lit]) -> Lit {
    !encode_and(solver, &negate_all(ins))
}

/// Allocate a fresh free variable as a literal.
pub fn fresh_lit(solver: &mut Solver) -> Lit {
    Lit::positive(solver.new_var())
}

/// Suppress unused warning for Var re-export convenience.
#[allow(dead_code)]
fn _uses(_: Var) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;
    use gnnunlock_netlist::ALL_GATE_TYPES;

    /// Exhaustively check every gate encoding against `GateType::eval`.
    #[test]
    fn gate_encodings_match_semantics() {
        for &ty in ALL_GATE_TYPES.iter() {
            let arity = ty.fixed_arity().unwrap_or(3);
            for pattern in 0..(1u32 << arity) {
                let mut solver = Solver::new();
                let ins: Vec<Lit> = (0..arity)
                    .map(|_| Lit::positive(solver.new_var()))
                    .collect();
                let out = encode_gate(&mut solver, ty, &ins);
                let bits: Vec<bool> = (0..arity).map(|i| (pattern >> i) & 1 == 1).collect();
                for (l, &b) in ins.iter().zip(&bits) {
                    assert_lit(&mut solver, *l, b);
                }
                let expected = ty.eval(&bits);
                assert_eq!(solver.solve(), SolveResult::Sat, "{ty} inputs {bits:?}");
                assert_eq!(
                    solver.model_lit(out),
                    Some(expected),
                    "{ty} inputs {bits:?}"
                );
            }
        }
    }

    #[test]
    fn netlist_encoding_matches_simulation() {
        use gnnunlock_netlist::generator::BenchmarkSpec;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let nl = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let mut solver = Solver::new();
        let enc = encode_netlist(&mut solver, &nl, None);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let pattern: Vec<bool> = (0..enc.primary_inputs.len())
                .map(|_| rng.random_bool(0.5))
                .collect();
            let assumptions: Vec<Lit> = enc
                .primary_inputs
                .iter()
                .zip(&pattern)
                .map(|(&(_, l), &b)| if b { l } else { !l })
                .collect();
            assert_eq!(
                solver.solve_with_assumptions(&assumptions),
                SolveResult::Sat
            );
            let expected = nl.eval_outputs(&pattern, &[]).unwrap();
            for ((_, ol), &e) in enc.outputs.iter().zip(&expected) {
                assert_eq!(solver.model_lit(*ol), Some(e));
            }
        }
    }
}
