//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign` with `sign = 1` meaning negated.
///
/// # Examples
///
/// ```
/// use gnnunlock_sat::{Lit, Solver};
/// let mut s = Solver::new();
/// let v = s.new_var();
/// let l = Lit::positive(v);
/// assert_eq!(!l, Lit::negative(v));
/// assert_eq!((!l).var(), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn positive(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn negative(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Literal of `v` with the given polarity (`true` = positive).
    pub fn with_polarity(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(v)
        } else {
            Lit::negative(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Raw code (used to index watch lists).
    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "¬x{}", self.var().0)
        }
    }
}

/// Ternary assignment value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::with_polarity(v, false), n);
    }
}
