//! A CDCL SAT solver with two-watched literals, VSIDS, phase saving, Luby
//! restarts and learnt-clause database reduction.
//!
//! The solver supports incremental use (add clauses between `solve` calls)
//! and solving under assumptions, which the oracle-guided SAT attack and
//! the equivalence checker rely on.

use crate::lit::{LBool, Lit, Var};

/// Result of a satisfiability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (read it with
    /// [`Solver::model_value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Cumulative solver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

/// CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use gnnunlock_sat::{Lit, SolveResult, Solver};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
/// s.add_clause(&[!Lit::positive(a)]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    stats: SolverStats,
    num_learnts: usize,
    max_learnts: usize,
    conflict_budget: Option<u64>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Create an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: VarHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            num_learnts: 0,
            max_learnts: 8000,
            conflict_budget: None,
        }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of live clauses (problem + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of learnt clauses currently live in the database (grows
    /// with conflicts, shrinks on DB reduction).
    pub fn num_learnts(&self) -> usize {
        self.num_learnts
    }

    /// Limit the number of conflicts for subsequent `solve` calls; `None`
    /// removes the limit. When the budget is exhausted the query returns
    /// `Unsat`-like `None` from [`Solver::solve_limited`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Add a clause. An empty clause makes the formula trivially
    /// unsatisfiable.
    ///
    /// Note: adding a clause invalidates the current model (incremental
    /// callers must read the model before extending the formula).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if !self.ok {
            return;
        }
        self.cancel_until(0);
        // Simplify: drop duplicate/false literals, detect tautologies.
        let mut simplified: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                LBool::True => return, // satisfied at level 0
                LBool::False => continue,
                LBool::Undef => {}
            }
            if simplified.contains(&!l) {
                return; // tautology
            }
            if !simplified.contains(&l) {
                simplified.push(l);
            }
        }
        match simplified.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                self.attach_clause(simplified, false);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        let w0 = Watcher {
            clause: idx,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: idx,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).code()].push(w0);
        self.watches[(!lits[1]).code()].push(w1);
        if learnt {
            self.num_learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        idx
    }

    /// Solve the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solve under the given assumption literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions)
            .unwrap_or(SolveResult::Unsat)
    }

    /// Solve under assumptions, returning `None` if the conflict budget
    /// (see [`Solver::set_conflict_budget`]) was exhausted.
    pub fn solve_limited(&mut self, assumptions: &[Lit]) -> Option<SolveResult> {
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        self.cancel_until(0);
        let start_conflicts = self.stats.conflicts;
        let mut restart_idx = 0u64;
        loop {
            restart_idx += 1;
            let budget = 64 * luby(restart_idx);
            match self.search(budget, assumptions, start_conflicts) {
                SearchResult::Sat => {
                    let r = SolveResult::Sat;
                    // Keep the model readable; backtrack on next call.
                    return Some(r);
                }
                SearchResult::Unsat => {
                    self.cancel_until(0);
                    return Some(SolveResult::Unsat);
                }
                SearchResult::Restart => {
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
                SearchResult::BudgetExhausted => {
                    self.cancel_until(0);
                    return None;
                }
            }
        }
    }

    /// Value of `v` in the most recent satisfying model.
    pub fn model_value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Value of a literal in the most recent model.
    pub fn model_lit(&self, l: Lit) -> Option<bool> {
        self.model_value(l.var())
            .map(|b| if l.is_positive() { b } else { !b })
    }

    // ------------------------------------------------------------------

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn lit_value(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var();
        self.assign[v.index()] = LBool::from_bool(l.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.phase[v.index()] = l.is_positive();
        self.trail.push(l);
    }

    /// Propagate enqueued literals; returns the conflicting clause index if
    /// a conflict arises.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict = None;
            while i < watchers.len() {
                let w = watchers[i];
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let ci = w.clause as usize;
                if self.clauses[ci].deleted {
                    watchers.swap_remove(i);
                    continue;
                }
                // Make sure the false literal is lits[1].
                let false_lit = !p;
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == LBool::True {
                    watchers[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let l = self.clauses[ci].lits[k];
                    if self.lit_value(l) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[(!l).code()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.clause);
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, Some(w.clause));
                i += 1;
            }
            self.watches[p.code()].extend(watchers.drain(i.min(watchers.len())..));
            // Put back the untouched prefix.
            let mut kept = watchers;
            kept.extend(std::mem::take(&mut self.watches[p.code()]));
            self.watches[p.code()] = kept;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    /// 1-UIP conflict analysis; returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl as usize;
        let mut index = self.trail.len();
        let current_level = self.decision_level();
        loop {
            self.bump_clause(confl);
            let start = usize::from(p.is_some());
            // Collect literals from the conflicting/reason clause.
            let lits: Vec<Lit> = self.clauses[confl].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let uip = self.trail[index];
            self.seen[uip.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !uip;
                break;
            }
            confl = self.reason[uip.var().index()].expect("non-decision has reason") as usize;
            p = Some(uip);
        }
        // Simple clause minimization: drop literals implied by the rest.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, backtrack)
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, ci: usize) {
        if !self.clauses[ci].learnt {
            return;
        }
        self.clauses[ci].activity += self.cla_inc;
        if self.clauses[ci].activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learnt) {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn reduce_db(&mut self) {
        let mut learnt_indices: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                self.clauses[i].learnt && !self.clauses[i].deleted && self.clauses[i].lits.len() > 2
            })
            .collect();
        learnt_indices.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = learnt_indices
            .iter()
            .map(|&i| {
                let first = self.clauses[i].lits[0];
                self.reason[first.var().index()] == Some(i as u32)
                    && self.lit_value(first) == LBool::True
            })
            .collect();
        let target = learnt_indices.len() / 2;
        let mut removed = 0;
        for (k, &i) in learnt_indices.iter().enumerate() {
            if removed >= target {
                break;
            }
            if locked[k] {
                continue;
            }
            self.clauses[i].deleted = true;
            self.num_learnts -= 1;
            removed += 1;
        }
        // Watches lazily skip deleted clauses (see `propagate`).
    }

    fn search(
        &mut self,
        conflicts_allowed: u64,
        assumptions: &[Lit],
        start_conflicts: u64,
    ) -> SearchResult {
        let mut local_conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                local_conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchResult::Unsat;
                }
                if self.decision_level() <= assumptions.len() as u32 {
                    // Conflict depends only on assumptions.
                    return SearchResult::Unsat;
                }
                let (learnt, backtrack) = self.analyze(confl);
                let backtrack = backtrack.max(assumptions.len() as u32);
                self.cancel_until(backtrack);
                if learnt.len() == 1 && backtrack <= assumptions.len() as u32 {
                    if self.lit_value(learnt[0]) == LBool::False {
                        return SearchResult::Unsat;
                    }
                    if self.lit_value(learnt[0]) == LBool::Undef {
                        self.enqueue(learnt[0], None);
                    }
                } else if learnt.len() == 1 {
                    self.cancel_until(0);
                    self.enqueue(learnt[0], None);
                } else {
                    let ci = self.attach_clause(learnt, true);
                    self.bump_clause(ci as usize);
                    let first = self.clauses[ci as usize].lits[0];
                    if self.lit_value(first) == LBool::Undef {
                        self.enqueue(first, Some(ci));
                    }
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.num_learnts > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts += self.max_learnts / 10;
                }
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - start_conflicts >= budget {
                        return SearchResult::BudgetExhausted;
                    }
                }
            } else {
                if local_conflicts >= conflicts_allowed {
                    return SearchResult::Restart;
                }
                // Apply pending assumptions as decisions.
                let dl = self.decision_level() as usize;
                let next = if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied: open a dummy level.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        LBool::False => return SearchResult::Unsat,
                        LBool::Undef => a,
                    }
                } else {
                    match self.pick_branch() {
                        Some(l) => l,
                        None => return SearchResult::Sat,
                    }
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.enqueue(next, None);
            }
        }
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(Lit::with_polarity(v, self.phase[v.index()]));
            }
        }
        None
    }
}

enum SearchResult {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

/// Luby restart sequence (1-based: 1, 1, 2, 1, 1, 2, 4, …).
fn luby(mut i: u64) -> u64 {
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Binary max-heap over variable activities with lazy re-insertion.
#[derive(Debug, Clone, Default)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<i32>,
}

impl VarHeap {
    fn new() -> Self {
        VarHeap::default()
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        while self.pos.len() <= v.index() {
            self.pos.push(-1);
        }
        if self.pos[v.index()] >= 0 {
            return;
        }
        self.pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: Var, act: &[f64]) {
        if v.index() < self.pos.len() && self.pos[v.index()] >= 0 {
            self.sift_up(self.pos[v.index()] as usize, act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index()] = -1;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a as i32;
        self.pos[self.heap[b].index()] = b as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, vars: &mut Vec<Var>, i: usize, pos: bool) -> Lit {
        while vars.len() <= i {
            vars.push(s.new_var());
        }
        Lit::with_polarity(vars[i], pos)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[Lit::positive(v)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v), Some(true));
        s.add_clause(&[Lit::negative(v)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[Lit(0); 2]; 3];
        for row in &mut p {
            for cell in row.iter_mut() {
                *cell = Lit::positive(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(&[row[0], row[1]]);
        }
        #[allow(clippy::needless_range_loop)] // j indexes columns of `p`
        for j in 0..2 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[!p[i][j], !p[k][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_sat_with_model() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 = 1  =>  x1 = 0, x2 = 1.
        let mut s = Solver::new();
        let mut vars = Vec::new();
        let (x0, x1, x2) = (
            lit(&mut s, &mut vars, 0, true),
            lit(&mut s, &mut vars, 1, true),
            lit(&mut s, &mut vars, 2, true),
        );
        for (a, b) in [(x0, x1), (x1, x2)] {
            s.add_clause(&[a, b]);
            s.add_clause(&[!a, !b]);
        }
        s.add_clause(&[x0]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_lit(x0), Some(true));
        assert_eq!(s.model_lit(x1), Some(false));
        assert_eq!(s.model_lit(x2), Some(true));
    }

    #[test]
    fn assumptions_toggle_satisfiability() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
        s.add_clause(&[!Lit::positive(a), !Lit::positive(b)]);
        assert_eq!(
            s.solve_with_assumptions(&[Lit::positive(a), Lit::positive(b)]),
            SolveResult::Unsat
        );
        assert_eq!(
            s.solve_with_assumptions(&[Lit::positive(a), Lit::negative(b)]),
            SolveResult::Sat
        );
        // Solver remains usable afterwards.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn random_3sat_against_brute_force() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..60 {
            let n = 8usize;
            let m = rng.random_range(8..40usize);
            let clauses: Vec<Vec<(usize, bool)>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| (rng.random_range(0..n), rng.random_bool(0.5)))
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0..(1u32 << n) {
                for c in &clauses {
                    if !c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // Solver.
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for c in &clauses {
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|&(v, pos)| Lit::with_polarity(vars[v], pos))
                    .collect();
                s.add_clause(&lits);
            }
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, brute_sat, "round {round} mismatch");
            if got {
                // Verify the model satisfies every clause.
                for c in &clauses {
                    assert!(c
                        .iter()
                        .any(|&(v, pos)| { s.model_value(vars[v]).expect("assigned") == pos }));
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}
