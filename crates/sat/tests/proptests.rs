//! Property-based tests of the SAT solver and equivalence checker.

use gnnunlock_netlist::{generator::BenchmarkSpec, GateType};
use gnnunlock_sat::{check_equivalence, Cnf, EquivOptions, Lit, SolveResult, Solver};
use proptest::prelude::*;

/// Random 3-CNF as (var, polarity) triples.
fn random_cnf(n_vars: usize, clauses: Vec<Vec<(usize, bool)>>) -> (Solver, Vec<Lit>, bool) {
    // Brute force reference.
    let mut brute_sat = false;
    'outer: for bits in 0..(1u32 << n_vars) {
        for c in &clauses {
            if !c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos) {
                continue 'outer;
            }
        }
        brute_sat = true;
        break;
    }
    let mut solver = Solver::new();
    let lits: Vec<Lit> = (0..n_vars)
        .map(|_| Lit::positive(solver.new_var()))
        .collect();
    for c in &clauses {
        let cl: Vec<Lit> = c
            .iter()
            .map(|&(v, pos)| if pos { lits[v] } else { !lits[v] })
            .collect();
        solver.add_clause(&cl);
    }
    (solver, lits, brute_sat)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The solver agrees with brute force on random small formulas, and
    /// SAT models satisfy every clause.
    #[test]
    fn solver_matches_brute_force(
        clauses in prop::collection::vec(
            prop::collection::vec((0usize..9, any::<bool>()), 1..4),
            1..50
        )
    ) {
        let (mut solver, lits, expected) = random_cnf(9, clauses.clone());
        let got = solver.solve() == SolveResult::Sat;
        prop_assert_eq!(got, expected);
        if got {
            for c in &clauses {
                let satisfied = c
                    .iter()
                    .any(|&(v, pos)| solver.model_lit(lits[v]) == Some(pos));
                prop_assert!(satisfied, "model violates a clause");
            }
        }
    }

    /// Assumption-based solving is consistent with adding unit clauses.
    #[test]
    fn assumptions_equal_units(
        clauses in prop::collection::vec(
            prop::collection::vec((0usize..6, any::<bool>()), 1..4),
            1..25
        ),
        assumed in prop::collection::vec((0usize..6, any::<bool>()), 0..3)
    ) {
        let (mut s1, lits1, _) = random_cnf(6, clauses.clone());
        let assumptions: Vec<Lit> = assumed
            .iter()
            .map(|&(v, pos)| if pos { lits1[v] } else { !lits1[v] })
            .collect();
        let with_assumptions = s1.solve_with_assumptions(&assumptions);

        let (mut s2, lits2, _) = random_cnf(6, clauses);
        for &(v, pos) in &assumed {
            let l = if pos { lits2[v] } else { !lits2[v] };
            s2.add_clause(&[l]);
        }
        prop_assert_eq!(with_assumptions, s2.solve());
    }

    /// DIMACS round trip + solving through the loaded formula.
    #[test]
    fn dimacs_round_trip_preserves_satisfiability(
        clauses in prop::collection::vec(
            prop::collection::vec((0usize..7, any::<bool>()), 1..4),
            1..30
        )
    ) {
        let (mut direct, _, _) = random_cnf(7, clauses.clone());
        let cnf = Cnf {
            num_vars: 7,
            clauses: clauses
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|&(v, pos)| if pos { v as i32 + 1 } else { -(v as i32 + 1) })
                        .collect()
                })
                .collect(),
        };
        let reparsed = Cnf::from_dimacs(&cnf.to_dimacs()).unwrap();
        let (mut loaded, _) = reparsed.into_solver();
        prop_assert_eq!(direct.solve(), loaded.solve());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A circuit is always equivalent to itself, and a single gate-type
    /// flip is always caught (modulo logically-equal flips, excluded by
    /// construction here).
    #[test]
    fn cec_detects_single_gate_flips(seed in 0u64..500) {
        let mut spec = BenchmarkSpec::named("c2670").unwrap().scaled(0.02);
        spec.seed = seed;
        let nl = spec.generate();
        prop_assert!(
            check_equivalence(&nl, &nl.clone(), &EquivOptions::default()).is_equivalent()
        );
        let mut other = nl.clone();
        let victim = other
            .gate_ids()
            .find(|&g| other.gate_type(g) == GateType::And);
        if let Some(victim) = victim {
            other.set_gate_type(victim, GateType::Nand);
            let r = check_equivalence(&nl, &other, &EquivOptions::default());
            match r {
                gnnunlock_sat::EquivResult::NotEquivalent(cex) => {
                    prop_assert_ne!(
                        nl.eval_outputs(&cex, &[]).unwrap(),
                        other.eval_outputs(&cex, &[]).unwrap()
                    );
                }
                other_result => {
                    // A NAND flip is only undetectable if the gate is
                    // functionally dead; our generator keeps all gates
                    // live, so this must be NotEquivalent.
                    prop_assert!(false, "expected NotEquivalent, got {:?}", other_result);
                }
            }
        }
    }

    /// The staged pipeline agrees with the retained monolithic oracle
    /// (`equiv::reference`) on random netlists across three scenarios:
    /// identical circuits, a single-gate mutation, and a hand-locked
    /// circuit under the wrong key. Verdict classes must match exactly;
    /// any counterexample from either checker must distinguish.
    #[test]
    fn staged_pipeline_agrees_with_reference_oracle(seed in 0u64..500, wrong_key in any::<bool>()) {
        use gnnunlock_sat::equiv::reference;
        let mut spec = BenchmarkSpec::named("c2670").unwrap().scaled(0.02);
        spec.seed = seed;
        let nl = spec.generate();
        let mut mutated = nl.clone();
        let victim = mutated
            .gate_ids()
            .find(|&g| mutated.gate_type(g) == GateType::And);
        if let Some(victim) = victim {
            mutated.set_gate_type(victim, GateType::Nand);
        }
        let mut locked = nl.clone();
        let victim = locked.gate_ids().next().map(|g| locked.gate_output(g));
        let locked = victim.map(|victim| {
            let ki = locked.add_key_input("keyinput0");
            let kg = locked.add_gate(GateType::Xor, &[victim, ki]);
            let knet = locked.gate_output(kg);
            locked.replace_net_uses(victim, knet);
            locked.set_gate_inputs(kg, &[victim, ki]);
            locked
        });
        let keyed = EquivOptions { key_b: Some(vec![wrong_key]), ..Default::default() };
        let mut scenarios = vec![
            (nl.clone(), EquivOptions::default()),
            (mutated, EquivOptions::default()),
        ];
        if let Some(locked) = locked {
            scenarios.push((locked, keyed));
        }
        for (other, opts) in scenarios {
            let staged = check_equivalence(&nl, &other, &opts);
            let oracle = reference::check_equivalence(&nl, &other, &opts);
            prop_assert_eq!(
                staged.is_equivalent(),
                oracle.is_equivalent(),
                "verdicts diverge: staged {:?} vs oracle {:?}",
                staged,
                oracle
            );
            for r in [&staged, &oracle] {
                if let gnnunlock_sat::EquivResult::NotEquivalent(cex) = r {
                    prop_assert_ne!(
                        nl.eval_outputs(cex, &[]).unwrap(),
                        other.eval_outputs(cex, &opts.key_b.clone().unwrap_or_default()).unwrap()
                    );
                }
            }
        }
    }

    /// Equivalence verdicts — including counterexample bytes — are
    /// independent of the worker count.
    #[test]
    fn verdicts_are_worker_count_independent(seed in 0u64..500, sim_words in 0usize..3) {
        let mut spec = BenchmarkSpec::named("c2670").unwrap().scaled(0.02);
        spec.seed = seed;
        let nl = spec.generate();
        let mut other = nl.clone();
        let victim = other
            .gate_ids()
            .find(|&g| other.gate_type(g) == GateType::And);
        if let Some(victim) = victim {
            other.set_gate_type(victim, GateType::Nand);
        }
        // Tiny sim budgets force the SAT stage to decide some cases.
        let base = EquivOptions { sim_words, ..Default::default() };
        let serial_eq = check_equivalence(&nl, &nl.clone(), &base);
        let serial_ne = check_equivalence(&nl, &other, &base);
        for workers in [2usize, 5] {
            let opts = EquivOptions { workers, ..base.clone() };
            prop_assert_eq!(&check_equivalence(&nl, &nl.clone(), &opts), &serial_eq);
            prop_assert_eq!(&check_equivalence(&nl, &other, &opts), &serial_ne);
        }
    }

    /// Key-bound equivalence: a hand-locked circuit equals the original
    /// under the pass-through key and differs under the flipped key.
    #[test]
    fn key_binding_controls_equivalence(seed in 0u64..200) {
        let mut spec = BenchmarkSpec::named("c3540").unwrap().scaled(0.02);
        spec.seed = seed;
        let nl = spec.generate();
        // Insert one XOR key gate on the first internal net.
        let mut locked = nl.clone();
        let victim = locked.gate_ids().next().map(|g| locked.gate_output(g));
        let Some(victim) = victim else { return Ok(()); };
        let ki = locked.add_key_input("keyinput0");
        let kg = locked.add_gate(GateType::Xor, &[victim, ki]);
        let knet = locked.gate_output(kg);
        locked.replace_net_uses(victim, knet);
        locked.set_gate_inputs(kg, &[victim, ki]);
        let good = EquivOptions { key_b: Some(vec![false]), ..Default::default() };
        prop_assert!(check_equivalence(&nl, &locked, &good).is_equivalent());
        let bad = EquivOptions { key_b: Some(vec![true]), ..Default::default() };
        prop_assert!(!check_equivalence(&nl, &locked, &bad).is_equivalent());
    }
}
