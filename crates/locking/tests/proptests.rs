//! Property-based tests of the locking schemes' security contracts.

use gnnunlock_locking::{
    lock_antisat, lock_caslock, lock_rll, lock_sfll_hd, AntiSatConfig, CasLockConfig, SfllConfig,
};
use gnnunlock_netlist::{generator::BenchmarkSpec, Netlist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn design(seed: u64) -> Netlist {
    let names = ["c2670", "c3540", "c5315", "c7552"];
    let mut spec = BenchmarkSpec::named(names[(seed % 4) as usize])
        .unwrap()
        .scaled(0.02);
    spec.seed = seed;
    spec.generate()
}

fn patterns(nl: &Netlist, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let n = nl.primary_inputs().len();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n).map(|_| rng.random_bool(0.5)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every scheme: correct key ⇒ original behaviour on random patterns.
    #[test]
    fn all_schemes_transparent_under_correct_key(seed in 0u64..2000) {
        let nl = design(seed);
        if nl.primary_inputs().len() < 12 {
            return Ok(());
        }
        let locked = vec![
            lock_antisat(&nl, &AntiSatConfig::new(8, seed)).unwrap(),
            lock_caslock(&nl, &CasLockConfig::new(8, seed)).unwrap(),
            lock_sfll_hd(&nl, &SfllConfig::new(10, 2, seed)).unwrap(),
            lock_sfll_hd(&nl, &SfllConfig::new(10, 0, seed)).unwrap(),
            lock_rll(&nl, 8, seed).unwrap(),
        ];
        for lc in &locked {
            for p in patterns(&nl, 8, seed ^ 0x11) {
                prop_assert_eq!(
                    nl.eval_outputs(&p, &[]).unwrap(),
                    lc.eval_with_correct_key(&p).unwrap(),
                    "{:?} not transparent", lc.scheme
                );
            }
        }
    }

    /// Key-size accounting: the locked circuit declares exactly K key
    /// inputs, and the stored key has K bits.
    #[test]
    fn key_accounting(seed in 0u64..2000, k_exp in 2u32..5) {
        let nl = design(seed);
        let k = 1usize << k_exp; // 4..16
        if nl.primary_inputs().len() < k {
            return Ok(());
        }
        for lc in [
            lock_antisat(&nl, &AntiSatConfig::new(k, seed)).unwrap(),
            lock_sfll_hd(&nl, &SfllConfig::new(k, 2.min(k as u32), seed)).unwrap(),
        ] {
            prop_assert_eq!(lc.netlist.key_inputs().len(), k);
            prop_assert_eq!(lc.key.len(), k);
        }
    }

    /// SFLL protected-input bookkeeping: the recorded names are distinct
    /// PIs of the original design, and exactly K of them.
    #[test]
    fn sfll_protected_inputs_valid(seed in 0u64..2000) {
        let nl = design(seed);
        if nl.primary_inputs().len() < 10 {
            return Ok(());
        }
        let lc = lock_sfll_hd(&nl, &SfllConfig::new(10, 2, seed)).unwrap();
        prop_assert_eq!(lc.protected_inputs.len(), 10);
        let mut sorted = lc.protected_inputs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 10, "duplicate protected inputs");
        for name in &lc.protected_inputs {
            prop_assert!(nl.net_by_name(name).is_some(), "unknown PI {}", name);
        }
    }

    /// Role partitions: protection labels only on added gates; the
    /// original design gates all stay `Design`.
    #[test]
    fn roles_only_on_added_gates(seed in 0u64..2000) {
        let nl = design(seed);
        if nl.primary_inputs().len() < 12 {
            return Ok(());
        }
        let orig_gates = nl.num_gates();
        for lc in [
            lock_antisat(&nl, &AntiSatConfig::new(8, seed)).unwrap(),
            lock_caslock(&nl, &CasLockConfig::new(8, seed)).unwrap(),
            lock_sfll_hd(&nl, &SfllConfig::new(10, 2, seed)).unwrap(),
        ] {
            let [dn, pn, rn, an] = lc.netlist.role_histogram();
            prop_assert!(dn >= orig_gates, "design gates lost");
            prop_assert_eq!(
                dn + pn + rn + an,
                lc.netlist.num_gates(),
                "role histogram inconsistent"
            );
            prop_assert!(pn + rn + an > 0, "no protection labels");
        }
    }

    /// SFLL stripping property: under the all-wrong key (complement), the
    /// target output differs from the original for at least one protected
    /// pattern, and the circuit is otherwise mostly intact.
    #[test]
    fn sfll_strips_protected_patterns(seed in 0u64..500) {
        let nl = design(seed);
        if nl.primary_inputs().len() < 10 {
            return Ok(());
        }
        let lc = lock_sfll_hd(&nl, &SfllConfig::new(10, 2, seed)).unwrap();
        // Build a pattern at HD 2 from the key on the protected bits.
        let pi_names: Vec<String> = nl
            .inputs()
            .filter(|(_, k, _)| *k == gnnunlock_netlist::InputKind::Primary)
            .map(|(n, _, _)| n.to_string())
            .collect();
        let mut pattern = vec![false; pi_names.len()];
        for (i, pname) in lc.protected_inputs.iter().enumerate() {
            let pos = pi_names.iter().position(|n| n == pname).unwrap();
            pattern[pos] = if i < 2 { !lc.key.bit(i) } else { lc.key.bit(i) };
        }
        let far_key: Vec<bool> = lc.key.bits().iter().map(|b| !b).collect();
        let orig = nl.eval_outputs(&pattern, &[]).unwrap();
        let stripped = lc.netlist.eval_outputs(&pattern, &far_key).unwrap();
        let target_idx = nl.outputs().position(|(n, _)| n == lc.target).unwrap();
        prop_assert_ne!(orig[target_idx], stripped[target_idx]);
    }
}
