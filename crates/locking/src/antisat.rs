//! Anti-SAT logic locking (Xie & Srivastava, CHES 2016).
//!
//! The Anti-SAT block taps `n = K/2` primary inputs `X`. Two complementary
//! functions are built over key-mixed copies of `X`: `g` (an AND tree) and
//! `ḡ` (a NAND tree). Their outputs feed an AND gate producing `Y`, which
//! is XORed into an internal net of the design. With the correct key the
//! two key-mixing layers cancel, `Y` is constantly 0, and the design is
//! untouched; a wrong key makes `Y` fire for some input patterns.
//!
//! Key mixing uses XOR gates where the secret key bit is 0 and XNOR gates
//! where it is 1, so the *structure* of the block depends on the key value
//! — exactly the variability the GNN must learn (paper Section IV-A).

use crate::key::Key;
use crate::locked::{LockedCircuit, Scheme};
use gnnunlock_netlist::{GateType, NetId, Netlist, NodeRole};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`lock_antisat`].
#[derive(Debug, Clone)]
pub struct AntiSatConfig {
    /// Total key bits `K` (must be even and ≥ 4); the block taps `K/2`
    /// primary inputs.
    pub key_bits: usize,
    /// RNG seed controlling the key value, tapped inputs and insertion
    /// point.
    pub seed: u64,
}

impl AntiSatConfig {
    /// Convenience constructor.
    pub fn new(key_bits: usize, seed: u64) -> Self {
        AntiSatConfig { key_bits, seed }
    }
}

/// Lock `original` with an Anti-SAT block.
///
/// All block gates are labelled [`NodeRole::AntiSat`]; the XOR that mixes
/// `Y` into the design keeps the design label (like SFLL's stripping XOR,
/// it computes part of the locked design's function — removal ties `Y` to
/// its inactive 0 and the XOR constant-propagates away).
///
/// # Errors
///
/// Returns an error message if the design has fewer than `K/2` primary
/// inputs or no internal net to lock.
pub fn lock_antisat(original: &Netlist, cfg: &AntiSatConfig) -> Result<LockedCircuit, String> {
    if !cfg.key_bits.is_multiple_of(2) || cfg.key_bits < 4 {
        return Err(format!(
            "key_bits must be even and ≥ 4, got {}",
            cfg.key_bits
        ));
    }
    let n = cfg.key_bits / 2;
    let pis = original.primary_inputs();
    if pis.len() < n {
        return Err(format!(
            "design has {} primary inputs, Anti-SAT with K={} needs {}",
            pis.len(),
            cfg.key_bits,
            n
        ));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let key = Key::random(cfg.key_bits, rng.random());

    let mut nl = original.clone();
    nl.set_name(format!("{}_antisat_k{}", original.name(), cfg.key_bits));

    // Select n distinct PIs as X (indices into the PI list).
    let mut indices: Vec<usize> = (0..pis.len()).collect();
    for i in 0..n {
        let j = rng.random_range(i..indices.len());
        indices.swap(i, j);
    }
    indices.truncate(n);
    let taps: Vec<NetId> = indices.iter().map(|&i| pis[i]).collect();
    let tap_names: Vec<String> = taps.iter().map(|&t| nl.net_name(t).to_string()).collect();

    // Key inputs: bits 0..n feed g, bits n..2n feed ḡ.
    let kis: Vec<NetId> = (0..cfg.key_bits)
        .map(|i| nl.add_key_input(format!("keyinput{i}")))
        .collect();

    // Key-mixing layer for one half; polarity chosen so that the correct
    // key passes X through unchanged.
    let mix = |nl: &mut Netlist, offset: usize| -> Vec<NetId> {
        taps.iter()
            .enumerate()
            .map(|(i, &x)| {
                let ty = if key.bit(offset + i) {
                    GateType::Xnor
                } else {
                    GateType::Xor
                };
                let g = nl.add_gate_with_role(ty, &[x, kis[offset + i]], NodeRole::AntiSat);
                nl.gate_output(g)
            })
            .collect()
    };
    let g_leaves = mix(&mut nl, 0);
    let gbar_leaves = mix(&mut nl, n);

    // g: one wide AND; ḡ: one wide NAND — matching the bench-format
    // netlists the authors' Anti-SAT binary emits (single n-input gates,
    // not balanced trees). A later technology mapping decomposes them.
    let g_out = reduce(&mut nl, &g_leaves, false);
    let gbar_out = reduce(&mut nl, &gbar_leaves, true);
    let y_gate = nl.add_gate_with_role(GateType::And, &[g_out, gbar_out], NodeRole::AntiSat);
    let y = nl.gate_output(y_gate);

    // Integrate: pick an internal net (gate-driven, feeding other design
    // logic or an output) and XOR Y into it.
    let fanout = nl.fanout_map();
    let candidates: Vec<NetId> = original
        .gate_ids()
        .map(|g| original.gate_output(g))
        .filter(|&net| fanout.fanout_count(net) > 0)
        .collect();
    if candidates.is_empty() {
        return Err("design has no internal net to lock".into());
    }
    let victim = candidates[rng.random_range(0..candidates.len())];
    let victim_name = nl.net_name(victim).to_string();
    let xor = nl.add_gate(GateType::Xor, &[victim, y]);
    let locked_net = nl.gate_output(xor);
    // Readers of the victim net now read the locked net; the XOR itself
    // keeps reading the victim.
    nl.replace_net_uses(victim, locked_net);
    nl.set_gate_inputs(xor, &[victim, y]);

    Ok(LockedCircuit {
        netlist: nl,
        scheme: Scheme::AntiSat,
        key,
        protected_inputs: tap_names,
        target: victim_name,
    })
}

/// One wide AND (or NAND when `invert` is set) over `leaves`; a single
/// leaf degenerates to a BUF/INV.
fn reduce(nl: &mut Netlist, leaves: &[NetId], invert: bool) -> NetId {
    assert!(!leaves.is_empty());
    if leaves.len() == 1 {
        let ty = if invert { GateType::Inv } else { GateType::Buf };
        let g = nl.add_gate_with_role(ty, leaves, NodeRole::AntiSat);
        return nl.gate_output(g);
    }
    let ty = if invert {
        GateType::Nand
    } else {
        GateType::And
    };
    let g = nl.add_gate_with_role(ty, leaves, NodeRole::AntiSat);
    nl.gate_output(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_netlist::generator::BenchmarkSpec;

    fn small_design() -> Netlist {
        BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate()
    }

    #[test]
    fn correct_key_preserves_function() {
        let orig = small_design();
        let locked = lock_antisat(&orig, &AntiSatConfig::new(8, 3)).unwrap();
        let n_pi = orig.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..40 {
            let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
            assert_eq!(
                orig.eval_outputs(&pi, &[]).unwrap(),
                locked.eval_with_correct_key(&pi).unwrap()
            );
        }
    }

    #[test]
    fn wrong_key_corrupts_some_input() {
        let orig = small_design();
        let locked = lock_antisat(&orig, &AntiSatConfig::new(8, 3)).unwrap();
        // Flipping one bit of one half makes Y fire when the mixed inputs
        // align; search a few hundred random patterns for a corruption.
        let bad_key = locked.key.with_flipped(0);
        let n_pi = orig.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(11);
        let mut corrupted = false;
        for _ in 0..2000 {
            let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
            if orig.eval_outputs(&pi, &[]).unwrap()
                != locked.netlist.eval_outputs(&pi, bad_key.bits()).unwrap()
            {
                corrupted = true;
                break;
            }
        }
        assert!(corrupted, "wrong key never corrupted the design");
    }

    #[test]
    fn all_added_gates_are_labelled() {
        let orig = small_design();
        let locked = lock_antisat(&orig, &AntiSatConfig::new(16, 5)).unwrap();
        let roles = locked.netlist.role_histogram();
        // Design gains exactly the integration XOR.
        assert_eq!(roles[0], orig.num_gates() + 1, "design gate count changed");
        // 2n key XOR/XNORs + wide AND + wide NAND + Y AND.
        assert_eq!(
            roles[3],
            16 + 3,
            "unexpected Anti-SAT block size: {roles:?}"
        );
        assert_eq!(roles[1], 0);
        assert_eq!(roles[2], 0);
    }

    #[test]
    fn every_antisat_gate_has_key_in_cone_except_none() {
        let orig = small_design();
        let locked = lock_antisat(&orig, &AntiSatConfig::new(8, 7)).unwrap();
        let nl = &locked.netlist;
        for g in nl.gate_ids() {
            if nl.role(g) == NodeRole::AntiSat {
                assert!(nl.cone_has_key_input(g), "Anti-SAT gate without KI in cone");
            }
        }
    }

    #[test]
    fn structure_depends_on_key_value() {
        let orig = small_design();
        let a = lock_antisat(&orig, &AntiSatConfig::new(16, 1)).unwrap();
        let b = lock_antisat(&orig, &AntiSatConfig::new(16, 2)).unwrap();
        assert_ne!(a.key, b.key);
        // Different keys yield different XOR/XNOR mixes.
        let count = |lc: &LockedCircuit, ty: GateType| {
            lc.netlist
                .gate_ids()
                .filter(|&g| {
                    lc.netlist.role(g) == NodeRole::AntiSat && lc.netlist.gate_type(g) == ty
                })
                .count()
        };
        assert_ne!(
            count(&a, GateType::Xnor),
            count(&b, GateType::Xnor),
            "key-dependent structure expected"
        );
    }

    #[test]
    fn rejects_undersized_designs() {
        let mut tiny = Netlist::new("tiny");
        let a = tiny.add_primary_input("a");
        let g = tiny.add_gate(GateType::Inv, &[a]);
        tiny.add_output("y", tiny.gate_output(g));
        assert!(lock_antisat(&tiny, &AntiSatConfig::new(8, 0)).is_err());
        assert!(lock_antisat(&tiny, &AntiSatConfig::new(7, 0)).is_err());
    }
}
