//! Shared types describing a locked circuit instance.

use crate::key::Key;
use gnnunlock_netlist::Netlist;
use std::fmt;

/// Which locking scheme produced a [`LockedCircuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Anti-SAT (Xie & Srivastava, CHES 2016).
    AntiSat,
    /// TTLock (Yasin et al., GLSVLSI 2017) — equivalent to SFLL-HD₀.
    TtLock,
    /// SFLL-HD_h (Yasin et al., CCS 2017) with the given Hamming distance.
    SfllHd(u32),
    /// CAS-Lock (Shakya et al., CHES 2020): Anti-SAT with alternating
    /// AND/OR cascades — implemented as an extension.
    CasLock,
    /// Random XOR/XNOR key-gate insertion (EPIC-style); the non-PSLL
    /// baseline target used by the oracle-guided SAT attack demo.
    Rll,
}

impl Scheme {
    /// Number of node classes the GNN distinguishes for this scheme
    /// (paper Table II: 3 for SFLL-HD/TTLock, 2 for Anti-SAT).
    pub fn num_classes(self) -> usize {
        match self {
            Scheme::AntiSat | Scheme::CasLock => 2,
            Scheme::TtLock | Scheme::SfllHd(_) => 3,
            Scheme::Rll => 2,
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::AntiSat => write!(f, "Anti-SAT"),
            Scheme::CasLock => write!(f, "CAS-Lock"),
            Scheme::TtLock => write!(f, "TTLock"),
            Scheme::SfllHd(h) => write!(f, "SFLL-HD{h}"),
            Scheme::Rll => write!(f, "RLL"),
        }
    }
}

/// A locked netlist together with its ground-truth secret material.
///
/// The ground truth (`key`, `protected_inputs`) is used only for dataset
/// labelling and end-of-attack verification — the attack itself never reads
/// it (oracle-less setting).
#[derive(Debug, Clone)]
pub struct LockedCircuit {
    /// The locked netlist; protection gates carry their
    /// [`gnnunlock_netlist::NodeRole`] labels.
    pub netlist: Netlist,
    /// The locking scheme used.
    pub scheme: Scheme,
    /// The correct key (bit `i` drives `keyinput{i}`).
    pub key: Key,
    /// Names of the primary inputs selected as the protected set `X`
    /// (SFLL/TTLock) or tapped by the Anti-SAT block. Empty for RLL.
    pub protected_inputs: Vec<String>,
    /// Name of the output (SFLL/TTLock) or internal net (Anti-SAT) whose
    /// function the protection modifies.
    pub target: String,
}

impl LockedCircuit {
    /// Evaluate the locked circuit under its correct key.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn eval_with_correct_key(&self, pi: &[bool]) -> gnnunlock_netlist::Result<Vec<bool>> {
        self.netlist.eval_outputs(pi, self.key.bits())
    }
}

impl fmt::Display for LockedCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} locked with {} (K={})",
            self.netlist,
            self.scheme,
            self.key.len()
        )
    }
}
