//! CAS-Lock logic locking (Shakya et al., CHES 2020) — the paper's
//! reference \[12\], implemented as an extension beyond the three evaluated
//! schemes to exercise GNNUnlock's "any desired protection logic" claim.
//!
//! CAS-Lock replaces Anti-SAT's AND trees with *cascades* of alternating
//! AND/OR gates over the key-mixed inputs, trading SAT resilience against
//! output corruptibility. As in Anti-SAT, two complementary cascades
//! (`g`, `ḡ`) feed an AND gate whose output `Y` is 0 under the correct
//! key and is XORed into an internal net.

use crate::key::Key;
use crate::locked::{LockedCircuit, Scheme};
use gnnunlock_netlist::{GateType, NetId, Netlist, NodeRole};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`lock_caslock`].
#[derive(Debug, Clone)]
pub struct CasLockConfig {
    /// Total key bits `K` (even, ≥ 4); the block taps `K/2` PIs.
    pub key_bits: usize,
    /// RNG seed (key value, taps, cascade pattern, insertion point).
    pub seed: u64,
}

impl CasLockConfig {
    /// Convenience constructor.
    pub fn new(key_bits: usize, seed: u64) -> Self {
        CasLockConfig { key_bits, seed }
    }
}

/// Lock `original` with a CAS-Lock block. Block gates are labelled
/// [`NodeRole::AntiSat`] (the same detection class the GNN uses for
/// Anti-SAT — CAS-Lock is its cascade-structured sibling).
///
/// # Errors
///
/// Returns an error message if the design is too small.
pub fn lock_caslock(original: &Netlist, cfg: &CasLockConfig) -> Result<LockedCircuit, String> {
    if !cfg.key_bits.is_multiple_of(2) || cfg.key_bits < 4 {
        return Err(format!(
            "key_bits must be even and ≥ 4, got {}",
            cfg.key_bits
        ));
    }
    let n = cfg.key_bits / 2;
    let pis = original.primary_inputs();
    if pis.len() < n {
        return Err(format!(
            "design has {} primary inputs, CAS-Lock with K={} needs {}",
            pis.len(),
            cfg.key_bits,
            n
        ));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let key = Key::random(cfg.key_bits, rng.random());
    // Cascade gate pattern: alternating AND/OR decided per stage. The
    // *same* pattern must be used in both halves so the complementary
    // construction cancels under the correct key; corruptibility is tuned
    // by the AND/OR mix (all-AND degenerates to Anti-SAT).
    let pattern: Vec<bool> = (0..n.saturating_sub(1))
        .map(|_| rng.random_bool(0.4)) // true = OR stage
        .collect();

    let mut nl = original.clone();
    nl.set_name(format!("{}_caslock_k{}", original.name(), cfg.key_bits));

    let mut indices: Vec<usize> = (0..pis.len()).collect();
    for i in 0..n {
        let j = rng.random_range(i..indices.len());
        indices.swap(i, j);
    }
    indices.truncate(n);
    let taps: Vec<NetId> = indices.iter().map(|&i| pis[i]).collect();
    let tap_names: Vec<String> = taps.iter().map(|&t| nl.net_name(t).to_string()).collect();
    let kis: Vec<NetId> = (0..cfg.key_bits)
        .map(|i| nl.add_key_input(format!("keyinput{i}")))
        .collect();

    // Key-mixing layer per half (polarity makes the correct key the
    // identity), then the cascade.
    let build_half = |nl: &mut Netlist, offset: usize, invert_out: bool| -> NetId {
        let leaves: Vec<NetId> = taps
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let ty = if key.bit(offset + i) {
                    GateType::Xnor
                } else {
                    GateType::Xor
                };
                let g = nl.add_gate_with_role(ty, &[x, kis[offset + i]], NodeRole::AntiSat);
                nl.gate_output(g)
            })
            .collect();
        let mut acc = leaves[0];
        for (stage, &leaf) in leaves[1..].iter().enumerate() {
            let is_or = pattern.get(stage).copied().unwrap_or(false);
            let last = stage + 2 == leaves.len();
            let ty = match (is_or, invert_out && last) {
                (false, false) => GateType::And,
                (false, true) => GateType::Nand,
                (true, false) => GateType::Or,
                (true, true) => GateType::Nor,
            };
            let g = nl.add_gate_with_role(ty, &[acc, leaf], NodeRole::AntiSat);
            acc = nl.gate_output(g);
        }
        if leaves.len() == 1 && invert_out {
            let g = nl.add_gate_with_role(GateType::Inv, &[acc], NodeRole::AntiSat);
            acc = nl.gate_output(g);
        }
        acc
    };
    let g_out = build_half(&mut nl, 0, false);
    let gbar_out = build_half(&mut nl, n, true);
    let y_gate = nl.add_gate_with_role(GateType::And, &[g_out, gbar_out], NodeRole::AntiSat);
    let y = nl.gate_output(y_gate);

    // Integration (same as Anti-SAT: design-labelled XOR).
    let fanout = nl.fanout_map();
    let candidates: Vec<NetId> = original
        .gate_ids()
        .map(|g| original.gate_output(g))
        .filter(|&net| fanout.fanout_count(net) > 0)
        .collect();
    if candidates.is_empty() {
        return Err("design has no internal net to lock".into());
    }
    let victim = candidates[rng.random_range(0..candidates.len())];
    let victim_name = nl.net_name(victim).to_string();
    let xor = nl.add_gate(GateType::Xor, &[victim, y]);
    let locked_net = nl.gate_output(xor);
    nl.replace_net_uses(victim, locked_net);
    nl.set_gate_inputs(xor, &[victim, y]);

    Ok(LockedCircuit {
        netlist: nl,
        scheme: Scheme::CasLock,
        key,
        protected_inputs: tap_names,
        target: victim_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_netlist::generator::BenchmarkSpec;

    fn small_design() -> Netlist {
        BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate()
    }

    #[test]
    fn correct_key_preserves_function() {
        let orig = small_design();
        let locked = lock_caslock(&orig, &CasLockConfig::new(12, 3)).unwrap();
        let n_pi = orig.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
            assert_eq!(
                orig.eval_outputs(&pi, &[]).unwrap(),
                locked.eval_with_correct_key(&pi).unwrap()
            );
        }
    }

    #[test]
    fn wrong_key_corrupts() {
        let orig = small_design();
        let locked = lock_caslock(&orig, &CasLockConfig::new(8, 5)).unwrap();
        let bad = locked.key.with_flipped(1);
        let n_pi = orig.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(6);
        let mut diff = false;
        for _ in 0..3000 {
            let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
            if orig.eval_outputs(&pi, &[]).unwrap()
                != locked.netlist.eval_outputs(&pi, bad.bits()).unwrap()
            {
                diff = true;
                break;
            }
        }
        assert!(diff, "wrong key never corrupted");
    }

    #[test]
    fn cascade_contains_or_stages() {
        // The defining structural difference from Anti-SAT: OR/NOR gates
        // inside the block.
        let orig = small_design();
        let locked = lock_caslock(&orig, &CasLockConfig::new(16, 2)).unwrap();
        let nl = &locked.netlist;
        let has_or = nl.gate_ids().any(|g| {
            nl.role(g) == NodeRole::AntiSat
                && matches!(nl.gate_type(g), GateType::Or | GateType::Nor)
        });
        assert!(has_or, "no OR stage in cascade (try another seed)");
    }

    #[test]
    fn block_gates_have_keys_in_cone() {
        let orig = small_design();
        let locked = lock_caslock(&orig, &CasLockConfig::new(8, 9)).unwrap();
        let nl = &locked.netlist;
        for g in nl.gate_ids() {
            if nl.role(g) == NodeRole::AntiSat {
                assert!(nl.cone_has_key_input(g));
            }
        }
    }

    #[test]
    fn removal_with_true_labels_recovers() {
        // The Anti-SAT removal path generalizes to CAS-Lock unchanged.
        use gnnunlock_netlist::CellLibrary;
        let orig = small_design();
        let locked = lock_caslock(&orig, &CasLockConfig::new(12, 7)).unwrap();
        // Validate as a bench-format circuit (same flow as Anti-SAT).
        locked.netlist.validate(Some(CellLibrary::Bench8)).unwrap();
    }
}
