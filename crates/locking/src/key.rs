//! Secret keys for logic locking.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// A logic-locking secret key: an ordered bit vector, one bit per key input
/// (`keyinput0` is bit 0).
///
/// # Examples
///
/// ```
/// use gnnunlock_locking::Key;
/// let k = Key::random(8, 42);
/// assert_eq!(k.len(), 8);
/// let again = Key::from_bits(k.bits().to_vec());
/// assert_eq!(k, again);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Key {
    bits: Vec<bool>,
}

impl Key {
    /// Build a key from explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Key { bits }
    }

    /// Uniformly random key of `len` bits from `seed`.
    pub fn random(len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Key {
            bits: (0..len).map(|_| rng.random_bool(0.5)).collect(),
        }
    }

    /// All-zero key of `len` bits.
    pub fn zero(len: usize) -> Self {
        Key {
            bits: vec![false; len],
        }
    }

    /// Number of key bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the key has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// The underlying bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Hamming distance to another equal-length key.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &Key) -> usize {
        assert_eq!(self.len(), other.len(), "key length mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Flip bit `i`, returning a new key.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_flipped(&self, i: usize) -> Key {
        let mut bits = self.bits.clone();
        bits[i] = !bits[i];
        Key { bits }
    }
}

impl fmt::Display for Key {
    /// MSB-last bit string (bit 0 printed first), e.g. `0110`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Key::random(64, 1), Key::random(64, 1));
        assert_ne!(Key::random(64, 1), Key::random(64, 2));
    }

    #[test]
    fn hamming_distance_counts_flips() {
        let k = Key::zero(8);
        let mut other = k.clone();
        for i in [1, 3, 6] {
            other = other.with_flipped(i);
        }
        assert_eq!(k.hamming_distance(&other), 3);
        assert_eq!(other.hamming_distance(&other), 0);
    }

    #[test]
    fn display_prints_bits() {
        let k = Key::from_bits(vec![false, true, true, false]);
        assert_eq!(k.to_string(), "0110");
    }
}
