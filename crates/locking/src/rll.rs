//! Random logic locking (RLL / EPIC-style XOR key gates).
//!
//! Not a PSLL scheme — included as the background target for the
//! oracle-guided SAT attack demo (paper Section I: pre-SAT-attack locking)
//! and to exercise the framework on conventional key-gate insertion.

use crate::key::Key;
use crate::locked::{LockedCircuit, Scheme};
use gnnunlock_netlist::{GateType, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Lock `original` by inserting `key_bits` XOR/XNOR key gates on random
/// internal nets.
///
/// For key bit 0 an XOR gate is inserted (pass-through at `k=0`); for key
/// bit 1 an XNOR gate (pass-through at `k=1`). Key gates keep the
/// [`gnnunlock_netlist::NodeRole::Design`] label — RLL is not a target of
/// the GNNUnlock classifier.
///
/// # Errors
///
/// Returns an error message if the design has fewer internal nets than
/// `key_bits`.
pub fn lock_rll(original: &Netlist, key_bits: usize, seed: u64) -> Result<LockedCircuit, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let key = Key::random(key_bits, rng.random());
    let mut nl = original.clone();
    nl.set_name(format!("{}_rll_k{}", original.name(), key_bits));

    let candidates: Vec<NetId> = original
        .gate_ids()
        .map(|g| original.gate_output(g))
        .collect();
    if candidates.len() < key_bits {
        return Err(format!(
            "design has {} internal nets, RLL with K={key_bits} needs {key_bits}",
            candidates.len()
        ));
    }
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    for i in 0..key_bits {
        let j = rng.random_range(i..order.len());
        order.swap(i, j);
    }
    for (bit, &idx) in order.iter().take(key_bits).enumerate() {
        let victim = candidates[idx];
        let ki = nl.add_key_input(format!("keyinput{bit}"));
        let ty = if key.bit(bit) {
            GateType::Xnor
        } else {
            GateType::Xor
        };
        let g = nl.add_gate(ty, &[victim, ki]);
        let locked_net = nl.gate_output(g);
        nl.replace_net_uses(victim, locked_net);
        nl.set_gate_inputs(g, &[victim, ki]);
    }
    Ok(LockedCircuit {
        netlist: nl,
        scheme: Scheme::Rll,
        key,
        protected_inputs: Vec::new(),
        target: String::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_netlist::generator::BenchmarkSpec;

    #[test]
    fn correct_key_preserves_function() {
        let orig = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let locked = lock_rll(&orig, 8, 4).unwrap();
        let n_pi = orig.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
            assert_eq!(
                orig.eval_outputs(&pi, &[]).unwrap(),
                locked.eval_with_correct_key(&pi).unwrap()
            );
        }
    }

    #[test]
    fn wrong_key_corrupts() {
        let orig = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let locked = lock_rll(&orig, 8, 4).unwrap();
        let n_pi = orig.primary_inputs().len();
        let visible = |bad: &Key| {
            let mut rng = StdRng::seed_from_u64(2);
            (0..500).any(|_| {
                let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
                orig.eval_outputs(&pi, &[]).unwrap()
                    != locked.netlist.eval_outputs(&pi, bad.bits()).unwrap()
            })
        };
        // An individual key gate can sit behind logic that masks it for
        // any given pattern budget, so require most single-bit flips (not
        // all) to be visible, plus the fully wrong key.
        let single_visible = (0..8)
            .filter(|&bit| visible(&locked.key.with_flipped(bit)))
            .count();
        assert!(single_visible >= 6, "only {single_visible}/8 flips visible");
        let mut all_wrong = locked.key.clone();
        for bit in 0..8 {
            all_wrong = all_wrong.with_flipped(bit);
        }
        assert!(visible(&all_wrong), "fully wrong key never visible");
    }

    #[test]
    fn key_gate_count_matches() {
        let orig = BenchmarkSpec::named("c2670")
            .unwrap()
            .scaled(0.02)
            .generate();
        let locked = lock_rll(&orig, 16, 4).unwrap();
        assert_eq!(locked.netlist.num_gates(), orig.num_gates() + 16);
        assert_eq!(locked.netlist.key_inputs().len(), 16);
    }
}
