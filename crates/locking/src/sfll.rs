//! SFLL-HD and TTLock logic locking (Yasin et al., CCS 2017 / GLSVLSI
//! 2017).
//!
//! SFLL-HD_h strips the functionality of one output for every input whose
//! protected-bit pattern lies at Hamming distance `h` from the secret key:
//!
//! - the **perturb unit** computes `flip = (HD(X, K*) == h)` against the
//!   *hard-coded* key — inverters stand where key bits are 1, wires where
//!   they are 0, so its structure depends on the key value;
//! - `flip` is XORed into the target output, producing the
//!   functionality-stripped circuit (that XOR is part of the stripped
//!   design, not the protection cone — it is the gate the paper's
//!   post-processing walks through when checking "connected to RN");
//! - the **restore unit** computes `restore = (HD(X, K) == h)` from the
//!   key *inputs* and XORs it into the stripped output, cancelling the
//!   perturbation exactly when `K = K*`.
//!
//! TTLock is the `h = 0` special case; both units degenerate to equality
//! comparators (no adder trees), matching the paper's description.

use crate::key::Key;
use crate::locked::{LockedCircuit, Scheme};
use gnnunlock_netlist::{GateType, NetId, Netlist, NodeRole};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`lock_sfll_hd`].
#[derive(Debug, Clone)]
pub struct SfllConfig {
    /// Key size `K` = number of protected primary inputs.
    pub key_bits: usize,
    /// Hamming distance `h` (0 = TTLock).
    pub h: u32,
    /// RNG seed controlling key value, protected-input choice and target
    /// output.
    pub seed: u64,
}

impl SfllConfig {
    /// Convenience constructor.
    pub fn new(key_bits: usize, h: u32, seed: u64) -> Self {
        SfllConfig { key_bits, h, seed }
    }
}

/// Lock `original` with SFLL-HD_h.
///
/// Perturb-unit gates are labelled [`NodeRole::Perturb`], restore-unit
/// gates (including the final restore XOR) [`NodeRole::Restore`]; the
/// stripping XOR stays [`NodeRole::Design`].
///
/// # Errors
///
/// Returns an error message if `K` exceeds the number of primary inputs,
/// `h > K`, or the design has no outputs.
pub fn lock_sfll_hd(original: &Netlist, cfg: &SfllConfig) -> Result<LockedCircuit, String> {
    let k = cfg.key_bits;
    if k == 0 {
        return Err("key_bits must be positive".into());
    }
    if cfg.h as usize > k {
        return Err(format!("h={} exceeds key size {}", cfg.h, k));
    }
    let pis = original.primary_inputs();
    if pis.len() < k {
        return Err(format!(
            "design has {} primary inputs, SFLL with K={k} needs {k}",
            pis.len()
        ));
    }
    if original.num_outputs() == 0 {
        return Err("design has no outputs".into());
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let key = Key::random(k, rng.random());

    let mut nl = original.clone();
    let scheme_tag = if cfg.h == 0 {
        "ttlock".to_string()
    } else {
        format!("sfllhd{}", cfg.h)
    };
    nl.set_name(format!("{}_{}_k{}", original.name(), scheme_tag, k));

    // Protected inputs X: k distinct PIs.
    let mut indices: Vec<usize> = (0..pis.len()).collect();
    for i in 0..k {
        let j = rng.random_range(i..indices.len());
        indices.swap(i, j);
    }
    indices.truncate(k);
    let xsel: Vec<NetId> = indices.iter().map(|&i| pis[i]).collect();
    let xsel_names: Vec<String> = xsel.iter().map(|&n| nl.net_name(n).to_string()).collect();

    let kis: Vec<NetId> = (0..k)
        .map(|i| nl.add_key_input(format!("keyinput{i}")))
        .collect();

    // ---- Perturb unit: flip = (HD(X, K*) == h), hard-coded key ----
    let mut pb = UnitBuilder {
        nl: &mut nl,
        role: NodeRole::Perturb,
    };
    // d_i = x_i XOR k*_i: a wire for key bit 0, an inverter for key bit 1.
    let diffs: Vec<NetId> = xsel
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            if key.bit(i) {
                pb.gate(GateType::Inv, &[x])
            } else {
                x
            }
        })
        .collect();
    let flip = pb.hd_equals(&diffs, cfg.h as u64, k);

    // ---- Restore unit: restore = (HD(X, K) == h), key inputs ----
    let mut rb = UnitBuilder {
        nl: &mut nl,
        role: NodeRole::Restore,
    };
    let rdiffs: Vec<NetId> = xsel
        .iter()
        .zip(&kis)
        .map(|(&x, &ki)| rb.gate(GateType::Xor, &[x, ki]))
        .collect();
    let restore = rb.hd_equals(&rdiffs, cfg.h as u64, k);

    // ---- Integration at a randomly chosen primary output ----
    let outputs: Vec<(String, NetId)> = nl.outputs().map(|(n, net)| (n.to_string(), net)).collect();
    let (target_name, y) = outputs[rng.random_range(0..outputs.len())].clone();
    // Stripping XOR is part of the (functionality-stripped) design.
    let strip = nl.add_gate(GateType::Xor, &[y, flip]);
    let y_stripped = nl.gate_output(strip);
    let restore_xor =
        nl.add_gate_with_role(GateType::Xor, &[y_stripped, restore], NodeRole::Restore);
    let y_final = nl.gate_output(restore_xor);
    // Only the chosen PO moves to the protected net; other readers of `y`
    // (internal logic or same-net POs) are untouched.
    retarget_output(&mut nl, &target_name, y_final);

    let scheme = if cfg.h == 0 {
        Scheme::TtLock
    } else {
        Scheme::SfllHd(cfg.h)
    };
    Ok(LockedCircuit {
        netlist: nl,
        scheme,
        key,
        protected_inputs: xsel_names,
        target: target_name,
    })
}

/// Lock with TTLock (= SFLL-HD₀).
///
/// # Errors
///
/// See [`lock_sfll_hd`].
pub fn lock_ttlock(
    original: &Netlist,
    key_bits: usize,
    seed: u64,
) -> Result<LockedCircuit, String> {
    lock_sfll_hd(original, &SfllConfig::new(key_bits, 0, seed))
}

/// Point the named primary output at `net`.
fn retarget_output(nl: &mut Netlist, name: &str, net: NetId) {
    let rebuilt: Vec<(String, NetId)> = nl
        .outputs()
        .map(|(n, old)| {
            if n == name {
                (n.to_string(), net)
            } else {
                (n.to_string(), old)
            }
        })
        .collect();
    // Netlist has no output-mutation API by design; rebuild the list.
    nl.clear_outputs();
    for (n, v) in rebuilt {
        nl.add_output(n, v);
    }
}

/// Builds protection-unit logic with a fixed role label.
struct UnitBuilder<'a> {
    nl: &'a mut Netlist,
    role: NodeRole,
}

impl UnitBuilder<'_> {
    fn gate(&mut self, ty: GateType, inputs: &[NetId]) -> NetId {
        let g = self.nl.add_gate_with_role(ty, inputs, self.role);
        self.nl.gate_output(g)
    }

    /// `(HD-vector d has exactly `h` ones)`, where `max` bounds the count.
    ///
    /// For `h == 0` this is a NOR/equality structure (TTLock's "basic
    /// comparator"); otherwise a popcount adder tree plus an equality
    /// comparator against the constant `h`.
    fn hd_equals(&mut self, diffs: &[NetId], h: u64, max: usize) -> NetId {
        if h == 0 {
            // flip = AND over !d_i — built as a NOR tree over chunks.
            let invs: Vec<NetId> = diffs
                .iter()
                .map(|&d| self.gate(GateType::Inv, &[d]))
                .collect();
            return self.and_tree(&invs);
        }
        let sum = self.popcount(diffs);
        let width = (usize::BITS - max.leading_zeros()) as usize;
        debug_assert!(sum.len() <= width.max(sum.len()));
        self.equals_const(&sum, h)
    }

    /// Popcount of `bits`, LSB-first, via a divide-and-conquer adder tree.
    fn popcount(&mut self, bits: &[NetId]) -> Vec<NetId> {
        match bits.len() {
            0 => Vec::new(),
            1 => vec![bits[0]],
            2 => {
                let s = self.gate(GateType::Xor, &[bits[0], bits[1]]);
                let c = self.gate(GateType::And, &[bits[0], bits[1]]);
                vec![s, c]
            }
            3 => {
                let (s, c) = self.full_adder(bits[0], bits[1], bits[2]);
                vec![s, c]
            }
            n => {
                let (lo, hi) = bits.split_at(n / 2);
                let a = self.popcount(lo);
                let b = self.popcount(hi);
                self.ripple_add(&a, &b)
            }
        }
    }

    /// Full adder mapped onto arithmetic cells (`XOR3` sum, `MAJ3`
    /// carry), as a commercial flow maps adder trees onto its FA/HA
    /// cells; `legalize` re-expands them for libraries without such
    /// cells (e.g. Nangate45).
    fn full_adder(&mut self, a: NetId, b: NetId, c: NetId) -> (NetId, NetId) {
        let s = self.gate(GateType::Xor, &[a, b, c]);
        let carry = self.gate(GateType::Maj3, &[a, b, c]);
        (s, carry)
    }

    /// Ripple-carry addition of two LSB-first vectors.
    fn ripple_add(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        let width = a.len().max(b.len());
        let mut out = Vec::with_capacity(width + 1);
        let mut carry: Option<NetId> = None;
        for i in 0..width {
            match (a.get(i).copied(), b.get(i).copied(), carry) {
                (Some(x), Some(y), Some(c)) => {
                    let (s, co) = self.full_adder(x, y, c);
                    out.push(s);
                    carry = Some(co);
                }
                (Some(x), Some(y), None) => {
                    let s = self.gate(GateType::Xor, &[x, y]);
                    let co = self.gate(GateType::And, &[x, y]);
                    out.push(s);
                    carry = Some(co);
                }
                (Some(x), None, Some(c)) | (None, Some(x), Some(c)) => {
                    let s = self.gate(GateType::Xor, &[x, c]);
                    let co = self.gate(GateType::And, &[x, c]);
                    out.push(s);
                    carry = Some(co);
                }
                (Some(x), None, None) | (None, Some(x), None) => {
                    out.push(x);
                    carry = None;
                }
                (None, None, _) => unreachable!("i < width"),
            }
        }
        if let Some(c) = carry {
            out.push(c);
        }
        out
    }

    /// `bits == value` (LSB-first): AND-tree over per-bit literals.
    fn equals_const(&mut self, bits: &[NetId], value: u64) -> NetId {
        let lits: Vec<NetId> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if (value >> i) & 1 == 1 {
                    b
                } else {
                    self.gate(GateType::Inv, &[b])
                }
            })
            .collect();
        self.and_tree(&lits)
    }

    /// Balanced AND tree (chunked by 2–3 to vary the topology per key).
    fn and_tree(&mut self, leaves: &[NetId]) -> NetId {
        assert!(!leaves.is_empty());
        let mut layer = leaves.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(GateType::And, pair));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_netlist::generator::BenchmarkSpec;

    fn small_design() -> Netlist {
        BenchmarkSpec::named("c3540")
            .unwrap()
            .scaled(0.03)
            .generate()
    }

    fn pattern_with_hd(locked: &LockedCircuit, orig: &Netlist, hd: usize) -> Vec<bool> {
        // Build a PI pattern whose protected bits are at distance `hd`
        // from the secret key (remaining PIs are 0).
        let n_pi = orig.primary_inputs().len();
        let names: Vec<String> = orig
            .inputs()
            .filter(|(_, kind, _)| *kind == gnnunlock_netlist::InputKind::Primary)
            .map(|(n, _, _)| n.to_string())
            .collect();
        let mut pi = vec![false; n_pi];
        for (i, pname) in locked.protected_inputs.iter().enumerate() {
            let pos = names.iter().position(|n| n == pname).unwrap();
            pi[pos] = if i < hd {
                !locked.key.bit(i)
            } else {
                locked.key.bit(i)
            };
        }
        pi
    }

    #[test]
    fn ttlock_correct_key_preserves_function() {
        let orig = small_design();
        let locked = lock_ttlock(&orig, 8, 21).unwrap();
        let n_pi = orig.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
            assert_eq!(
                orig.eval_outputs(&pi, &[]).unwrap(),
                locked.eval_with_correct_key(&pi).unwrap()
            );
        }
    }

    #[test]
    fn sfll_hd2_correct_key_preserves_function() {
        let orig = small_design();
        let locked = lock_sfll_hd(&orig, &SfllConfig::new(12, 2, 33)).unwrap();
        let n_pi = orig.primary_inputs().len();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..40 {
            let pi: Vec<bool> = (0..n_pi).map(|_| rng.random_bool(0.5)).collect();
            assert_eq!(
                orig.eval_outputs(&pi, &[]).unwrap(),
                locked.eval_with_correct_key(&pi).unwrap()
            );
        }
        // Also exactly on protected patterns (HD == h).
        let pi = pattern_with_hd(&locked, &orig, 2);
        assert_eq!(
            orig.eval_outputs(&pi, &[]).unwrap(),
            locked.eval_with_correct_key(&pi).unwrap()
        );
    }

    #[test]
    fn stripped_circuit_flips_protected_patterns() {
        // With restore forced to 0 (all-zero wrong key far from K*), the
        // protected pattern must disagree with the original on the target
        // output.
        let orig = small_design();
        let cfg = SfllConfig::new(10, 2, 77);
        let locked = lock_sfll_hd(&orig, &cfg).unwrap();
        let pi = pattern_with_hd(&locked, &orig, 2);
        let target_idx = orig
            .outputs()
            .position(|(n, _)| n == locked.target)
            .unwrap();
        // Key at max distance: restore fires only when HD(X,K)==2, which
        // this pattern does not satisfy unless keys collide; use the
        // complement key (distance K from K*).
        let far_key: Vec<bool> = locked.key.bits().iter().map(|&b| !b).collect();
        let stripped_out = locked.netlist.eval_outputs(&pi, &far_key).unwrap();
        let orig_out = orig.eval_outputs(&pi, &[]).unwrap();
        assert_ne!(
            stripped_out[target_idx], orig_out[target_idx],
            "protected pattern was not stripped"
        );
    }

    #[test]
    fn unprotected_patterns_unaffected_by_stripping() {
        let orig = small_design();
        let locked = lock_sfll_hd(&orig, &SfllConfig::new(10, 2, 78)).unwrap();
        // HD(X, K*) = 5 ≠ 2: no flip; restore with complement key fires
        // only at HD(X,K)=2 i.e. HD(X,K*)=8 — also silent. Output intact.
        let pi = pattern_with_hd(&locked, &orig, 5);
        let far_key: Vec<bool> = locked.key.bits().iter().map(|&b| !b).collect();
        assert_eq!(
            orig.eval_outputs(&pi, &[]).unwrap(),
            locked.netlist.eval_outputs(&pi, &far_key).unwrap()
        );
    }

    #[test]
    fn roles_partition_correctly() {
        let orig = small_design();
        let locked = lock_sfll_hd(&orig, &SfllConfig::new(16, 4, 9)).unwrap();
        let [dn, pn, rn, an] = locked.netlist.role_histogram();
        assert_eq!(an, 0);
        assert!(pn > 16, "perturb unit too small: {pn}");
        assert!(
            rn > pn,
            "restore unit should exceed perturb (key XOR layer): {rn} vs {pn}"
        );
        // Design gained exactly one gate: the stripping XOR.
        assert_eq!(dn, orig.num_gates() + 1);
    }

    #[test]
    fn perturb_unit_is_pure_function_of_protected_inputs() {
        let orig = small_design();
        let locked = lock_sfll_hd(&orig, &SfllConfig::new(12, 2, 13)).unwrap();
        let nl = &locked.netlist;
        for g in nl.gate_ids() {
            if nl.role(g) == NodeRole::Perturb {
                for inp in nl.cone_inputs(g) {
                    let name = nl.net_name(inp);
                    assert!(
                        locked.protected_inputs.iter().any(|p| p == name),
                        "perturb gate sees non-protected input {name}"
                    );
                }
            }
        }
    }

    #[test]
    fn restore_nodes_have_keys_in_cone() {
        let orig = small_design();
        let locked = lock_ttlock(&orig, 12, 14).unwrap();
        let nl = &locked.netlist;
        for g in nl.gate_ids() {
            if nl.role(g) == NodeRole::Restore {
                assert!(nl.cone_has_key_input(g), "restore gate without KI");
            }
        }
    }

    #[test]
    fn ttlock_has_no_adder_tree() {
        let orig = small_design();
        let tt = lock_ttlock(&orig, 16, 2).unwrap();
        let hd2 = lock_sfll_hd(&orig, &SfllConfig::new(16, 2, 2)).unwrap();
        let count_prot = |lc: &LockedCircuit| {
            lc.netlist
                .gate_ids()
                .filter(|&g| lc.netlist.role(g).is_protection())
                .count()
        };
        // With FA-cell mapping the HD checker is compact, but the adder
        // tree still clearly exceeds TTLock's bare comparator.
        assert!(
            count_prot(&hd2) > count_prot(&tt) * 5 / 4,
            "SFLL-HD2 should be larger than TTLock ({} vs {})",
            count_prot(&hd2),
            count_prot(&tt)
        );
    }

    #[test]
    fn config_validation() {
        let orig = small_design();
        assert!(lock_sfll_hd(&orig, &SfllConfig::new(0, 0, 1)).is_err());
        assert!(lock_sfll_hd(&orig, &SfllConfig::new(8, 9, 1)).is_err());
        assert!(lock_sfll_hd(&orig, &SfllConfig::new(100_000, 2, 1)).is_err());
    }
}
