//! Provably secure logic locking (PSLL) schemes for the GNNUnlock
//! reproduction.
//!
//! Implements the three schemes the paper attacks, plus the conventional
//! random locking used by the SAT-attack demo:
//!
//! - [`antisat::lock_antisat`] — Anti-SAT (CHES 2016),
//! - [`caslock::lock_caslock`] — CAS-Lock (CHES 2020; extension),
//! - [`sfll::lock_ttlock`] — TTLock (GLSVLSI 2017),
//! - [`sfll::lock_sfll_hd`] — SFLL-HD_h (CCS 2017),
//! - [`rll::lock_rll`] — EPIC-style XOR/XNOR key gates.
//!
//! Every inserted gate carries a ground-truth
//! [`gnnunlock_netlist::NodeRole`] label used for GNN training and
//! attack-accuracy evaluation.
//!
//! # Examples
//!
//! ```
//! use gnnunlock_locking::{lock_ttlock};
//! use gnnunlock_netlist::generator::BenchmarkSpec;
//!
//! let design = BenchmarkSpec::named("c2670").unwrap().scaled(0.02).generate();
//! let locked = lock_ttlock(&design, 8, 42).unwrap();
//! assert_eq!(locked.netlist.key_inputs().len(), 8);
//! // Correct key ⇒ original behaviour.
//! let pi = vec![false; design.primary_inputs().len()];
//! assert_eq!(
//!     design.eval_outputs(&pi, &[]).unwrap(),
//!     locked.eval_with_correct_key(&pi).unwrap()
//! );
//! ```

#![warn(missing_docs)]

pub mod antisat;
pub mod caslock;
mod key;
mod locked;
pub mod rll;
pub mod sfll;

pub use antisat::{lock_antisat, AntiSatConfig};
pub use caslock::{lock_caslock, CasLockConfig};
pub use key::Key;
pub use locked::{LockedCircuit, Scheme};
pub use rll::lock_rll;
pub use sfll::{lock_sfll_hd, lock_ttlock, SfllConfig};
