//! Process-wide telemetry for the GNNUnlock reproduction.
//!
//! Two halves, both std-only and lock-free on the hot path:
//!
//! - a **metrics [`Registry`]** of counters, gauges and fixed-bucket
//!   histograms. Registration (cold) takes a mutex; every recording
//!   operation afterwards is a relaxed atomic on an `Arc`'d cell, so
//!   instrumenting the executor, lease manager, store, SAT layer and
//!   kernel workspace costs nanoseconds and never serializes workers.
//!   [`Registry::global`] is the process-wide instance the engine,
//!   daemon and report surfaces share; [`Registry::new`] builds
//!   isolated instances for tests and goldens.
//! - **span tracing** with deterministic ids: [`record_span`] appends
//!   to a thread-local buffer (no shared state, no lock), and the
//!   executor drains each worker's buffer at job boundaries via
//!   [`take_thread_spans`]. Span ids derive from job fingerprints
//!   ([`derived_id`]), so the id set of a run is a pure function of the
//!   campaign — byte-identical at any worker count. A run's spans
//!   render as Chrome `trace_event` JSON ([`chrome_trace_json`]) that
//!   loads directly in Perfetto / `chrome://tracing`.
//!
//! Recording is on by default; [`set_enabled`] (driven by the
//! `GNNUNLOCK_TELEMETRY` knob in the engine) turns every recording
//! operation into a cheap early return. Nothing in this crate touches
//! the environment or the filesystem — callers own both.

#![warn(missing_docs)]

mod registry;
mod span;

pub use registry::{
    Counter, Gauge, Histogram, MetricSample, MetricValue, Registry, DURATION_BUCKETS,
};
pub use span::{
    chrome_trace_json, derived_id, process_epoch, record_span, record_span_at, take_thread_spans,
    thread_index, SpanRecord,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry recording is enabled (the default). Recording
/// calls check this with one relaxed load and become no-ops when off.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry recording on or off process-wide. The engine calls
/// this from its `GNNUNLOCK_TELEMETRY` knob; tests may toggle it, but
/// note the flag is process-global.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
