//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) wrap `Arc`'d atomic
//! cells; cloning a handle is cheap and recording through one is a
//! relaxed atomic operation. The registry itself only locks on
//! registration and snapshot — never on the recording path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Histogram bucket upper bounds for wall-clock durations in seconds:
/// 100 µs up to ~100 s in roughly-logarithmic steps. Shared by every
/// duration histogram so exposition stays comparable across subsystems.
pub const DURATION_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0, 30.0, 100.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`. A no-op while telemetry is disabled.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge to `v`. A no-op while telemetry is disabled.
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Add `d` (may be negative). A no-op while telemetry is disabled.
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.0.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    /// Upper bounds (ascending); `buckets` has one extra slot for +Inf.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    /// Sum of observed values as f64 bits (relaxed CAS loop).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram (Prometheus semantics: a bucket with upper
/// bound `le` counts every observation `v <= le`, cumulatively).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Record one observation. Lock-free: one atomic add on the first
    /// bucket whose bound holds the value (cumulative counts are
    /// computed at snapshot time), plus sum/count updates.
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let cells = &*self.0;
        let idx = cells
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(cells.bounds.len());
        cells.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = cells.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match cells.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative `(upper bound, count of observations <= bound)` pairs
    /// ending with the implicit `+Inf` bucket (bound = `f64::INFINITY`).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let cells = &*self.0;
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(cells.bounds.len() + 1);
        for (i, cell) in cells.buckets.iter().enumerate() {
            acc += cell.load(Ordering::Relaxed);
            let bound = cells.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

#[derive(Debug, Clone)]
enum Cells {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram: cumulative `(le, count)` buckets (ending at +Inf),
    /// sum and count.
    Histogram {
        /// Cumulative buckets, `(upper bound, count <= bound)`.
        buckets: Vec<(f64, u64)>,
        /// Sum of all observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// One metric in a [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric family name (`snake_case`, `_total` suffix on counters).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text (one line).
    pub help: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

#[derive(Debug)]
struct Registered {
    help: String,
    cells: Cells,
}

type Key = (String, Vec<(String, String)>);

/// A metrics registry. See the crate docs; [`Registry::global`] is the
/// shared process-wide instance.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Registered>>,
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry (isolated — for tests and goldens).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry every subsystem records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Register (or retrieve) the counter `name` with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or retrieve) the counter `name{labels}`. Repeated
    /// registration of the same name + labels returns a handle to the
    /// same cell.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric
    /// type — always a programming error.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics
            .entry((name.to_string(), own_labels(labels)))
            .or_insert_with(|| Registered {
                help: help.to_string(),
                cells: Cells::Counter(Counter(Arc::new(AtomicU64::new(0)))),
            });
        match &entry.cells {
            Cells::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered as a non-counter"),
        }
    }

    /// Register (or retrieve) the gauge `name` with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or retrieve) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different type.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics
            .entry((name.to_string(), own_labels(labels)))
            .or_insert_with(|| Registered {
                help: help.to_string(),
                cells: Cells::Gauge(Gauge(Arc::new(AtomicI64::new(0)))),
            });
        match &entry.cells {
            Cells::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered as a non-gauge"),
        }
    }

    /// Register (or retrieve) the histogram `name` with no labels over
    /// the given ascending bucket bounds (an implicit `+Inf` bucket is
    /// always added).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Register (or retrieve) the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different type.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        let entry = metrics
            .entry((name.to_string(), own_labels(labels)))
            .or_insert_with(|| {
                let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
                Registered {
                    help: help.to_string(),
                    cells: Cells::Histogram(Histogram(Arc::new(HistogramCells {
                        bounds: bounds.to_vec(),
                        buckets,
                        sum_bits: AtomicU64::new(0f64.to_bits()),
                        count: AtomicU64::new(0),
                    }))),
                }
            });
        match &entry.cells {
            Cells::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered as a non-histogram"),
        }
    }

    /// A point-in-time snapshot of every registered metric, ordered by
    /// `(name, labels)` — deterministic given deterministic values.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|((name, labels), reg)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                help: reg.help.clone(),
                value: match &reg.cells {
                    Cells::Counter(c) => MetricValue::Counter(c.get()),
                    Cells::Gauge(g) => MetricValue::Gauge(g.get()),
                    Cells::Histogram(h) => MetricValue::Histogram {
                        buckets: h.cumulative_buckets(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect()
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers once per family,
    /// histogram `_bucket{le=...}` / `_sum` / `_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for sample in self.snapshot() {
            if last_family.as_deref() != Some(sample.name.as_str()) {
                let kind = match sample.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram { .. } => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", sample.name, sample.help));
                out.push_str(&format!("# TYPE {} {kind}\n", sample.name));
                last_family = Some(sample.name.clone());
            }
            match &sample.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        sample.name,
                        label_set(&sample.labels, &[])
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        sample.name,
                        label_set(&sample.labels, &[])
                    ));
                }
                MetricValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    for (le, c) in buckets {
                        let le = if le.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            fmt_f64(*le)
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {c}\n",
                            sample.name,
                            label_set(&sample.labels, &[("le", &le)])
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        sample.name,
                        label_set(&sample.labels, &[]),
                        fmt_f64(*sum)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {count}\n",
                        sample.name,
                        label_set(&sample.labels, &[])
                    ));
                }
            }
        }
        out
    }
}

/// Shortest round-trip-safe decimal for `v` (Rust's f64 Display),
/// matching what Prometheus clients conventionally emit.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Render `{k="v",...}` from registered labels plus extras (the
/// histogram `le`); empty when there are none. Label values are escaped
/// per the exposition format (backslash, quote, newline).
fn label_set(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let escape = |v: &str| {
        v.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    };
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))));
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_concurrent_increments_are_exact() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "test");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        // A second registration returns the same cell.
        assert_eq!(reg.counter("t_total", "test").get(), 80_000);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "test", &[1.0, 2.0, 5.0]);
        // Exactly-on-boundary observations land in that bucket
        // (Prometheus `le` semantics), above-the-top goes to +Inf.
        for v in [0.5, 1.0, 1.5, 2.0, 5.0, 7.0] {
            h.observe(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 2)); // 0.5, 1.0
        assert_eq!(buckets[1], (2.0, 4)); // + 1.5, 2.0
        assert_eq!(buckets[2], (5.0, 5)); // + 5.0
        assert_eq!(buckets[3].1, 6); // + 7.0
        assert!(buckets[3].0.is_infinite());
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_concurrent_observes_are_exact() {
        let reg = Registry::new();
        let h = reg.histogram("conc", "test", &[10.0]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe(if (i + t) % 2 == 0 { 1.0 } else { 100.0 });
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (10.0, 2000));
        assert_eq!(buckets[1].1, 4000);
        assert!((h.sum() - (2000.0 + 200_000.0)).abs() < 1e-6);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("q", "test");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let reg = Registry::new();
        let c = reg.counter("gated_total", "test");
        crate::set_enabled(false);
        c.inc();
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn prometheus_rendering_groups_families() {
        let reg = Registry::new();
        reg.counter_with("jobs_total", "jobs", &[("kind", "lock")])
            .add(3);
        reg.counter_with("jobs_total", "jobs", &[("kind", "train")])
            .add(4);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE jobs_total counter").count(), 1);
        assert!(text.contains("jobs_total{kind=\"lock\"} 3\n"));
        assert!(text.contains("jobs_total{kind=\"train\"} 4\n"));
    }
}
