//! Span recording and Chrome `trace_event` rendering.
//!
//! Spans go into a **thread-local** buffer — recording never touches
//! shared state, so instrumenting a worker's job loop costs a `Vec`
//! push. The owner of a run (the engine executor) drains each worker's
//! buffer at job boundaries with [`take_thread_spans`] and aggregates
//! the records per run; [`chrome_trace_json`] renders an aggregate as a
//! `chrome://tracing` / Perfetto-loadable JSON document.
//!
//! Span **ids are deterministic**: callers derive them from job content
//! fingerprints (optionally via [`derived_id`]), so the id/parent graph
//! of a campaign run is identical at any worker count — only
//! timestamps, durations and thread ids vary.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Human-readable span name (job label, `probe/...`, `lease-wait/...`).
    pub name: String,
    /// Category (job-kind tag or span family).
    pub cat: String,
    /// Deterministic span id (job fingerprint or [`derived_id`] of one).
    pub id: u64,
    /// Parent span id; 0 = root.
    pub parent: u64,
    /// Start, microseconds since [`process_epoch`].
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small per-thread index (stable within a thread's lifetime).
    pub tid: u64,
}

/// The instant all span timestamps are measured from (first use wins).
pub fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A small dense id for the calling thread (0, 1, 2, … in first-use
/// order) — Chrome traces want small integer `tid`s, not OS thread ids.
pub fn thread_index() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static INDEX: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.with(|i| *i)
}

thread_local! {
    static SPANS: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
}

/// Record a span that started at `start` and just ended. No-op while
/// telemetry is disabled.
pub fn record_span(name: &str, cat: &str, id: u64, parent: u64, start: Instant) {
    record_span_at(name, cat, id, parent, start, Instant::now());
}

/// Record a span with an explicit end instant. No-op while telemetry is
/// disabled.
pub fn record_span_at(name: &str, cat: &str, id: u64, parent: u64, start: Instant, end: Instant) {
    if !crate::enabled() {
        return;
    }
    let epoch = process_epoch();
    let start_us = start.saturating_duration_since(epoch).as_micros() as u64;
    let dur_us = end.saturating_duration_since(start).as_micros() as u64;
    let record = SpanRecord {
        name: name.to_string(),
        cat: cat.to_string(),
        id,
        parent,
        start_us,
        dur_us,
        tid: thread_index(),
    };
    SPANS.with(|s| s.borrow_mut().push(record));
}

/// Drain the calling thread's span buffer. The executor calls this at
/// every job boundary and folds the result into the run's span list.
pub fn take_thread_spans() -> Vec<SpanRecord> {
    SPANS.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Derive a deterministic child id from a base id and a tag (FNV-1a
/// over the base bytes followed by the tag) — e.g. the lease-wait span
/// of job `fp` is `derived_id(fp, "lease-wait")`.
pub fn derived_id(base: u64, tag: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in base.to_le_bytes() {
        mix(b);
    }
    for b in tag.bytes() {
        mix(b);
    }
    h
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render spans as a Chrome `trace_event` JSON document (complete `"X"`
/// events with `name`/`cat`/`ph`/`ts`/`dur`/`pid`/`tid`, deterministic
/// ids under `args`). Loads directly in `chrome://tracing` / Perfetto.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let pid = std::process::id();
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{pid},\"tid\":{},\"args\":{{\"id\":\"{:016x}\",\"parent\":\"{:016x}\"}}}}",
            escape_json(&s.name),
            escape_json(&s.cat),
            s.start_us,
            s.dur_us,
            s.tid,
            s.id,
            s.parent,
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_buffer_per_thread_and_drain() {
        let t0 = Instant::now();
        record_span("job/a", "lock", 7, 0, t0);
        record_span("job/b", "train", 8, 7, t0);
        let spans = take_thread_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "job/a");
        assert_eq!(spans[1].parent, 7);
        assert!(take_thread_spans().is_empty(), "drained");
        // Another thread's buffer is independent.
        std::thread::spawn(|| assert!(take_thread_spans().is_empty()))
            .join()
            .unwrap();
    }

    #[test]
    fn derived_ids_are_stable_and_distinct() {
        assert_eq!(derived_id(42, "lease-wait"), derived_id(42, "lease-wait"));
        assert_ne!(derived_id(42, "lease-wait"), derived_id(42, "probe"));
        assert_ne!(derived_id(42, "lease-wait"), derived_id(43, "lease-wait"));
    }

    #[test]
    fn chrome_trace_escapes_and_structures() {
        let spans = vec![SpanRecord {
            name: "weird \"name\"\n".to_string(),
            cat: "lock".to_string(),
            id: 1,
            parent: 0,
            start_us: 10,
            dur_us: 5,
            tid: 0,
        }];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\\\"name\\\"\\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":5"));
    }
}
