//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the benches link
//! against this std-only harness instead. It implements the subset of the
//! criterion API the workspace uses (`criterion_group!`/`criterion_main!`
//! with the `name/config/targets` form, `bench_function`, benchmark
//! groups with `bench_with_input`, `Bencher::iter`) and reports mean
//! wall-clock time per iteration — no statistics, plots or baselines,
//! but enough to compare kernels locally and to keep `cargo bench`
//! compiling and running.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Samples per benchmark (each sample runs as many iterations as fit
    /// in the per-sample time slice).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.clone());
        f(&mut b);
        b.report(id);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Finish the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    cfg: Criterion,
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(cfg: Criterion) -> Self {
        Bencher {
            cfg,
            mean: None,
            iters: 0,
        }
    }

    /// Measure `routine`, discarding a warm-up period first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_end = Instant::now() + self.cfg.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_end {
            std_black_box(routine());
            warm_iters += 1;
        }
        // Measurement: split the budget into `sample_size` slices.
        let per_sample = self.cfg.measurement_time / self.cfg.sample_size as u32;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.cfg.sample_size {
            let sample_start = Instant::now();
            loop {
                let t0 = Instant::now();
                std_black_box(routine());
                total += t0.elapsed();
                iters += 1;
                if sample_start.elapsed() >= per_sample {
                    break;
                }
            }
        }
        let _ = warm_iters;
        self.iters = iters;
        self.mean = Some(total / iters.max(1) as u32);
    }

    fn report(&self, id: &str) {
        match self.mean {
            Some(mean) => println!(
                "bench {id:<44} {:>12} /iter  ({} iters)",
                format_duration(mean),
                self.iters
            ),
            None => println!("bench {id:<44} (no measurement)"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declare a benchmark group runner (`name/config/targets` or plain form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
