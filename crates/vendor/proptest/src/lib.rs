//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), range
//! and [`any`] strategies, tuple and [`prop::collection::vec`] combinators
//! and the `prop_assert*` macros. Cases are driven by the vendored
//! deterministic [`rand`] generator instead of proptest's shrinking
//! engine: on failure the panic message reports the case number so the
//! failing draw can be replayed (generation is deterministic per test).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SampleRange};
use std::ops::Range;

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Combinator namespace mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `vec(element, len_range)` — a vector strategy.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.random_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Error type of a property-test body (`return Ok(())` skips a case).
///
/// The stand-in never constructs one — assertions panic instead — but the
/// type keeps proptest-style `Result` bodies compiling.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Assert inside a property test (stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests.
///
/// Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn holds(seed in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(seed < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                // One deterministic stream per test, offset by the test
                // name so sibling tests draw different values.
                let mut __rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                    $crate::__fnv(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__cfg.cases {
                    // Proptest bodies may `return Ok(())` to skip a case,
                    // so the driver closure is Result-valued; assertion
                    // macros panic, which `catch_unwind` converts into a
                    // case-numbered report.
                    let __run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                    match __outcome {
                        Ok(_) => {}
                        Err(e) => {
                            eprintln!(
                                "proptest case {}/{} of {} failed (deterministic; rerun reproduces it)",
                                __case + 1, __cfg.cases, stringify!($name),
                            );
                            ::std::panic::resume_unwind(e);
                        }
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
pub fn __fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Ranges and any::<bool>() generate in-bounds values.
        #[test]
        fn generated_values_in_bounds(n in 3usize..9, b in any::<bool>()) {
            prop_assert!((3..9).contains(&n));
            prop_assert_ne!(b, !b);
        }

        #[test]
        fn vec_strategy_obeys_len(v in prop::collection::vec(0usize..3, 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&x| x < 3));
        }
    }
}
