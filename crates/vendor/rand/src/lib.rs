//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the rand 0.9 API the codebase uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`RngExt`] extension
//! trait (`random`, `random_bool`, `random_range`) and slice selection
//! ([`seq::IndexedRandom`]). The generator is xoshiro256**, seeded via
//! SplitMix64 — statistically solid for simulation workloads and fully
//! deterministic per seed, which the reproduction relies on (same seed ⇒
//! same circuits, keys and reports everywhere).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the stand-in for rand's `StdRng`.
    ///
    /// Deterministic per seed across platforms and releases (this vendored
    /// copy never changes out from under the workspace, unlike the real
    /// `StdRng`, which documents itself as non-portable).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Snapshot of the generator's full internal state, for exact
        /// checkpoint/restore (training resumption). The words are the
        /// raw xoshiro256** state; feed them back through
        /// [`StdRng::from_state`] to continue the identical stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot. The
        /// restored generator produces exactly the stream the snapshotted
        /// one would have produced next.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors; guarantees a non-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly at random by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// Panics on empty ranges, mirroring rand.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = bounded(rng, span as u64);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let v = bounded(rng, span as u64);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit: $t = Standard::standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Unbiased draw from `[0, span)` by rejection sampling.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Convenience extension methods (rand 0.9's `Rng` surface, renamed the
/// way the workspace imports it).
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let unit: f64 = Standard::standard(self);
        unit < p
    }

    /// A uniformly random value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Random selection from slices.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.random_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.random_range(2..=4u64);
            assert!((2..=4).contains(&w));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*pool.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
