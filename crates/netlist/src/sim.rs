//! Bit-parallel logic simulation and signal-probability estimation.
//!
//! Simulation packs 64 test patterns into one `u64` per net, evaluating
//! every gate once per word (the standard EDA trick for cheap random
//! simulation).

use crate::error::Result;
use crate::netlist::{Driver, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

impl Netlist {
    /// Simulate 64 parallel patterns; `input_words` supplies one word per
    /// top-level input net (any missing input reads as 0). Returns a
    /// net-indexed vector of words.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::NetlistError::CombinationalCycle`].
    pub fn simulate_words(&self, input_words: &dyn Fn(NetId) -> u64) -> Result<Vec<u64>> {
        let order = self.topo_order()?;
        let mut words = Vec::new();
        self.simulate_words_into(&order, input_words, &mut words);
        Ok(words)
    }

    /// [`Netlist::simulate_words`] with a precomputed topological order and
    /// a caller-owned output buffer, for repeated-simulation hot paths
    /// (random-simulation prefilters run dozens of words over the same
    /// netlist; recomputing the topological sort and reallocating the
    /// net-word vector per word dominates at small circuit sizes).
    ///
    /// `order` must come from [`Netlist::topo_order`] on this (unmutated)
    /// netlist. `words` is cleared and resized to `num_nets()`.
    pub fn simulate_words_into(
        &self,
        order: &[crate::netlist::GateId],
        input_words: &dyn Fn(NetId) -> u64,
        words: &mut Vec<u64>,
    ) {
        words.clear();
        words.resize(self.num_nets(), 0u64);
        for (_, _, net) in self.inputs() {
            words[net.index()] = input_words(net);
        }
        for net in self.net_ids() {
            if let Driver::Const(v) = self.driver(net) {
                words[net.index()] = if v { !0u64 } else { 0u64 };
            }
        }
        let mut in_buf: Vec<u64> = Vec::with_capacity(8);
        for &g in order {
            in_buf.clear();
            in_buf.extend(self.gate_inputs(g).iter().map(|n| words[n.index()]));
            words[self.gate_output(g).index()] = self.gate_type(g).eval_word(&in_buf);
        }
    }

    /// Evaluate the netlist on one Boolean pattern. `pi` follows
    /// [`Netlist::primary_inputs`] order and `ki` follows
    /// [`Netlist::key_inputs`] order. Returns output values in
    /// [`Netlist::outputs`] order.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    ///
    /// # Panics
    ///
    /// Panics if `pi`/`ki` lengths do not match the input counts.
    pub fn eval_outputs(&self, pi: &[bool], ki: &[bool]) -> Result<Vec<bool>> {
        let pis = self.primary_inputs();
        let kis = self.key_inputs();
        assert_eq!(pi.len(), pis.len(), "primary input width mismatch");
        assert_eq!(ki.len(), kis.len(), "key input width mismatch");
        let mut lookup = vec![0u64; self.num_nets()];
        for (net, &v) in pis.iter().zip(pi) {
            lookup[net.index()] = if v { !0 } else { 0 };
        }
        for (net, &v) in kis.iter().zip(ki) {
            lookup[net.index()] = if v { !0 } else { 0 };
        }
        let words = self.simulate_words(&|n| lookup[n.index()])?;
        Ok(self
            .output_nets()
            .into_iter()
            .map(|n| words[n.index()] & 1 == 1)
            .collect())
    }

    /// Evaluate many Boolean patterns at once (64 per simulation pass).
    /// Each row of `pi_patterns`/`ki_patterns` is one pattern. Returns one
    /// output row per pattern.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    ///
    /// # Panics
    ///
    /// Panics if pattern widths are inconsistent with the input counts or
    /// the two pattern lists have different lengths.
    pub fn eval_many(
        &self,
        pi_patterns: &[Vec<bool>],
        ki_patterns: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>> {
        assert_eq!(pi_patterns.len(), ki_patterns.len());
        let pis = self.primary_inputs();
        let kis = self.key_inputs();
        let outs = self.output_nets();
        let mut results = Vec::with_capacity(pi_patterns.len());
        for chunk_start in (0..pi_patterns.len()).step_by(64) {
            let chunk = chunk_start..(chunk_start + 64).min(pi_patterns.len());
            let mut lookup = vec![0u64; self.num_nets()];
            for (bit, p) in chunk.clone().enumerate() {
                assert_eq!(pi_patterns[p].len(), pis.len());
                assert_eq!(ki_patterns[p].len(), kis.len());
                for (net, &v) in pis.iter().zip(&pi_patterns[p]) {
                    if v {
                        lookup[net.index()] |= 1 << bit;
                    }
                }
                for (net, &v) in kis.iter().zip(&ki_patterns[p]) {
                    if v {
                        lookup[net.index()] |= 1 << bit;
                    }
                }
            }
            let words = self.simulate_words(&|n| lookup[n.index()])?;
            for (bit, _) in chunk.enumerate() {
                results.push(
                    outs.iter()
                        .map(|n| (words[n.index()] >> bit) & 1 == 1)
                        .collect(),
                );
            }
        }
        Ok(results)
    }

    /// Estimate per-net signal probabilities (fraction of 1s) from
    /// `words * 64` uniformly random patterns over *all* top-level inputs.
    /// Returns a net-indexed vector.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn signal_probabilities(&self, words: usize, seed: u64) -> Result<Vec<f64>> {
        let mut counts = vec![0u64; self.num_nets()];
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..words.max(1) {
            let mut lookup = vec![0u64; self.num_nets()];
            for (_, _, net) in self.inputs() {
                lookup[net.index()] = rng.random();
            }
            let sim = self.simulate_words(&|n| lookup[n.index()])?;
            for (c, w) in counts.iter_mut().zip(&sim) {
                *c += w.count_ones() as u64;
            }
        }
        let total = (words.max(1) * 64) as f64;
        Ok(counts.into_iter().map(|c| c as f64 / total).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateType;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let cin = nl.add_primary_input("cin");
        let s = nl.add_gate(GateType::Xor, &[a, b, cin]);
        let c = nl.add_gate(GateType::Maj3, &[a, b, cin]);
        nl.add_output("sum", nl.gate_output(s));
        nl.add_output("cout", nl.gate_output(c));
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        for a in 0..2u8 {
            for b in 0..2u8 {
                for cin in 0..2u8 {
                    let out = nl.eval_outputs(&[a == 1, b == 1, cin == 1], &[]).unwrap();
                    let total = a + b + cin;
                    assert_eq!(out[0], total & 1 == 1, "sum a={a} b={b} c={cin}");
                    assert_eq!(out[1], total >= 2, "cout a={a} b={b} c={cin}");
                }
            }
        }
    }

    #[test]
    fn eval_many_matches_eval_outputs() {
        let nl = full_adder();
        let mut pis = Vec::new();
        for i in 0..100u32 {
            pis.push(vec![i & 1 == 1, i & 2 == 2, i & 4 == 4]);
        }
        let kis = vec![vec![]; pis.len()];
        let batch = nl.eval_many(&pis, &kis).unwrap();
        for (p, row) in pis.iter().zip(&batch) {
            assert_eq!(row, &nl.eval_outputs(p, &[]).unwrap());
        }
    }

    #[test]
    fn signal_probability_of_and_tree() {
        // A wide AND output should be strongly skewed toward 0.
        let mut nl = Netlist::new("skew");
        let ins: Vec<_> = (0..6)
            .map(|i| nl.add_primary_input(format!("i{i}")))
            .collect();
        let g = nl.add_gate(GateType::And, &ins);
        nl.add_output("y", nl.gate_output(g));
        let probs = nl.signal_probabilities(64, 42).unwrap();
        let p = probs[nl.gate_output(g).index()];
        assert!(p < 0.05, "AND6 probability {p} not skewed");
        let p_in = probs[ins[0].index()];
        assert!((p_in - 0.5).abs() < 0.05, "input probability {p_in}");
    }

    #[test]
    fn constants_simulate() {
        let mut nl = Netlist::new("c");
        let a = nl.add_primary_input("a");
        let one = nl.const_net(true);
        let g = nl.add_gate(GateType::And, &[a, one]);
        nl.add_output("y", nl.gate_output(g));
        assert_eq!(nl.eval_outputs(&[true], &[]).unwrap(), vec![true]);
        assert_eq!(nl.eval_outputs(&[false], &[]).unwrap(), vec![false]);
    }
}
