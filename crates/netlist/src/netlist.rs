//! The central gate-level netlist data structure.

use crate::error::{NetlistError, Result};
use crate::gate::GateType;
use crate::library::CellLibrary;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a net (wire) within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Identifier of a gate within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

/// Identifier of a top-level input within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputId(pub(crate) u32);

impl NetId {
    /// Raw index of the net.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from [`NetId::index`] — for external serialization
    /// ([`Netlist::from_parts`]); an out-of-range index is rejected
    /// there, not here.
    pub fn from_index(index: usize) -> NetId {
        NetId(index as u32)
    }
}

impl GateId {
    /// Raw index of the gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from [`GateId::index`] — for external serialization.
    pub fn from_index(index: usize) -> GateId {
        GateId(index as u32)
    }
}

impl InputId {
    /// Raw index of the input.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from [`InputId::index`] — for external serialization.
    pub fn from_index(index: usize) -> InputId {
        InputId(index as u32)
    }
}

/// Kind of a top-level input: a regular primary input or a key input.
///
/// The attacker model (paper Section III) assumes key inputs are
/// distinguishable from primary inputs, which both the bench and Verilog
/// writers preserve through the `keyinput` name prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputKind {
    /// A functional primary input.
    Primary,
    /// A key input driven from tamper-proof memory.
    Key,
}

/// Ground-truth provenance of a gate, used as the GNN training label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum NodeRole {
    /// Original design logic.
    #[default]
    Design,
    /// SFLL-HD / TTLock perturb unit.
    Perturb,
    /// SFLL-HD / TTLock restore unit.
    Restore,
    /// Anti-SAT block.
    AntiSat,
}

impl NodeRole {
    /// `true` for any protection-logic role.
    pub fn is_protection(self) -> bool {
        !matches!(self, NodeRole::Design)
    }

    /// Short label used in reports (`DN`, `PN`, `RN`, `AN`).
    pub fn tag(self) -> &'static str {
        match self {
            NodeRole::Design => "DN",
            NodeRole::Perturb => "PN",
            NodeRole::Restore => "RN",
            NodeRole::AntiSat => "AN",
        }
    }
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Driven by a top-level input.
    Input(InputId),
    /// Driven by the output of a gate.
    Gate(GateId),
    /// Tied to a constant.
    Const(bool),
    /// Not driven (an error in a finished netlist).
    Undriven,
}

#[derive(Debug, Clone)]
struct NetInfo {
    name: String,
    driver: Driver,
}

#[derive(Debug, Clone)]
struct InputInfo {
    name: String,
    kind: InputKind,
    net: NetId,
}

#[derive(Debug, Clone)]
struct OutputInfo {
    name: String,
    net: NetId,
}

#[derive(Debug, Clone)]
struct GateInfo {
    ty: GateType,
    inputs: Vec<NetId>,
    output: NetId,
    role: NodeRole,
    alive: bool,
}

/// A combinational gate-level netlist.
///
/// Gates read nets and drive exactly one net each; top-level inputs
/// (primary or key) drive nets; outputs name nets. Gates removed during
/// rewriting are tombstoned and skipped by the iteration API; call
/// [`Netlist::compact`] to reclaim them.
///
/// # Examples
///
/// ```
/// use gnnunlock_netlist::{GateType, Netlist};
/// let mut nl = Netlist::new("toy");
/// let a = nl.add_primary_input("a");
/// let b = nl.add_primary_input("b");
/// let g = nl.add_gate(GateType::Nand, &[a, b]);
/// nl.add_output("y", nl.gate_output(g));
/// assert_eq!(nl.num_gates(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nets: Vec<NetInfo>,
    inputs: Vec<InputInfo>,
    outputs: Vec<OutputInfo>,
    gates: Vec<GateInfo>,
    net_by_name: HashMap<String, NetId>,
    const_nets: [Option<NetId>; 2],
    fresh_counter: u64,
    dead_gates: usize,
}

/// A flat, fully public view of a [`Netlist`] for external serialization
/// (the campaign persistence codec). [`Netlist::to_parts`] /
/// [`Netlist::from_parts`] round-trip losslessly: every id, tombstone
/// and role is preserved, so a deserialized netlist is observationally
/// identical to the original.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistParts {
    /// Module name.
    pub name: String,
    /// `(net name, driver)` per net, in id order.
    pub nets: Vec<(String, Driver)>,
    /// `(input name, kind, driven net index)` per input, in id order.
    pub inputs: Vec<(String, InputKind, u32)>,
    /// `(output name, net index)` in declaration order.
    pub outputs: Vec<(String, u32)>,
    /// `(alive, type, input net indices, output net index, role)` per
    /// gate slot — tombstoned gates included, keeping ids stable.
    pub gates: Vec<(bool, GateType, Vec<u32>, u32, NodeRole)>,
    /// Cached constant-0 / constant-1 net indices.
    pub const_nets: [Option<u32>; 2],
    /// Fresh-name counter (preserved so later `fresh_net` calls on the
    /// restored netlist never collide).
    pub fresh_counter: u64,
}

impl Netlist {
    /// Flatten into a [`NetlistParts`] view.
    pub fn to_parts(&self) -> NetlistParts {
        NetlistParts {
            name: self.name.clone(),
            nets: self
                .nets
                .iter()
                .map(|n| (n.name.clone(), n.driver))
                .collect(),
            inputs: self
                .inputs
                .iter()
                .map(|i| (i.name.clone(), i.kind, i.net.0))
                .collect(),
            outputs: self
                .outputs
                .iter()
                .map(|o| (o.name.clone(), o.net.0))
                .collect(),
            gates: self
                .gates
                .iter()
                .map(|g| {
                    (
                        g.alive,
                        g.ty,
                        g.inputs.iter().map(|n| n.0).collect(),
                        g.output.0,
                        g.role,
                    )
                })
                .collect(),
            const_nets: [
                self.const_nets[0].map(|n| n.0),
                self.const_nets[1].map(|n| n.0),
            ],
            fresh_counter: self.fresh_counter,
        }
    }

    /// Reassemble a netlist from [`Netlist::to_parts`]. `None` when the
    /// parts are internally inconsistent (out-of-range indices,
    /// duplicate net names) — a corrupt payload decodes to a cache miss,
    /// never a panic.
    pub fn from_parts(parts: NetlistParts) -> Option<Netlist> {
        let n_nets = parts.nets.len();
        let net_ok = |i: u32| (i as usize) < n_nets;
        let mut net_by_name = HashMap::with_capacity(n_nets);
        for (i, (name, driver)) in parts.nets.iter().enumerate() {
            if net_by_name.insert(name.clone(), NetId(i as u32)).is_some() {
                return None;
            }
            match *driver {
                Driver::Input(id) => {
                    if id.index() >= parts.inputs.len() {
                        return None;
                    }
                }
                Driver::Gate(id) => {
                    if id.index() >= parts.gates.len() {
                        return None;
                    }
                }
                Driver::Const(_) | Driver::Undriven => {}
            }
        }
        if parts.inputs.iter().any(|&(_, _, net)| !net_ok(net))
            || parts.outputs.iter().any(|&(_, net)| !net_ok(net))
            || parts
                .gates
                .iter()
                .any(|(_, _, ins, out, _)| !net_ok(*out) || ins.iter().any(|&i| !net_ok(i)))
            || parts
                .const_nets
                .iter()
                .any(|slot| slot.is_some_and(|n| !net_ok(n)))
        {
            return None;
        }
        let dead_gates = parts.gates.iter().filter(|(alive, ..)| !alive).count();
        Some(Netlist {
            name: parts.name,
            nets: parts
                .nets
                .into_iter()
                .map(|(name, driver)| NetInfo { name, driver })
                .collect(),
            inputs: parts
                .inputs
                .into_iter()
                .map(|(name, kind, net)| InputInfo {
                    name,
                    kind,
                    net: NetId(net),
                })
                .collect(),
            outputs: parts
                .outputs
                .into_iter()
                .map(|(name, net)| OutputInfo {
                    name,
                    net: NetId(net),
                })
                .collect(),
            gates: parts
                .gates
                .into_iter()
                .map(|(alive, ty, inputs, output, role)| GateInfo {
                    ty,
                    inputs: inputs.into_iter().map(NetId).collect(),
                    output: NetId(output),
                    role,
                    alive,
                })
                .collect(),
            net_by_name,
            const_nets: [
                parts.const_nets[0].map(NetId),
                parts.const_nets[1].map(NetId),
            ],
            fresh_counter: parts.fresh_counter,
            dead_gates,
        })
    }
}

impl Netlist {
    /// Create an empty netlist with a module `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nets: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
            net_by_name: HashMap::new(),
            const_nets: [None, None],
            fresh_counter: 0,
            dead_gates: 0,
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the module.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Declare a named net with no driver yet.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNet`] if the name is taken.
    pub fn add_net(&mut self, name: impl Into<String>) -> Result<NetId> {
        let name = name.into();
        if self.net_by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateNet(name));
        }
        let id = NetId(self.nets.len() as u32);
        self.net_by_name.insert(name.clone(), id);
        self.nets.push(NetInfo {
            name,
            driver: Driver::Undriven,
        });
        Ok(id)
    }

    /// Create a fresh net with an auto-generated unique name.
    pub fn fresh_net(&mut self) -> NetId {
        loop {
            let name = format!("_n{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.net_by_name.contains_key(&name) {
                return self.add_net(name).expect("fresh name is unique");
            }
        }
    }

    /// Add a top-level input of the given kind and return the net it drives.
    ///
    /// # Panics
    ///
    /// Panics if the name is already a net.
    pub fn add_input(&mut self, name: impl Into<String>, kind: InputKind) -> NetId {
        let name = name.into();
        let net = self
            .add_net(name.clone())
            .unwrap_or_else(|_| panic!("input name `{name}` already used"));
        let id = InputId(self.inputs.len() as u32);
        self.nets[net.index()].driver = Driver::Input(id);
        self.inputs.push(InputInfo { name, kind, net });
        net
    }

    /// Add a primary input. See [`Netlist::add_input`].
    pub fn add_primary_input(&mut self, name: impl Into<String>) -> NetId {
        self.add_input(name, InputKind::Primary)
    }

    /// Add a key input. See [`Netlist::add_input`].
    pub fn add_key_input(&mut self, name: impl Into<String>) -> NetId {
        self.add_input(name, InputKind::Key)
    }

    /// Net tied to the constant `value`, created on first use.
    pub fn const_net(&mut self, value: bool) -> NetId {
        let slot = value as usize;
        if let Some(net) = self.const_nets[slot] {
            return net;
        }
        let net = loop {
            let name = format!("_const{}_{}", value as u8, self.fresh_counter);
            self.fresh_counter += 1;
            if !self.net_by_name.contains_key(&name) {
                break self.add_net(name).expect("fresh name is unique");
            }
        };
        self.nets[net.index()].driver = Driver::Const(value);
        self.const_nets[slot] = Some(net);
        net
    }

    /// Tie an existing undriven net to a constant value.
    ///
    /// # Panics
    ///
    /// Panics if `net` already has a driver.
    pub fn tie_const(&mut self, net: NetId, value: bool) {
        assert!(
            matches!(self.nets[net.index()].driver, Driver::Undriven),
            "net `{}` already driven",
            self.nets[net.index()].name
        );
        self.nets[net.index()].driver = Driver::Const(value);
        if self.const_nets[value as usize].is_none() {
            self.const_nets[value as usize] = Some(net);
        }
    }

    /// Add a gate with a fresh output net; returns the gate id.
    ///
    /// # Panics
    ///
    /// Panics if the input count is illegal for the family.
    pub fn add_gate(&mut self, ty: GateType, inputs: &[NetId]) -> GateId {
        let out = self.fresh_net();
        self.add_gate_into(ty, inputs, out)
    }

    /// Add a gate with role metadata. See [`Netlist::add_gate`].
    pub fn add_gate_with_role(&mut self, ty: GateType, inputs: &[NetId], role: NodeRole) -> GateId {
        let g = self.add_gate(ty, inputs);
        self.gates[g.index()].role = role;
        g
    }

    /// Add a gate that drives an existing (undriven) net `out`.
    ///
    /// # Panics
    ///
    /// Panics if the arity is illegal or `out` already has a driver.
    pub fn add_gate_into(&mut self, ty: GateType, inputs: &[NetId], out: NetId) -> GateId {
        assert!(
            ty.arity_ok(inputs.len()),
            "gate {ty} does not accept {} inputs",
            inputs.len()
        );
        assert!(
            matches!(self.nets[out.index()].driver, Driver::Undriven),
            "net `{}` already driven",
            self.nets[out.index()].name
        );
        let id = GateId(self.gates.len() as u32);
        self.nets[out.index()].driver = Driver::Gate(id);
        self.gates.push(GateInfo {
            ty,
            inputs: inputs.to_vec(),
            output: out,
            role: NodeRole::Design,
            alive: true,
        });
        id
    }

    /// Declare a primary output named `name` reading `net`.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push(OutputInfo {
            name: name.into(),
            net,
        });
    }

    /// Remove all primary-output declarations (nets and gates are kept).
    /// Used by rewrites that re-point outputs.
    pub fn clear_outputs(&mut self) {
        self.outputs.clear();
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of live gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len() - self.dead_gates
    }

    /// Number of nets (including dead ones until [`Netlist::compact`]).
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of top-level inputs (primary + key).
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Iterate over all net ids (including currently unused ones).
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(|i| NetId(i as u32))
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Iterate over live gate ids.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.alive)
            .map(|(i, _)| GateId(i as u32))
    }

    /// Upper bound on gate indices (including tombstones); useful for
    /// index-keyed side tables.
    pub fn gate_capacity(&self) -> usize {
        self.gates.len()
    }

    /// Whether `g` is still live.
    pub fn is_alive(&self, g: GateId) -> bool {
        self.gates[g.index()].alive
    }

    /// Gate family of `g`.
    pub fn gate_type(&self, g: GateId) -> GateType {
        self.gates[g.index()].ty
    }

    /// Input nets of `g`.
    pub fn gate_inputs(&self, g: GateId) -> &[NetId] {
        &self.gates[g.index()].inputs
    }

    /// Output net of `g`.
    pub fn gate_output(&self, g: GateId) -> NetId {
        self.gates[g.index()].output
    }

    /// Ground-truth role of `g`.
    pub fn role(&self, g: GateId) -> NodeRole {
        self.gates[g.index()].role
    }

    /// Set the ground-truth role of `g`.
    pub fn set_role(&mut self, g: GateId, role: NodeRole) {
        self.gates[g.index()].role = role;
    }

    /// Name of net `n`.
    pub fn net_name(&self, n: NetId) -> &str {
        &self.nets[n.index()].name
    }

    /// Driver of net `n`.
    pub fn driver(&self, n: NetId) -> Driver {
        self.nets[n.index()].driver
    }

    /// Look up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_by_name.get(name).copied()
    }

    /// All top-level inputs as `(name, kind, net)`.
    pub fn inputs(&self) -> impl Iterator<Item = (&str, InputKind, NetId)> + '_ {
        self.inputs.iter().map(|i| (i.name.as_str(), i.kind, i.net))
    }

    /// Nets driven by primary inputs, in declaration order.
    pub fn primary_inputs(&self) -> Vec<NetId> {
        self.inputs
            .iter()
            .filter(|i| i.kind == InputKind::Primary)
            .map(|i| i.net)
            .collect()
    }

    /// Nets driven by key inputs, in declaration order.
    pub fn key_inputs(&self) -> Vec<NetId> {
        self.inputs
            .iter()
            .filter(|i| i.kind == InputKind::Key)
            .map(|i| i.net)
            .collect()
    }

    /// Kind of the input driving net `n`, if any.
    pub fn input_kind(&self, n: NetId) -> Option<InputKind> {
        match self.driver(n) {
            Driver::Input(id) => Some(self.inputs[id.index()].kind),
            _ => None,
        }
    }

    /// Primary outputs as `(name, net)`.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, NetId)> + '_ {
        self.outputs.iter().map(|o| (o.name.as_str(), o.net))
    }

    /// Nets read by primary outputs, in declaration order.
    pub fn output_nets(&self) -> Vec<NetId> {
        self.outputs.iter().map(|o| o.net).collect()
    }

    /// Whether net `n` is read by at least one primary output.
    pub fn is_output_net(&self, n: NetId) -> bool {
        self.outputs.iter().any(|o| o.net == n)
    }

    // ------------------------------------------------------------------
    // Mutation (used by locking and synthesis rewrites)
    // ------------------------------------------------------------------

    /// Change the family of gate `g`.
    ///
    /// # Panics
    ///
    /// Panics if the current input count is illegal for the new family.
    pub fn set_gate_type(&mut self, g: GateId, ty: GateType) {
        let n = self.gates[g.index()].inputs.len();
        assert!(ty.arity_ok(n), "gate {ty} does not accept {n} inputs");
        self.gates[g.index()].ty = ty;
    }

    /// Replace the input list of gate `g`.
    ///
    /// # Panics
    ///
    /// Panics if the new input count is illegal for the gate's family.
    pub fn set_gate_inputs(&mut self, g: GateId, inputs: &[NetId]) {
        let ty = self.gates[g.index()].ty;
        assert!(
            ty.arity_ok(inputs.len()),
            "gate {ty} does not accept {} inputs",
            inputs.len()
        );
        self.gates[g.index()].inputs = inputs.to_vec();
    }

    /// Redirect every reader of `old` (gate inputs and primary outputs) to
    /// `new`. The driver of `old` is untouched.
    pub fn replace_net_uses(&mut self, old: NetId, new: NetId) {
        for gate in &mut self.gates {
            if !gate.alive {
                continue;
            }
            for input in &mut gate.inputs {
                if *input == old {
                    *input = new;
                }
            }
        }
        for out in &mut self.outputs {
            if out.net == old {
                out.net = new;
            }
        }
    }

    /// Tombstone gate `g`; its output net becomes undriven.
    pub fn remove_gate(&mut self, g: GateId) {
        let info = &mut self.gates[g.index()];
        if !info.alive {
            return;
        }
        info.alive = false;
        let out = info.output;
        self.nets[out.index()].driver = Driver::Undriven;
        self.dead_gates += 1;
    }

    /// Rebuild the netlist, dropping tombstoned gates and unused nets.
    /// Gate and net ids are *not* stable across this call.
    pub fn compact(&mut self) {
        let mut rebuilt = Netlist::new(self.name.clone());
        rebuilt.fresh_counter = self.fresh_counter;
        // Which nets are reachable as gate IO, input nets or output nets.
        let mut used = vec![false; self.nets.len()];
        for inp in &self.inputs {
            used[inp.net.index()] = true;
        }
        for out in &self.outputs {
            used[out.net.index()] = true;
        }
        for gate in self.gates.iter().filter(|g| g.alive) {
            used[gate.output.index()] = true;
            for &i in &gate.inputs {
                used[i.index()] = true;
            }
        }
        let mut net_map: Vec<Option<NetId>> = vec![None; self.nets.len()];
        for (idx, net) in self.nets.iter().enumerate() {
            if !used[idx] {
                continue;
            }
            let new_id = rebuilt
                .add_net(net.name.clone())
                .expect("names unique in source");
            net_map[idx] = Some(new_id);
        }
        let map = |id: NetId| net_map[id.index()].expect("used net was mapped");
        for inp in &self.inputs {
            let net = map(inp.net);
            let new_id = InputId(rebuilt.inputs.len() as u32);
            rebuilt.nets[net.index()].driver = Driver::Input(new_id);
            rebuilt.inputs.push(InputInfo {
                name: inp.name.clone(),
                kind: inp.kind,
                net,
            });
        }
        for (idx, net) in self.nets.iter().enumerate() {
            if used[idx] {
                if let Driver::Const(v) = net.driver {
                    let new_net = map(NetId(idx as u32));
                    rebuilt.nets[new_net.index()].driver = Driver::Const(v);
                    if rebuilt.const_nets[v as usize].is_none() {
                        rebuilt.const_nets[v as usize] = Some(new_net);
                    }
                }
            }
        }
        for gate in self.gates.iter().filter(|g| g.alive) {
            let inputs: Vec<NetId> = gate.inputs.iter().map(|&i| map(i)).collect();
            let out = map(gate.output);
            let g = rebuilt.add_gate_into(gate.ty, &inputs, out);
            rebuilt.gates[g.index()].role = gate.role;
        }
        for out in &self.outputs {
            rebuilt.add_output(out.name.clone(), map(out.net));
        }
        *self = rebuilt;
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Check structural sanity: every read net is driven, every cell legal
    /// in `library` (if provided), and the netlist is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, library: Option<CellLibrary>) -> Result<()> {
        for gate in self.gates.iter().filter(|g| g.alive) {
            if let Some(lib) = library {
                if !lib.allows(gate.ty, gate.inputs.len()) {
                    return Err(NetlistError::CellNotInLibrary {
                        cell: format!("{}{}", gate.ty, gate.inputs.len()),
                        library: lib.to_string(),
                    });
                }
            } else if !gate.ty.arity_ok(gate.inputs.len()) {
                return Err(NetlistError::BadArity {
                    gate: gate.ty.to_string(),
                    arity: gate.inputs.len(),
                });
            }
            for &i in &gate.inputs {
                if matches!(self.nets[i.index()].driver, Driver::Undriven) {
                    return Err(NetlistError::UndrivenNet(self.nets[i.index()].name.clone()));
                }
            }
        }
        for out in &self.outputs {
            if matches!(self.nets[out.net.index()].driver, Driver::Undriven) {
                return Err(NetlistError::UndrivenNet(
                    self.nets[out.net.index()].name.clone(),
                ));
            }
        }
        // Acyclicity is established by computing a topological order.
        self.topo_order().map(|_| ())
    }

    /// Gate count per `(family, arity)` pair.
    pub fn cell_histogram(&self) -> HashMap<(GateType, usize), usize> {
        let mut hist = HashMap::new();
        for gate in self.gates.iter().filter(|g| g.alive) {
            *hist.entry((gate.ty, gate.inputs.len())).or_insert(0) += 1;
        }
        hist
    }

    /// Gate count per [`NodeRole`], indexed `[Design, Perturb, Restore,
    /// AntiSat]`.
    pub fn role_histogram(&self) -> [usize; 4] {
        let mut hist = [0usize; 4];
        for gate in self.gates.iter().filter(|g| g.alive) {
            let idx = match gate.role {
                NodeRole::Design => 0,
                NodeRole::Perturb => 1,
                NodeRole::Restore => 2,
                NodeRole::AntiSat => 3,
            };
            hist[idx] += 1;
        }
        hist
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pis = self.primary_inputs().len();
        let kis = self.key_inputs().len();
        write!(
            f,
            "{}: {} gates, {} PIs, {} KIs, {} POs",
            self.name,
            self.num_gates(),
            pis,
            kis,
            self.num_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gate() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let k = nl.add_key_input("keyinput0");
        let g0 = nl.add_gate(GateType::And, &[a, b]);
        let g1 = nl.add_gate(GateType::Xor, &[nl.gate_output(g0), k]);
        nl.add_output("y", nl.gate_output(g1));
        nl
    }

    #[test]
    fn construction_and_counts() {
        let nl = two_gate();
        assert_eq!(nl.num_gates(), 2);
        assert_eq!(nl.primary_inputs().len(), 2);
        assert_eq!(nl.key_inputs().len(), 1);
        assert_eq!(nl.num_outputs(), 1);
        nl.validate(None).unwrap();
    }

    #[test]
    fn duplicate_net_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_net("x").unwrap();
        assert_eq!(nl.add_net("x"), Err(NetlistError::DuplicateNet("x".into())));
    }

    #[test]
    fn const_net_is_shared() {
        let mut nl = Netlist::new("t");
        let c0 = nl.const_net(false);
        let c0b = nl.const_net(false);
        let c1 = nl.const_net(true);
        assert_eq!(c0, c0b);
        assert_ne!(c0, c1);
        assert_eq!(nl.driver(c1), Driver::Const(true));
    }

    #[test]
    fn remove_and_compact() {
        let mut nl = two_gate();
        let g0 = nl.gate_ids().next().unwrap();
        // Bypass the AND gate: wire its readers to input `a`.
        let a = nl.net_by_name("a").unwrap();
        let out = nl.gate_output(g0);
        nl.replace_net_uses(out, a);
        nl.remove_gate(g0);
        assert_eq!(nl.num_gates(), 1);
        nl.compact();
        assert_eq!(nl.num_gates(), 1);
        nl.validate(None).unwrap();
        // `a` now feeds the XOR.
        let g = nl.gate_ids().next().unwrap();
        assert!(nl.gate_inputs(g).contains(&nl.net_by_name("a").unwrap()));
    }

    #[test]
    fn undriven_net_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let hole = nl.add_net("hole").unwrap();
        let g = nl.add_gate(GateType::And, &[a, hole]);
        nl.add_output("y", nl.gate_output(g));
        assert_eq!(
            nl.validate(None),
            Err(NetlistError::UndrivenNet("hole".into()))
        );
    }

    #[test]
    fn roles_survive_compaction() {
        let mut nl = two_gate();
        let g1 = nl.gate_ids().nth(1).unwrap();
        nl.set_role(g1, NodeRole::Restore);
        nl.compact();
        let roles = nl.role_histogram();
        assert_eq!(roles, [1, 0, 1, 0]);
    }

    #[test]
    fn parts_round_trip_is_observationally_lossless() {
        let mut nl = two_gate();
        // Exercise the trickier state: tombstones, consts, key inputs,
        // fresh names.
        let k = nl.add_key_input("keyinput9");
        let c = nl.const_net(true);
        let g = nl.add_gate_with_role(GateType::Or, &[k, c], NodeRole::AntiSat);
        nl.add_output("extra", nl.gate_output(g));
        let dead = nl.add_gate(GateType::Inv, &[k]);
        nl.remove_gate(dead);

        let back = Netlist::from_parts(nl.to_parts()).expect("self-parts are valid");
        assert_eq!(back.to_parts(), nl.to_parts());
        assert_eq!(back.num_gates(), nl.num_gates());
        assert_eq!(back.num_nets(), nl.num_nets());
        assert_eq!(back.role_histogram(), nl.role_histogram());
        assert_eq!(
            back.key_inputs(),
            nl.key_inputs(),
            "input ids and kinds survive"
        );
        back.validate(None).unwrap();
        // Fresh-name counter survives: no collisions after restore.
        let mut back = back;
        let fresh = back.fresh_net();
        assert!(nl.net_by_name(back.net_name(fresh)).is_none());

        // Inconsistent parts are rejected, not panicked on.
        let mut bad = nl.to_parts();
        bad.gates[0].3 = 10_000; // dangling output net
        assert!(Netlist::from_parts(bad).is_none());
        let mut dup = nl.to_parts();
        let first_name = dup.nets[0].0.clone();
        dup.nets[1].0 = first_name; // duplicate net name
        assert!(Netlist::from_parts(dup).is_none());
    }

    #[test]
    fn library_validation() {
        let nl = two_gate();
        // AND2/XOR2 exist in Lpe65.
        nl.validate(Some(CellLibrary::Lpe65)).unwrap();
        let mut wide = Netlist::new("w");
        let ins: Vec<NetId> = (0..6)
            .map(|i| wide.add_primary_input(format!("i{i}")))
            .collect();
        let g = wide.add_gate(GateType::And, &ins);
        wide.add_output("y", wide.gate_output(g));
        assert!(wide.validate(Some(CellLibrary::Lpe65)).is_err());
        wide.validate(Some(CellLibrary::Bench8)).unwrap();
    }
}
