//! Error types for netlist construction, validation and parsing.

use std::fmt;

/// Errors produced while building, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate was given an illegal number of inputs for its family.
    BadArity {
        /// Gate family name.
        gate: String,
        /// Offending input count.
        arity: usize,
    },
    /// A `(family, arity)` pair is not present in the target library.
    CellNotInLibrary {
        /// Cell description, e.g. `NAND7`.
        cell: String,
        /// Library name.
        library: String,
    },
    /// A net is read but never driven.
    UndrivenNet(String),
    /// A net name is declared twice.
    DuplicateNet(String),
    /// The combinational netlist contains a cycle.
    CombinationalCycle,
    /// Syntax error while parsing a netlist file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A referenced name does not exist.
    UnknownName(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadArity { gate, arity } => {
                write!(f, "gate {gate} does not accept {arity} inputs")
            }
            NetlistError::CellNotInLibrary { cell, library } => {
                write!(f, "cell {cell} is not in library {library}")
            }
            NetlistError::UndrivenNet(name) => write!(f, "net `{name}` is read but undriven"),
            NetlistError::DuplicateNet(name) => write!(f, "net `{name}` declared twice"),
            NetlistError::CombinationalCycle => write!(f, "netlist contains a combinational cycle"),
            NetlistError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            NetlistError::UnknownName(name) => write!(f, "unknown name `{name}`"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Convenient result alias for netlist operations.
pub type Result<T> = std::result::Result<T, NetlistError>;
