//! Gate-level netlist substrate for the GNNUnlock reproduction.
//!
//! This crate provides everything the attack framework needs from an EDA
//! front-end:
//!
//! - [`Netlist`]: a combinational gate-level netlist with primary/key
//!   inputs, primary outputs and role-annotated gates ([`NodeRole`] is the
//!   GNN ground-truth label).
//! - [`GateType`] / [`CellLibrary`]: the gate vocabulary and the three cell
//!   libraries used by the paper's datasets (`Bench8`, `Lpe65`,
//!   `Nangate45`), sized so feature-vector lengths match the paper (13 /
//!   34 / 18).
//! - Bench-format and structural Verilog I/O (the two circuit formats in
//!   the paper's Table III).
//! - Structural analysis (topological order, fan-in/fan-out cones,
//!   levelization) used by the post-processing algorithm.
//! - 64-way bit-parallel simulation and signal-probability estimation
//!   (used by equivalence checking and the SPS baseline).
//! - A deterministic synthetic benchmark [`generator`] standing in for
//!   ISCAS-85 / ITC-99 (see DESIGN.md for the substitution rationale).
//!
//! # Examples
//!
//! ```
//! use gnnunlock_netlist::{generator::BenchmarkSpec, CellLibrary};
//!
//! let nl = BenchmarkSpec::named("c2670").unwrap().scaled(0.05).generate();
//! nl.validate(Some(CellLibrary::Bench8)).unwrap();
//! let bench_text = nl.to_bench().unwrap();
//! assert!(bench_text.contains("INPUT(pi0)"));
//! ```

#![warn(missing_docs)]

mod analysis;
mod bench_io;
mod error;
mod gate;
pub mod generator;
mod library;
mod netlist;
mod sim;
mod verilog_io;

pub use analysis::{FanoutMap, OutputCone};
pub use bench_io::KEY_INPUT_PREFIX;
pub use error::{NetlistError, Result};
pub use gate::{GateType, ParseGateTypeError, ALL_GATE_TYPES};
pub use library::{CellLibrary, ParseCellLibraryError, EXTRA_FEATURES};
pub use netlist::{Driver, GateId, InputId, InputKind, NetId, Netlist, NetlistParts, NodeRole};
