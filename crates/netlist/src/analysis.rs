//! Structural analysis: topological ordering, fan-out maps, fan-in/fan-out
//! cones and levelization.

use crate::error::{NetlistError, Result};
use crate::netlist::{Driver, GateId, InputKind, NetId, Netlist};

/// Net-indexed map from each net to the gates reading it.
///
/// Build once with [`Netlist::fanout_map`] and reuse; it is invalidated by
/// any structural mutation.
#[derive(Debug, Clone)]
pub struct FanoutMap {
    readers: Vec<Vec<GateId>>,
    read_by_output: Vec<bool>,
}

impl FanoutMap {
    /// Gates reading net `n`.
    pub fn readers(&self, n: NetId) -> &[GateId] {
        &self.readers[n.index()]
    }

    /// Whether net `n` feeds a primary output.
    pub fn feeds_output(&self, n: NetId) -> bool {
        self.read_by_output[n.index()]
    }

    /// Total number of gate-input endpoints attached to `n`.
    pub fn fanout_count(&self, n: NetId) -> usize {
        self.readers[n.index()].len() + usize::from(self.read_by_output[n.index()])
    }
}

/// Transitive fan-in of one primary output: the gates implementing it and
/// the top-level inputs it depends on (see [`Netlist::output_cones`], one
/// entry per output in declaration order).
#[derive(Debug, Clone)]
pub struct OutputCone {
    /// Every live gate in the output's fan-in cone, including the driver.
    pub gates: Vec<GateId>,
    /// Every top-level input net (primary or key) in the cone.
    pub inputs: Vec<NetId>,
}

impl Netlist {
    /// Gates in topological (fan-in before fan-out) order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the gates form a
    /// cycle.
    pub fn topo_order(&self) -> Result<Vec<GateId>> {
        let cap = self.gate_capacity();
        let mut indegree = vec![0usize; cap];
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); cap];
        let mut live = 0usize;
        for g in self.gate_ids() {
            live += 1;
            for &inp in self.gate_inputs(g) {
                if let Driver::Gate(src) = self.driver(inp) {
                    if self.is_alive(src) {
                        indegree[g.index()] += 1;
                        readers[src.index()].push(g.0);
                    }
                }
            }
        }
        let mut queue: Vec<GateId> = self
            .gate_ids()
            .filter(|g| indegree[g.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(live);
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            order.push(g);
            for &r in &readers[g.index()] {
                let r = GateId(r);
                indegree[r.index()] -= 1;
                if indegree[r.index()] == 0 {
                    queue.push(r);
                }
            }
        }
        if order.len() != live {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Build the net → reader-gates map.
    pub fn fanout_map(&self) -> FanoutMap {
        let mut readers: Vec<Vec<GateId>> = vec![Vec::new(); self.num_nets()];
        let mut read_by_output = vec![false; self.num_nets()];
        for g in self.gate_ids() {
            for &inp in self.gate_inputs(g) {
                readers[inp.index()].push(g);
            }
        }
        for (_, net) in self.outputs() {
            read_by_output[net.index()] = true;
        }
        FanoutMap {
            readers,
            read_by_output,
        }
    }

    /// All gates in the transitive fan-in cone of `root` (excluding `root`
    /// itself), via backward BFS.
    pub fn fanin_cone(&self, root: GateId) -> Vec<GateId> {
        let mut seen = vec![false; self.gate_capacity()];
        let mut queue = vec![root];
        let mut cone = Vec::new();
        seen[root.index()] = true;
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            for &inp in self.gate_inputs(g) {
                if let Driver::Gate(src) = self.driver(inp) {
                    if self.is_alive(src) && !seen[src.index()] {
                        seen[src.index()] = true;
                        cone.push(src);
                        queue.push(src);
                    }
                }
            }
        }
        cone
    }

    /// Top-level input nets (primary and key) in the transitive fan-in cone
    /// of `root`, including direct connections.
    pub fn cone_inputs(&self, root: GateId) -> Vec<NetId> {
        let mut seen_gate = vec![false; self.gate_capacity()];
        let mut seen_net: Vec<NetId> = Vec::new();
        let mut queue = vec![root];
        seen_gate[root.index()] = true;
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            for &inp in self.gate_inputs(g) {
                match self.driver(inp) {
                    Driver::Gate(src) if self.is_alive(src) && !seen_gate[src.index()] => {
                        seen_gate[src.index()] = true;
                        queue.push(src);
                    }
                    Driver::Input(_) if !seen_net.contains(&inp) => {
                        seen_net.push(inp);
                    }
                    _ => {}
                }
            }
        }
        seen_net
    }

    /// Whether any key input lies in the fan-in cone of `root`.
    pub fn cone_has_key_input(&self, root: GateId) -> bool {
        self.cone_inputs(root)
            .into_iter()
            .any(|n| self.input_kind(n) == Some(InputKind::Key))
    }

    /// All gates in the transitive fan-out cone of `root` (excluding
    /// `root`), via forward BFS over `fanout`.
    pub fn fanout_cone(&self, root: GateId, fanout: &FanoutMap) -> Vec<GateId> {
        let mut seen = vec![false; self.gate_capacity()];
        let mut queue = vec![root];
        let mut cone = Vec::new();
        seen[root.index()] = true;
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            for &r in fanout.readers(self.gate_output(g)) {
                if !seen[r.index()] {
                    seen[r.index()] = true;
                    cone.push(r);
                    queue.push(r);
                }
            }
        }
        cone
    }

    /// Transitive-fanin summary of one primary output: every gate and every
    /// top-level input (primary or key) the output depends on.
    ///
    /// Built by [`Netlist::output_cones`]; the equivalence checker groups
    /// outputs with overlapping `inputs` into independently-checkable
    /// sub-miters.
    pub fn output_cones(&self) -> Vec<OutputCone> {
        let mut gate_stamp = vec![u32::MAX; self.gate_capacity()];
        let mut net_stamp = vec![u32::MAX; self.num_nets()];
        let mut queue: Vec<GateId> = Vec::new();
        self.outputs()
            .enumerate()
            .map(|(idx, (_, net))| {
                let stamp = idx as u32;
                let mut gates = Vec::new();
                let mut inputs = Vec::new();
                queue.clear();
                match self.driver(net) {
                    Driver::Gate(g) if self.is_alive(g) => {
                        gate_stamp[g.index()] = stamp;
                        gates.push(g);
                        queue.push(g);
                    }
                    Driver::Input(_) => {
                        net_stamp[net.index()] = stamp;
                        inputs.push(net);
                    }
                    _ => {}
                }
                let mut head = 0;
                while head < queue.len() {
                    let g = queue[head];
                    head += 1;
                    for &inp in self.gate_inputs(g) {
                        match self.driver(inp) {
                            Driver::Gate(src)
                                if self.is_alive(src) && gate_stamp[src.index()] != stamp =>
                            {
                                gate_stamp[src.index()] = stamp;
                                gates.push(src);
                                queue.push(src);
                            }
                            Driver::Input(_) if net_stamp[inp.index()] != stamp => {
                                net_stamp[inp.index()] = stamp;
                                inputs.push(inp);
                            }
                            _ => {}
                        }
                    }
                }
                OutputCone { gates, inputs }
            })
            .collect()
    }

    /// Logic level (longest path from any top-level input, inputs at 0) per
    /// gate, indexed by raw gate index.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`].
    pub fn levels(&self) -> Result<Vec<u32>> {
        let order = self.topo_order()?;
        let mut level = vec![0u32; self.gate_capacity()];
        for g in order {
            let mut best = 0u32;
            for &inp in self.gate_inputs(g) {
                if let Driver::Gate(src) = self.driver(inp) {
                    if self.is_alive(src) {
                        best = best.max(level[src.index()] + 1);
                    }
                }
            }
            level[g.index()] = best;
        }
        Ok(level)
    }

    /// Maximum logic depth of the netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`].
    pub fn depth(&self) -> Result<u32> {
        Ok(self.levels()?.into_iter().max().unwrap_or(0))
    }

    /// Undirected gate-adjacency edges `(u, v)` with `u < v`: one edge per
    /// wire between a driver gate and a reader gate (paper Section IV-B —
    /// PIs, KIs and POs are not graph nodes).
    pub fn gate_edges(&self) -> Vec<(GateId, GateId)> {
        let mut edges = Vec::new();
        for g in self.gate_ids() {
            for &inp in self.gate_inputs(g) {
                if let Driver::Gate(src) = self.driver(inp) {
                    if self.is_alive(src) && src != g {
                        let (a, b) = if src < g { (src, g) } else { (g, src) };
                        edges.push((a, b));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateType;

    /// Three-level chain with a side branch.
    fn chain() -> (Netlist, Vec<GateId>) {
        let mut nl = Netlist::new("chain");
        let a = nl.add_primary_input("a");
        let b = nl.add_primary_input("b");
        let k = nl.add_key_input("keyinput0");
        let g0 = nl.add_gate(GateType::And, &[a, b]);
        let g1 = nl.add_gate(GateType::Xor, &[nl.gate_output(g0), k]);
        let g2 = nl.add_gate(GateType::Inv, &[nl.gate_output(g1)]);
        let g3 = nl.add_gate(GateType::Or, &[nl.gate_output(g0), a]);
        nl.add_output("y", nl.gate_output(g2));
        nl.add_output("z", nl.gate_output(g3));
        (nl, vec![g0, g1, g2, g3])
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (nl, gs) = chain();
        let order = nl.topo_order().unwrap();
        let pos = |g: GateId| order.iter().position(|&x| x == g).unwrap();
        assert!(pos(gs[0]) < pos(gs[1]));
        assert!(pos(gs[1]) < pos(gs[2]));
        assert!(pos(gs[0]) < pos(gs[3]));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn levels_and_depth() {
        let (nl, gs) = chain();
        let levels = nl.levels().unwrap();
        assert_eq!(levels[gs[0].index()], 0);
        assert_eq!(levels[gs[1].index()], 1);
        assert_eq!(levels[gs[2].index()], 2);
        assert_eq!(levels[gs[3].index()], 1);
        assert_eq!(nl.depth().unwrap(), 2);
    }

    #[test]
    fn cones() {
        let (nl, gs) = chain();
        let cone = nl.fanin_cone(gs[2]);
        assert!(cone.contains(&gs[0]));
        assert!(cone.contains(&gs[1]));
        assert!(!cone.contains(&gs[3]));
        assert!(nl.cone_has_key_input(gs[2]));
        assert!(!nl.cone_has_key_input(gs[3]));
        let inputs = nl.cone_inputs(gs[3]);
        assert_eq!(inputs.len(), 2); // a, b
    }

    #[test]
    fn fanout_map_and_cone() {
        let (nl, gs) = chain();
        let fo = nl.fanout_map();
        let g0_out = nl.gate_output(gs[0]);
        assert_eq!(fo.readers(g0_out).len(), 2);
        assert!(!fo.feeds_output(g0_out));
        assert!(fo.feeds_output(nl.gate_output(gs[2])));
        let cone = nl.fanout_cone(gs[0], &fo);
        assert_eq!(cone.len(), 3);
    }

    #[test]
    fn gate_edges_undirected_unique() {
        let (nl, gs) = chain();
        let edges = nl.gate_edges();
        // g0-g1, g1-g2, g0-g3.
        assert_eq!(edges.len(), 3);
        for (a, b) in edges {
            assert!(a < b);
            assert!(gs.contains(&a) && gs.contains(&b));
        }
    }

    #[test]
    fn cycle_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_primary_input("a");
        let loop_net = nl.add_net("loop").unwrap();
        let g0 = nl.add_gate(GateType::And, &[a, loop_net]);
        let g1 = nl.add_gate_into(GateType::Inv, &[nl.gate_output(g0)], loop_net);
        let _ = g1;
        assert_eq!(nl.topo_order(), Err(NetlistError::CombinationalCycle));
    }
}
