//! ISCAS-style `.bench` format reader and writer.
//!
//! The bench format (used by the Anti-SAT datasets in the paper) declares
//! inputs/outputs and one gate per line:
//!
//! ```text
//! INPUT(a)
//! INPUT(keyinput0)
//! OUTPUT(y)
//! n1 = NAND(a, keyinput0)
//! y  = NOT(n1)
//! ```
//!
//! Inputs whose names start with `keyinput` are parsed as key inputs,
//! matching the attacker model's PI/KI distinction.

use crate::error::{NetlistError, Result};
use crate::gate::GateType;
use crate::netlist::{Driver, Netlist};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Name prefix identifying key inputs in bench and Verilog files.
pub const KEY_INPUT_PREFIX: &str = "keyinput";

impl Netlist {
    /// Parse a `.bench` file.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Parse`] on malformed lines and the usual
    /// structural errors for inconsistent netlists.
    pub fn from_bench(name: impl Into<String>, text: &str) -> Result<Self> {
        let mut nl = Netlist::new(name);
        let mut pending_gates: Vec<(usize, String, GateType, Vec<String>)> = Vec::new();
        let mut output_names: Vec<(usize, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = lineno + 1;
            if let Some(rest) = line.strip_prefix("INPUT") {
                let inner = paren_arg(rest, lineno)?;
                if inner.starts_with(KEY_INPUT_PREFIX) {
                    nl.add_key_input(inner);
                } else {
                    nl.add_primary_input(inner);
                }
            } else if let Some(rest) = line.strip_prefix("OUTPUT") {
                output_names.push((lineno, paren_arg(rest, lineno)?.to_string()));
            } else if let Some(eq) = line.find('=') {
                let lhs = line[..eq].trim().to_string();
                let rhs = line[eq + 1..].trim();
                let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                    line: lineno,
                    msg: "expected `TYPE(args)` on right-hand side".into(),
                })?;
                let ty: GateType = rhs[..open]
                    .trim()
                    .parse()
                    .map_err(|_| NetlistError::Parse {
                        line: lineno,
                        msg: format!("unknown gate type `{}`", rhs[..open].trim()),
                    })?;
                let close = rhs.rfind(')').ok_or_else(|| NetlistError::Parse {
                    line: lineno,
                    msg: "missing closing parenthesis".into(),
                })?;
                let args: Vec<String> = rhs[open + 1..close]
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                pending_gates.push((lineno, lhs, ty, args));
            } else {
                return Err(NetlistError::Parse {
                    line: lineno,
                    msg: format!("unrecognized line `{line}`"),
                });
            }
        }
        // Declare every referenced net that is not yet known.
        for (_, lhs, _, args) in &pending_gates {
            for name in std::iter::once(lhs).chain(args.iter()) {
                if nl.net_by_name(name).is_none() {
                    nl.add_net(name.clone())?;
                }
            }
        }
        for (lineno, lhs, ty, args) in pending_gates {
            if !ty.arity_ok(args.len()) {
                return Err(NetlistError::Parse {
                    line: lineno,
                    msg: format!("gate {ty} does not accept {} inputs", args.len()),
                });
            }
            let out = nl.net_by_name(&lhs).expect("declared above");
            if !matches!(nl.driver(out), Driver::Undriven) {
                return Err(NetlistError::Parse {
                    line: lineno,
                    msg: format!("net `{lhs}` driven twice"),
                });
            }
            let inputs: Vec<_> = args
                .iter()
                .map(|a| nl.net_by_name(a).expect("declared above"))
                .collect();
            nl.add_gate_into(ty, &inputs, out);
        }
        for (lineno, name) in output_names {
            let net = nl.net_by_name(&name).ok_or(NetlistError::Parse {
                line: lineno,
                msg: format!("OUTPUT references unknown net `{name}`"),
            })?;
            nl.add_output(name, net);
        }
        nl.validate(None)?;
        Ok(nl)
    }

    /// Serialize to `.bench` text.
    ///
    /// Where possible, the net feeding a primary output is printed under the
    /// output's name; when that is not possible (shared nets, input
    /// feed-throughs) a `BUFF` gate is emitted.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`].
    pub fn to_bench(&self) -> Result<String> {
        let rename = self.output_rename_map();
        let name_of = |net| -> String {
            rename
                .get(&net)
                .cloned()
                .unwrap_or_else(|| self.net_name(net).to_string())
        };
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.name());
        for (name, _, _) in self.inputs() {
            let _ = writeln!(out, "INPUT({name})");
        }
        for (name, _) in self.outputs() {
            let _ = writeln!(out, "OUTPUT({name})");
        }
        for g in self.topo_order()? {
            let args: Vec<String> = self.gate_inputs(g).iter().map(|&n| name_of(n)).collect();
            let ty = self.gate_type(g);
            let ty_name = if ty == GateType::Buf {
                "BUFF"
            } else {
                ty.name()
            };
            let _ = writeln!(
                out,
                "{} = {}({})",
                name_of(self.gate_output(g)),
                ty_name,
                args.join(", ")
            );
        }
        // Outputs whose net could not be renamed need explicit buffers.
        for (name, net) in self.outputs() {
            if name_of(net) != name {
                let _ = writeln!(out, "{} = BUFF({})", name, name_of(net));
            }
        }
        Ok(out)
    }

    /// Map from nets to the primary-output name they should be printed
    /// under: applicable when a gate-driven net feeds exactly one output and
    /// the output's name is not an unrelated existing net.
    pub(crate) fn output_rename_map(&self) -> HashMap<crate::netlist::NetId, String> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for (name, _) in self.outputs() {
            *counts.entry(name).or_insert(0) += 1;
        }
        let mut per_net: HashMap<crate::netlist::NetId, Vec<&str>> = HashMap::new();
        for (name, net) in self.outputs() {
            per_net.entry(net).or_default().push(name);
        }
        let mut rename = HashMap::new();
        for (net, names) in per_net {
            if names.len() != 1 {
                continue;
            }
            let name = names[0];
            if counts[name] != 1 {
                continue;
            }
            if !matches!(self.driver(net), Driver::Gate(_)) {
                continue; // input feed-through or constant: keep real name
            }
            if self.net_name(net) == name {
                continue; // already aligned; no rename entry needed
            }
            if self.net_by_name(name).is_some() {
                continue; // output name collides with another net
            }
            rename.insert(net, name.to_string());
        }
        rename
    }
}

fn paren_arg(rest: &str, line: usize) -> Result<&str> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| NetlistError::Parse {
            line,
            msg: "expected `(name)`".into(),
        })?;
    Ok(inner.trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateType;

    const SAMPLE: &str = r"
# toy circuit
INPUT(a)
INPUT(b)
INPUT(keyinput0)
OUTPUT(y)
n1 = NAND(a, b)
n2 = XOR(n1, keyinput0)
y = NOT(n2)
";

    #[test]
    fn parse_sample() {
        let nl = Netlist::from_bench("toy", SAMPLE).unwrap();
        assert_eq!(nl.num_gates(), 3);
        assert_eq!(nl.primary_inputs().len(), 2);
        assert_eq!(nl.key_inputs().len(), 1);
        assert_eq!(nl.num_outputs(), 1);
    }

    #[test]
    fn round_trip_preserves_function_and_size() {
        let nl = Netlist::from_bench("toy", SAMPLE).unwrap();
        let text = nl.to_bench().unwrap();
        let nl2 = Netlist::from_bench("toy", &text).unwrap();
        assert_eq!(nl.num_gates(), nl2.num_gates());
        for bits in 0..8u32 {
            let pi = vec![bits & 1 == 1, bits & 2 == 2];
            let ki = vec![bits & 4 == 4];
            assert_eq!(
                nl.eval_outputs(&pi, &ki).unwrap(),
                nl2.eval_outputs(&pi, &ki).unwrap()
            );
        }
    }

    #[test]
    fn output_driven_by_gate_gets_renamed_not_buffered() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let g = nl.add_gate(GateType::Inv, &[a]);
        nl.add_output("y", nl.gate_output(g));
        let text = nl.to_bench().unwrap();
        assert!(text.contains("y = NOT(a)"), "got:\n{text}");
        assert!(!text.contains("BUFF"), "got:\n{text}");
    }

    #[test]
    fn shared_output_net_gets_buffer() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a");
        let g = nl.add_gate(GateType::Inv, &[a]);
        nl.add_output("y1", nl.gate_output(g));
        nl.add_output("y2", nl.gate_output(g));
        let text = nl.to_bench().unwrap();
        let nl2 = Netlist::from_bench("t", &text).unwrap();
        assert_eq!(nl2.num_outputs(), 2);
        assert_eq!(nl2.eval_outputs(&[true], &[]).unwrap(), vec![false, false]);
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let err = Netlist::from_bench("bad", "INPUT(a)\nz = FROB(a)\n").unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn double_driver_rejected() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n";
        assert!(Netlist::from_bench("bad", text).is_err());
    }

    #[test]
    fn wide_gates_parse() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = AND(a, b, c, d)\n";
        let nl = Netlist::from_bench("wide", text).unwrap();
        let g = nl.gate_ids().next().unwrap();
        assert_eq!(nl.gate_inputs(g).len(), 4);
        assert_eq!(
            nl.eval_outputs(&[true, true, true, true], &[]).unwrap(),
            vec![true]
        );
    }
}
