//! Gate (standard-cell) types and their Boolean semantics.
//!
//! A [`GateType`] names a logic *function family*. The arity of an instance
//! is given by its input list: the bench format permits variadic
//! `AND`/`OR`/`NAND`/`NOR`/`XOR`/`XNOR` gates, while mapped standard-cell
//! libraries restrict each family to specific arities (see
//! [`crate::library::CellLibrary`]).

use std::fmt;
use std::str::FromStr;

/// Logic function family of a gate.
///
/// Complex cells (`Aoi*`, `Oai*`, `Mux2`, `Mxi2`, `Maj3`) have fixed arity;
/// the simple families accept any arity ≥ 1 (`Buf`/`Inv` exactly 1).
///
/// # Examples
///
/// ```
/// use gnnunlock_netlist::GateType;
/// assert_eq!(GateType::Nand.eval(&[true, true]), false);
/// assert_eq!(GateType::Aoi21.eval(&[true, true, false]), false);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateType {
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Inv,
    /// N-input AND.
    And,
    /// N-input NAND.
    Nand,
    /// N-input OR.
    Or,
    /// N-input NOR.
    Nor,
    /// N-input XOR (parity).
    Xor,
    /// N-input XNOR (complement of parity).
    Xnor,
    /// AND-OR-INVERT 2-1: `y = !((a & b) | c)`.
    Aoi21,
    /// AND-OR-INVERT 2-2: `y = !((a & b) | (c & d))`.
    Aoi22,
    /// AND-OR-INVERT 2-1-1: `y = !((a & b) | c | d)`.
    Aoi211,
    /// AND-OR-INVERT 2-2-1: `y = !((a & b) | (c & d) | e)`.
    Aoi221,
    /// OR-AND-INVERT 2-1: `y = !((a | b) & c)`.
    Oai21,
    /// OR-AND-INVERT 2-2: `y = !((a | b) & (c | d))`.
    Oai22,
    /// OR-AND-INVERT 2-1-1: `y = !((a | b) & c & d)`.
    Oai211,
    /// OR-AND-INVERT 2-2-1: `y = !((a | b) & (c | d) & e)`.
    Oai221,
    /// 2:1 multiplexer: `y = s ? b : a` with inputs `(a, b, s)`.
    Mux2,
    /// Inverting 2:1 multiplexer: `y = !(s ? b : a)`.
    Mxi2,
    /// 3-input majority (full-adder carry): `y = ab | ac | bc`.
    Maj3,
}

/// All gate types, in a stable order (used for feature layouts and stats).
pub const ALL_GATE_TYPES: [GateType; 19] = [
    GateType::Buf,
    GateType::Inv,
    GateType::And,
    GateType::Nand,
    GateType::Or,
    GateType::Nor,
    GateType::Xor,
    GateType::Xnor,
    GateType::Aoi21,
    GateType::Aoi22,
    GateType::Aoi211,
    GateType::Aoi221,
    GateType::Oai21,
    GateType::Oai22,
    GateType::Oai211,
    GateType::Oai221,
    GateType::Mux2,
    GateType::Mxi2,
    GateType::Maj3,
];

impl GateType {
    /// Fixed arity of the gate, or `None` for the variadic families.
    ///
    /// `Buf` and `Inv` report `Some(1)`.
    pub fn fixed_arity(self) -> Option<usize> {
        use GateType::*;
        match self {
            Buf | Inv => Some(1),
            And | Nand | Or | Nor | Xor | Xnor => None,
            Aoi21 | Oai21 | Mux2 | Mxi2 | Maj3 => Some(3),
            Aoi22 | Oai22 | Aoi211 | Oai211 => Some(4),
            Aoi221 | Oai221 => Some(5),
        }
    }

    /// Whether `n` inputs is a legal arity for this family.
    pub fn arity_ok(self, n: usize) -> bool {
        match self.fixed_arity() {
            Some(k) => n == k,
            None => n >= 2,
        }
    }

    /// `true` for gates whose output inverts when all inputs invert
    /// (self-dual under complement is not required; this flags the inverting
    /// families used by De Morgan rewrites).
    pub fn is_inverting(self) -> bool {
        use GateType::*;
        matches!(
            self,
            Inv | Nand
                | Nor
                | Xnor
                | Aoi21
                | Aoi22
                | Aoi211
                | Aoi221
                | Oai21
                | Oai22
                | Oai211
                | Oai221
                | Mxi2
        )
    }

    /// Evaluate the gate on Boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the family.
    pub fn eval(self, inputs: &[bool]) -> bool {
        use GateType::*;
        assert!(
            self.arity_ok(inputs.len()),
            "gate {self} does not accept {} inputs",
            inputs.len()
        );
        match self {
            Buf => inputs[0],
            Inv => !inputs[0],
            And => inputs.iter().all(|&b| b),
            Nand => !inputs.iter().all(|&b| b),
            Or => inputs.iter().any(|&b| b),
            Nor => !inputs.iter().any(|&b| b),
            Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
            Aoi211 => !((inputs[0] & inputs[1]) | inputs[2] | inputs[3]),
            Aoi221 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3]) | inputs[4]),
            Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            Oai22 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3])),
            Oai211 => !((inputs[0] | inputs[1]) & inputs[2] & inputs[3]),
            Oai221 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3]) & inputs[4]),
            Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            Mxi2 => !(if inputs[2] { inputs[1] } else { inputs[0] }),
            Maj3 => (inputs[0] & inputs[1]) | (inputs[0] & inputs[2]) | (inputs[1] & inputs[2]),
        }
    }

    /// Evaluate the gate on 64 parallel patterns packed into `u64` words.
    ///
    /// Bit `i` of every word belongs to pattern `i`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the family.
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        use GateType::*;
        debug_assert!(self.arity_ok(inputs.len()));
        match self {
            Buf => inputs[0],
            Inv => !inputs[0],
            And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
            Aoi211 => !((inputs[0] & inputs[1]) | inputs[2] | inputs[3]),
            Aoi221 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3]) | inputs[4]),
            Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            Oai22 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3])),
            Oai211 => !((inputs[0] | inputs[1]) & inputs[2] & inputs[3]),
            Oai221 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3]) & inputs[4]),
            Mux2 => (inputs[0] & !inputs[2]) | (inputs[1] & inputs[2]),
            Mxi2 => !((inputs[0] & !inputs[2]) | (inputs[1] & inputs[2])),
            Maj3 => (inputs[0] & inputs[1]) | (inputs[0] & inputs[2]) | (inputs[1] & inputs[2]),
        }
    }

    /// Canonical upper-case name used by the bench format and as the stem of
    /// standard-cell names.
    pub fn name(self) -> &'static str {
        use GateType::*;
        match self {
            Buf => "BUF",
            Inv => "NOT",
            And => "AND",
            Nand => "NAND",
            Or => "OR",
            Nor => "NOR",
            Xor => "XOR",
            Xnor => "XNOR",
            Aoi21 => "AOI21",
            Aoi22 => "AOI22",
            Aoi211 => "AOI211",
            Aoi221 => "AOI221",
            Oai21 => "OAI21",
            Oai22 => "OAI22",
            Oai211 => "OAI211",
            Oai221 => "OAI221",
            Mux2 => "MUX2",
            Mxi2 => "MXI2",
            Maj3 => "MAJ3",
        }
    }
}

impl fmt::Display for GateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`GateType`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateTypeError(pub String);

impl fmt::Display for ParseGateTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate type `{}`", self.0)
    }
}

impl std::error::Error for ParseGateTypeError {}

impl FromStr for GateType {
    type Err = ParseGateTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use GateType::*;
        let up = s.to_ascii_uppercase();
        // Strip a standard-cell arity+drive suffix such as `NAND2_X1` or
        // `NAND2X2` down to the family stem.
        let stem: &str = up.split('_').next().unwrap_or(&up);
        let family = stem.trim_end_matches(|c: char| c.is_ascii_digit() || c == 'X');
        let lookup = |name: &str| -> Option<GateType> {
            match name {
                "BUF" | "BUFF" => Some(Buf),
                "NOT" | "INV" => Some(Inv),
                "AND" => Some(And),
                "NAND" => Some(Nand),
                "OR" => Some(Or),
                "NOR" => Some(Nor),
                "XOR" => Some(Xor),
                "XNOR" => Some(Xnor),
                "MAJ" => Some(Maj3),
                _ => None,
            }
        };
        // Complex cells keep their digits in the family name, so match the
        // full stem first.
        match stem {
            "AOI21" => return Ok(Aoi21),
            "AOI22" => return Ok(Aoi22),
            "AOI211" => return Ok(Aoi211),
            "AOI221" => return Ok(Aoi221),
            "OAI21" => return Ok(Oai21),
            "OAI22" => return Ok(Oai22),
            "OAI211" => return Ok(Oai211),
            "OAI221" => return Ok(Oai221),
            "MUX2" | "MUX" => return Ok(Mux2),
            "MXI2" | "MXI" => return Ok(Mxi2),
            "MAJ3" => return Ok(Maj3),
            _ => {}
        }
        lookup(family)
            .or_else(|| lookup(stem))
            .ok_or_else(|| ParseGateTypeError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variadic_and_truth_table() {
        assert!(GateType::And.eval(&[true, true, true]));
        assert!(!GateType::And.eval(&[true, false, true]));
        assert!(GateType::Nand.eval(&[true, false]));
        assert!(!GateType::Nand.eval(&[true, true]));
    }

    #[test]
    fn parity_gates() {
        assert!(GateType::Xor.eval(&[true, false, false]));
        assert!(!GateType::Xor.eval(&[true, true, false, false]));
        assert!(GateType::Xnor.eval(&[true, true]));
        assert!(!GateType::Xnor.eval(&[true, false]));
    }

    #[test]
    fn complex_cells_match_definitions() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assert_eq!(GateType::Aoi21.eval(&[a, b, c]), !((a & b) | c));
                    assert_eq!(GateType::Oai21.eval(&[a, b, c]), !((a | b) & c));
                    assert_eq!(GateType::Mux2.eval(&[a, b, c]), if c { b } else { a });
                    assert_eq!(GateType::Mxi2.eval(&[a, b, c]), !if c { b } else { a });
                    assert_eq!(GateType::Maj3.eval(&[a, b, c]), (a & b) | (a & c) | (b & c));
                    for d in [false, true] {
                        assert_eq!(GateType::Aoi22.eval(&[a, b, c, d]), !((a & b) | (c & d)));
                        assert_eq!(GateType::Oai22.eval(&[a, b, c, d]), !((a | b) & (c | d)));
                        assert_eq!(GateType::Aoi211.eval(&[a, b, c, d]), !((a & b) | c | d));
                        assert_eq!(GateType::Oai211.eval(&[a, b, c, d]), !((a | b) & c & d));
                        for e in [false, true] {
                            assert_eq!(
                                GateType::Aoi221.eval(&[a, b, c, d, e]),
                                !((a & b) | (c & d) | e)
                            );
                            assert_eq!(
                                GateType::Oai221.eval(&[a, b, c, d, e]),
                                !((a | b) & (c | d) & e)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for &ty in ALL_GATE_TYPES.iter() {
            let arity = ty.fixed_arity().unwrap_or(4);
            let words: Vec<u64> = (0..arity).map(|_| rng.random()).collect();
            let word_out = ty.eval_word(&words);
            for bit in 0..64 {
                let bits: Vec<bool> = words.iter().map(|w| (w >> bit) & 1 == 1).collect();
                assert_eq!(
                    (word_out >> bit) & 1 == 1,
                    ty.eval(&bits),
                    "mismatch for {ty} at bit {bit}"
                );
            }
        }
    }

    #[test]
    fn parse_cell_names() {
        assert_eq!("NAND2_X1".parse::<GateType>().unwrap(), GateType::Nand);
        assert_eq!("INVX4".parse::<GateType>().unwrap(), GateType::Inv);
        assert_eq!("not".parse::<GateType>().unwrap(), GateType::Inv);
        assert_eq!("AOI211".parse::<GateType>().unwrap(), GateType::Aoi211);
        assert_eq!("MUX2_X1".parse::<GateType>().unwrap(), GateType::Mux2);
        assert!("FOO".parse::<GateType>().is_err());
    }

    #[test]
    fn arity_validation() {
        assert!(GateType::And.arity_ok(5));
        assert!(!GateType::And.arity_ok(1));
        assert!(GateType::Inv.arity_ok(1));
        assert!(!GateType::Inv.arity_ok(2));
        assert!(GateType::Aoi221.arity_ok(5));
        assert!(!GateType::Aoi221.arity_ok(4));
    }
}
