//! Synthetic benchmark generation.
//!
//! The paper evaluates on ISCAS-85 and ITC-99 circuits, which are not
//! redistributable here. This module generates deterministic synthetic
//! stand-ins with the same interface profile (PI/PO counts), comparable
//! gate counts, and the design substructures that matter to the attack:
//! arithmetic carry chains, comparator trees (structurally similar to the
//! SFLL restore unit), wide NOR trees (the paper's reported source of
//! design-node misclassifications) and random control logic.
//!
//! Circuits are emitted in the `Bench8` vocabulary; use the `synth` crate
//! to map them into standard-cell libraries.

use crate::gate::GateType;
use crate::netlist::{NetId, Netlist};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// Parameters of a synthetic benchmark.
///
/// # Examples
///
/// ```
/// use gnnunlock_netlist::generator::BenchmarkSpec;
/// let spec = BenchmarkSpec::named("c2670").unwrap().scaled(0.2);
/// let nl = spec.generate();
/// assert!(nl.num_gates() > 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Circuit name (e.g. `c2670`, `b14_C`).
    pub name: String,
    /// Number of primary inputs.
    pub n_pis: usize,
    /// Number of primary outputs.
    pub n_pos: usize,
    /// Approximate number of gates (actual count is within ~10%).
    pub n_gates: usize,
    /// RNG seed; the same spec always generates the same netlist.
    pub seed: u64,
}

/// `(name, PIs, POs, gates)` profiles of the ISCAS-85 circuits used in the
/// paper.
const ISCAS85: [(&str, usize, usize, usize); 4] = [
    ("c2670", 233, 140, 1193),
    ("c3540", 50, 22, 1669),
    ("c5315", 178, 123, 2307),
    ("c7552", 207, 108, 3512),
];

/// `(name, PIs, POs, gates)` profiles of the ITC-99 circuits used in the
/// paper (combinational `_C` versions).
const ITC99: [(&str, usize, usize, usize); 6] = [
    ("b14_C", 277, 299, 9767),
    ("b15_C", 485, 519, 8367),
    ("b20_C", 522, 512, 19682),
    ("b21_C", 522, 512, 20027),
    ("b22_C", 767, 757, 29162),
    ("b17_C", 1452, 1512, 30777),
];

impl BenchmarkSpec {
    /// Look up a named profile from the ISCAS-85 / ITC-99 catalogues.
    pub fn named(name: &str) -> Option<BenchmarkSpec> {
        ISCAS85
            .iter()
            .chain(ITC99.iter())
            .find(|&&(n, ..)| n == name)
            .map(|&(n, pis, pos, gates)| BenchmarkSpec {
                name: n.to_string(),
                n_pis: pis,
                n_pos: pos,
                n_gates: gates,
                seed: fnv(n),
            })
    }

    /// Scale the gate count by `f` (interface scales with `sqrt(f)`, floored
    /// to keep enough PIs for locking).
    pub fn scaled(mut self, f: f64) -> BenchmarkSpec {
        let f = f.max(0.01);
        self.n_gates = ((self.n_gates as f64 * f) as usize).max(120);
        let s = f.sqrt();
        self.n_pis = ((self.n_pis as f64 * s) as usize).clamp(16, self.n_pis.max(16));
        self.n_pos = ((self.n_pos as f64 * s) as usize).clamp(4, self.n_pos.max(4));
        self
    }

    /// Generate the netlist for this spec.
    pub fn generate(&self) -> Netlist {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut nl = Netlist::new(self.name.clone());
        let pis: Vec<NetId> = (0..self.n_pis)
            .map(|i| nl.add_primary_input(format!("pi{i}")))
            .collect();
        let mut pool: Vec<NetId> = pis.clone();
        let budget = self.n_gates;
        let mut built = 0usize;

        // Structured blocks consume roughly half the budget.
        while built < budget / 2 {
            let pick = rng.random_range(0..4u8);
            built += match pick {
                0 => add_carry_chain(&mut nl, &mut rng, &mut pool),
                1 => add_comparator_tree(&mut nl, &mut rng, &mut pool),
                2 => add_nor_tree(&mut nl, &mut rng, &mut pool),
                _ => add_mux_cluster(&mut nl, &mut rng, &mut pool),
            };
        }
        // Random glue logic for the rest.
        while built < budget {
            built += add_random_gate(&mut nl, &mut rng, &mut pool);
        }

        attach_outputs(&mut nl, &mut rng, self.n_pos);
        nl
    }
}

/// The four ISCAS-85 profiles used in the paper.
pub fn iscas85_suite() -> Vec<BenchmarkSpec> {
    ISCAS85
        .iter()
        .map(|&(n, ..)| BenchmarkSpec::named(n).expect("catalogued"))
        .collect()
}

/// The six ITC-99 profiles used in the paper.
pub fn itc99_suite() -> Vec<BenchmarkSpec> {
    ITC99
        .iter()
        .map(|&(n, ..)| BenchmarkSpec::named(n).expect("catalogued"))
        .collect()
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Pick a random driven signal, biased toward recently created ones so the
/// circuit acquires depth.
fn pick(rng: &mut StdRng, pool: &[NetId]) -> NetId {
    let n = pool.len();
    debug_assert!(n > 0);
    // Mix uniform picks with picks from the most recent quarter.
    if rng.random_bool(0.5) || n < 8 {
        pool[rng.random_range(0..n)]
    } else {
        pool[rng.random_range(n - n / 4..n)]
    }
}

fn pick_distinct(rng: &mut StdRng, pool: &[NetId], k: usize) -> Vec<NetId> {
    let mut out: Vec<NetId> = Vec::with_capacity(k);
    let mut guard = 0;
    while out.len() < k {
        let cand = pick(rng, pool);
        if !out.contains(&cand) || guard > 20 {
            out.push(cand);
        }
        guard += 1;
    }
    out
}

/// Ripple-carry adder segment: `width` full adders built from XOR/AND/OR.
fn add_carry_chain(nl: &mut Netlist, rng: &mut StdRng, pool: &mut Vec<NetId>) -> usize {
    let width = rng.random_range(3..9usize);
    let mut carry = pick(rng, pool);
    let mut added = 0;
    for _ in 0..width {
        let ins = pick_distinct(rng, pool, 2);
        let (a, b) = (ins[0], ins[1]);
        let axb = nl.add_gate(GateType::Xor, &[a, b]);
        let sum = nl.add_gate(GateType::Xor, &[nl.gate_output(axb), carry]);
        let ab = nl.add_gate(GateType::And, &[a, b]);
        let axb_c = nl.add_gate(GateType::And, &[nl.gate_output(axb), carry]);
        let cout = nl.add_gate(GateType::Or, &[nl.gate_output(ab), nl.gate_output(axb_c)]);
        pool.push(nl.gate_output(sum));
        carry = nl.gate_output(cout);
        added += 5;
    }
    pool.push(carry);
    added
}

/// Equality-comparator tree: XNOR leaves reduced by an AND tree. This is
/// deliberately the same shape as a TTLock restore unit, giving the GNN a
/// non-trivial discrimination task.
fn add_comparator_tree(nl: &mut Netlist, rng: &mut StdRng, pool: &mut Vec<NetId>) -> usize {
    let width = rng.random_range(3..9usize);
    let mut layer: Vec<NetId> = Vec::with_capacity(width);
    let mut added = 0;
    for _ in 0..width {
        let ins = pick_distinct(rng, pool, 2);
        let g = nl.add_gate(GateType::Xnor, &ins);
        layer.push(nl.gate_output(g));
        added += 1;
    }
    while layer.len() > 1 {
        let take = layer.len().min(rng.random_range(2..5usize));
        let group: Vec<NetId> = layer.drain(..take).collect();
        let g = if group.len() == 1 {
            nl.add_gate(GateType::Buf, &group)
        } else {
            nl.add_gate(GateType::And, &group)
        };
        layer.push(nl.gate_output(g));
        added += 1;
    }
    pool.push(layer[0]);
    added
}

/// Wide NOR-tree (address-decoder-like) structure; the paper reports these
/// as the main source of design→perturb misclassifications.
fn add_nor_tree(nl: &mut Netlist, rng: &mut StdRng, pool: &mut Vec<NetId>) -> usize {
    let width = rng.random_range(4..12usize);
    let mut layer = pick_distinct(rng, pool, width);
    let mut added = 0;
    let mut invert = false;
    while layer.len() > 1 {
        let take = layer.len().min(rng.random_range(2..5usize));
        let group: Vec<NetId> = layer.drain(..take).collect();
        let ty = if group.len() == 1 {
            GateType::Inv
        } else if invert {
            GateType::Nand
        } else {
            GateType::Nor
        };
        let g = nl.add_gate(ty, &group);
        layer.push(nl.gate_output(g));
        invert = !invert;
        added += 1;
    }
    pool.push(layer[0]);
    added
}

/// Small multiplexer cluster built from AND/OR/NOT.
fn add_mux_cluster(nl: &mut Netlist, rng: &mut StdRng, pool: &mut Vec<NetId>) -> usize {
    let count = rng.random_range(2..5usize);
    let sel = pick(rng, pool);
    let nsel = nl.add_gate(GateType::Inv, &[sel]);
    let mut added = 1;
    for _ in 0..count {
        let ins = pick_distinct(rng, pool, 2);
        let a_side = nl.add_gate(GateType::And, &[ins[0], nl.gate_output(nsel)]);
        let b_side = nl.add_gate(GateType::And, &[ins[1], sel]);
        let y = nl.add_gate(
            GateType::Or,
            &[nl.gate_output(a_side), nl.gate_output(b_side)],
        );
        pool.push(nl.gate_output(y));
        added += 3;
    }
    added
}

fn add_random_gate(nl: &mut Netlist, rng: &mut StdRng, pool: &mut Vec<NetId>) -> usize {
    // Weighted toward the inverting families that dominate real netlists.
    const CHOICES: [(GateType, usize, u32); 10] = [
        (GateType::Nand, 2, 20),
        (GateType::Nand, 3, 8),
        (GateType::Nor, 2, 16),
        (GateType::Nor, 3, 6),
        (GateType::And, 2, 10),
        (GateType::Or, 2, 10),
        (GateType::Inv, 1, 14),
        (GateType::Xor, 2, 6),
        (GateType::Xnor, 2, 5),
        (GateType::Buf, 1, 2),
    ];
    let total: u32 = CHOICES.iter().map(|c| c.2).sum();
    let mut roll = rng.random_range(0..total);
    let mut choice = CHOICES[0];
    for c in CHOICES {
        if roll < c.2 {
            choice = c;
            break;
        }
        roll -= c.2;
    }
    let ins = pick_distinct(rng, pool, choice.1);
    let g = nl.add_gate(choice.0, &ins);
    pool.push(nl.gate_output(g));
    1
}

/// Attach primary outputs so that every gate stays live: dangling nets are
/// either promoted to POs or merged by combiner gates.
fn attach_outputs(nl: &mut Netlist, rng: &mut StdRng, n_pos: usize) {
    let fanout = nl.fanout_map();
    let mut dangling: Vec<NetId> = nl
        .gate_ids()
        .map(|g| nl.gate_output(g))
        .filter(|&n| fanout.readers(n).is_empty())
        .collect();
    // Merge the surplus so we end up with exactly n_pos outputs where
    // possible.
    while dangling.len() > n_pos {
        let ty = *[GateType::Xor, GateType::Or, GateType::Nand]
            .choose(rng)
            .expect("non-empty");
        // XOR cells cap at 3 inputs in the mapped libraries.
        let max = if ty == GateType::Xor { 3 } else { 4 };
        let take = dangling.len().min(rng.random_range(2..=max)).max(2);
        let group: Vec<NetId> = dangling.drain(..take).collect();
        let g = nl.add_gate(ty, &group);
        dangling.push(nl.gate_output(g));
    }
    let mut pos = dangling;
    // Top up with random internal nets if the circuit converged too much.
    let all_nets: Vec<NetId> = nl.gate_ids().map(|g| nl.gate_output(g)).collect();
    while pos.len() < n_pos && !all_nets.is_empty() {
        let cand = all_nets[rng.random_range(0..all_nets.len())];
        if !pos.contains(&cand) {
            pos.push(cand);
        }
    }
    for (i, net) in pos.into_iter().enumerate() {
        nl.add_output(format!("po{i}"), net);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;

    #[test]
    fn catalogues_complete() {
        assert_eq!(iscas85_suite().len(), 4);
        assert_eq!(itc99_suite().len(), 6);
        assert!(BenchmarkSpec::named("c7552").is_some());
        assert!(BenchmarkSpec::named("bogus").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = BenchmarkSpec::named("c2670").unwrap().scaled(0.1);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.to_bench().unwrap(), b.to_bench().unwrap());
    }

    #[test]
    fn generated_circuit_is_valid_and_sized() {
        let spec = BenchmarkSpec::named("c3540").unwrap().scaled(0.2);
        let nl = spec.generate();
        nl.validate(Some(CellLibrary::Bench8)).unwrap();
        let target = spec.n_gates;
        assert!(
            nl.num_gates() >= target * 9 / 10 && nl.num_gates() <= target * 13 / 10,
            "gate count {} vs target {}",
            nl.num_gates(),
            target
        );
        assert_eq!(nl.primary_inputs().len(), spec.n_pis);
    }

    #[test]
    fn every_gate_reaches_an_output() {
        let spec = BenchmarkSpec::named("c5315").unwrap().scaled(0.05);
        let nl = spec.generate();
        let fanout = nl.fanout_map();
        for g in nl.gate_ids() {
            let out = nl.gate_output(g);
            assert!(
                !fanout.readers(out).is_empty() || fanout.feeds_output(out),
                "gate {:?} is dead",
                g
            );
        }
    }

    #[test]
    fn scaled_interface_bounds() {
        let spec = BenchmarkSpec::named("b17_C").unwrap().scaled(0.01);
        assert!(spec.n_pis >= 16);
        assert!(spec.n_pos >= 4);
        assert!(spec.n_gates >= 120);
    }

    #[test]
    fn bench_round_trip_of_generated() {
        let spec = BenchmarkSpec::named("c2670").unwrap().scaled(0.05);
        let nl = spec.generate();
        let text = nl.to_bench().unwrap();
        let nl2 = Netlist::from_bench(spec.name.clone(), &text).unwrap();
        assert_eq!(nl.num_gates(), nl2.num_gates());
    }
}
