//! Cell libraries.
//!
//! A [`CellLibrary`] defines which `(gate family, arity)` combinations a
//! netlist may use and assigns each a *feature class*, the index used by the
//! GNN's neighbourhood histogram. The three libraries match the paper's
//! feature-vector lengths exactly:
//!
//! | Library | Gate classes | Extra features (IN, OUT, PI, PO, KI) | `\|f̂\|` |
//! |---|---|---|---|
//! | `Bench8` | 8 | 5 | 13 |
//! | `Lpe65` | 29 | 5 | 34 |
//! | `Nangate45` | 13 | 5 | 18 |

use crate::gate::GateType;
use std::fmt;
use std::str::FromStr;

/// Number of non-gate-type features (IN, OUT, PI, PO, KI) in a node feature
/// vector (paper Section IV-B).
pub const EXTRA_FEATURES: usize = 5;

/// A target cell library constraining gate families and arities.
///
/// # Examples
///
/// ```
/// use gnnunlock_netlist::{CellLibrary, GateType};
/// let lib = CellLibrary::Lpe65;
/// assert!(lib.allows(GateType::Nand, 3));
/// assert!(!lib.allows(GateType::Nand, 7));
/// assert_eq!(lib.feature_len(), 34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellLibrary {
    /// The 8-gate bench-format vocabulary (variadic arities), used for
    /// Anti-SAT datasets. `|f̂| = 13`.
    #[default]
    Bench8,
    /// A 29-cell library modelled on a commercial 65nm LPe flow.
    /// `|f̂| = 34`.
    Lpe65,
    /// A 13-cell library modelled on the Nangate 45nm open cell library.
    /// `|f̂| = 18`.
    Nangate45,
}

/// Classes of the `Bench8` library in feature order.
const BENCH8: [GateType; 8] = [
    GateType::Buf,
    GateType::Inv,
    GateType::And,
    GateType::Nand,
    GateType::Or,
    GateType::Nor,
    GateType::Xor,
    GateType::Xnor,
];

/// `(family, arity)` classes of the `Lpe65` library in feature order.
const LPE65: [(GateType, usize); 29] = [
    (GateType::Inv, 1),
    (GateType::Buf, 1),
    (GateType::Nand, 2),
    (GateType::Nand, 3),
    (GateType::Nand, 4),
    (GateType::Nor, 2),
    (GateType::Nor, 3),
    (GateType::Nor, 4),
    (GateType::And, 2),
    (GateType::And, 3),
    (GateType::And, 4),
    (GateType::Or, 2),
    (GateType::Or, 3),
    (GateType::Or, 4),
    (GateType::Xor, 2),
    (GateType::Xor, 3),
    (GateType::Xnor, 2),
    (GateType::Xnor, 3),
    (GateType::Aoi21, 3),
    (GateType::Aoi22, 4),
    (GateType::Aoi211, 4),
    (GateType::Aoi221, 5),
    (GateType::Oai21, 3),
    (GateType::Oai22, 4),
    (GateType::Oai211, 4),
    (GateType::Oai221, 5),
    (GateType::Mux2, 3),
    (GateType::Mxi2, 3),
    (GateType::Maj3, 3),
];

/// `(family, arity)` classes of the `Nangate45` library in feature order.
const NANGATE45: [(GateType, usize); 13] = [
    (GateType::Inv, 1),
    (GateType::Buf, 1),
    (GateType::Nand, 2),
    (GateType::Nand, 3),
    (GateType::Nor, 2),
    (GateType::Nor, 3),
    (GateType::And, 2),
    (GateType::Or, 2),
    (GateType::Xor, 2),
    (GateType::Xnor, 2),
    (GateType::Aoi21, 3),
    (GateType::Oai21, 3),
    (GateType::Mux2, 3),
];

impl CellLibrary {
    /// Number of gate-type feature classes.
    pub fn num_classes(self) -> usize {
        match self {
            CellLibrary::Bench8 => BENCH8.len(),
            CellLibrary::Lpe65 => LPE65.len(),
            CellLibrary::Nangate45 => NANGATE45.len(),
        }
    }

    /// Total node feature vector length `|f̂|` (gate classes + IN, OUT, PI,
    /// PO, KI).
    pub fn feature_len(self) -> usize {
        self.num_classes() + EXTRA_FEATURES
    }

    /// Whether a gate of `family` with `arity` inputs is a legal cell here.
    pub fn allows(self, family: GateType, arity: usize) -> bool {
        self.feature_class(family, arity).is_some()
    }

    /// Feature-class index of `(family, arity)`, or `None` if the cell is
    /// not in the library.
    pub fn feature_class(self, family: GateType, arity: usize) -> Option<usize> {
        match self {
            CellLibrary::Bench8 => {
                if !family.arity_ok(arity) {
                    return None;
                }
                BENCH8.iter().position(|&t| t == family)
            }
            CellLibrary::Lpe65 => LPE65.iter().position(|&(t, a)| t == family && a == arity),
            CellLibrary::Nangate45 => NANGATE45
                .iter()
                .position(|&(t, a)| t == family && a == arity),
        }
    }

    /// Human-readable name of feature class `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_classes()`.
    pub fn class_name(self, idx: usize) -> String {
        match self {
            CellLibrary::Bench8 => BENCH8[idx].name().to_string(),
            CellLibrary::Lpe65 => cell_stem(LPE65[idx].0, LPE65[idx].1),
            CellLibrary::Nangate45 => cell_stem(NANGATE45[idx].0, NANGATE45[idx].1),
        }
    }

    /// Standard-cell instance name for Verilog output, e.g. `NAND2_X1`.
    ///
    /// For `Bench8` the bare family name is returned (bench gates have no
    /// drive strength).
    pub fn cell_name(self, family: GateType, arity: usize) -> String {
        match self {
            CellLibrary::Bench8 => family.name().to_string(),
            CellLibrary::Lpe65 | CellLibrary::Nangate45 => {
                format!("{}_X1", cell_stem(family, arity))
            }
        }
    }

    /// Iterate over the `(family, arity)` pairs of the library in feature
    /// order. `Bench8` families are reported with their minimum arity.
    pub fn cells(self) -> Vec<(GateType, usize)> {
        match self {
            CellLibrary::Bench8 => BENCH8
                .iter()
                .map(|&t| (t, t.fixed_arity().unwrap_or(2)))
                .collect(),
            CellLibrary::Lpe65 => LPE65.to_vec(),
            CellLibrary::Nangate45 => NANGATE45.to_vec(),
        }
    }

    /// Maximum legal arity of the `And`/`Or`/`Nand`/`Nor` families in this
    /// library (`usize::MAX` for the variadic bench format).
    pub fn max_simple_arity(self) -> usize {
        match self {
            CellLibrary::Bench8 => usize::MAX,
            CellLibrary::Lpe65 => 4,
            CellLibrary::Nangate45 => 3,
        }
    }

    /// Short identifier used in dataset names (`bench`, `65nm`, `45nm`).
    pub fn tag(self) -> &'static str {
        match self {
            CellLibrary::Bench8 => "bench",
            CellLibrary::Lpe65 => "65nm",
            CellLibrary::Nangate45 => "45nm",
        }
    }
}

/// Cell stem such as `NAND3` or `AOI21` (complex cells already encode their
/// shape in the family name).
fn cell_stem(family: GateType, arity: usize) -> String {
    use GateType::*;
    match family {
        Inv => "INV".to_string(),
        Buf => "BUF".to_string(),
        And | Nand | Or | Nor | Xor | Xnor => format!("{}{}", family.name(), arity),
        _ => family.name().to_string(),
    }
}

impl fmt::Display for CellLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CellLibrary::Bench8 => "Bench8",
            CellLibrary::Lpe65 => "Lpe65",
            CellLibrary::Nangate45 => "Nangate45",
        })
    }
}

/// Error returned when parsing a [`CellLibrary`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCellLibraryError(pub String);

impl fmt::Display for ParseCellLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cell library `{}`", self.0)
    }
}

impl std::error::Error for ParseCellLibraryError {}

impl FromStr for CellLibrary {
    type Err = ParseCellLibraryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bench8" | "bench" => Ok(CellLibrary::Bench8),
            "lpe65" | "65nm" | "65" => Ok(CellLibrary::Lpe65),
            "nangate45" | "45nm" | "45" => Ok(CellLibrary::Nangate45),
            other => Err(ParseCellLibraryError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_lengths_match_paper() {
        assert_eq!(CellLibrary::Bench8.feature_len(), 13);
        assert_eq!(CellLibrary::Lpe65.feature_len(), 34);
        assert_eq!(CellLibrary::Nangate45.feature_len(), 18);
    }

    #[test]
    fn bench8_accepts_wide_gates() {
        assert!(CellLibrary::Bench8.allows(GateType::And, 17));
        assert!(CellLibrary::Bench8.allows(GateType::Inv, 1));
        assert!(!CellLibrary::Bench8.allows(GateType::Aoi21, 3));
    }

    #[test]
    fn lpe65_arity_bounds() {
        let lib = CellLibrary::Lpe65;
        assert!(lib.allows(GateType::Nand, 4));
        assert!(!lib.allows(GateType::Nand, 5));
        assert!(lib.allows(GateType::Xor, 3));
        assert!(!lib.allows(GateType::Xor, 4));
        assert!(lib.allows(GateType::Maj3, 3));
    }

    #[test]
    fn nangate45_is_strict_subset_of_families() {
        let lib = CellLibrary::Nangate45;
        assert!(lib.allows(GateType::Mux2, 3));
        assert!(!lib.allows(GateType::Mxi2, 3));
        assert!(!lib.allows(GateType::And, 3));
    }

    #[test]
    fn feature_classes_are_dense_and_unique() {
        for lib in [
            CellLibrary::Bench8,
            CellLibrary::Lpe65,
            CellLibrary::Nangate45,
        ] {
            let mut seen = vec![false; lib.num_classes()];
            for (family, arity) in lib.cells() {
                let idx = lib.feature_class(family, arity).unwrap();
                assert!(!seen[idx], "duplicate class in {lib}");
                seen[idx] = true;
            }
            assert!(seen.iter().all(|&s| s), "gap in classes of {lib}");
        }
    }

    #[test]
    fn cell_names_round_trip_to_families() {
        for lib in [CellLibrary::Lpe65, CellLibrary::Nangate45] {
            for (family, arity) in lib.cells() {
                let name = lib.cell_name(family, arity);
                let parsed: GateType = name.parse().unwrap();
                assert_eq!(parsed, family, "{name} parsed to {parsed}");
            }
        }
    }

    #[test]
    fn library_parsing() {
        assert_eq!("65nm".parse::<CellLibrary>().unwrap(), CellLibrary::Lpe65);
        assert_eq!(
            "nangate45".parse::<CellLibrary>().unwrap(),
            CellLibrary::Nangate45
        );
        assert!("90nm".parse::<CellLibrary>().is_err());
    }
}
