//! Property-based tests of the netlist substrate.

use gnnunlock_netlist::{generator::BenchmarkSpec, CellLibrary, GateType, Netlist, ALL_GATE_TYPES};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn design(seed: u64) -> Netlist {
    let names = ["c2670", "c3540", "c5315", "c7552"];
    let mut spec = BenchmarkSpec::named(names[(seed % 4) as usize])
        .unwrap()
        .scaled(0.02);
    spec.seed = seed;
    spec.generate()
}

fn patterns(nl: &Netlist, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let n = nl.primary_inputs().len();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n).map(|_| rng.random_bool(0.5)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Verilog round trip preserves function and size for any generated
    /// circuit (after legalization into a mapped library).
    #[test]
    fn verilog_round_trip(seed in 0u64..2000) {
        let nl = design(seed);
        // Generated circuits are Lpe65-legal by construction.
        let text = nl.to_verilog(CellLibrary::Lpe65).unwrap();
        let back = Netlist::from_verilog(&text).unwrap();
        prop_assert_eq!(nl.num_gates(), back.num_gates());
        for p in patterns(&nl, 6, seed ^ 0xa) {
            prop_assert_eq!(
                nl.eval_outputs(&p, &[]).unwrap(),
                back.eval_outputs(&p, &[]).unwrap()
            );
        }
    }

    /// `eval_many` agrees with one-at-a-time evaluation.
    #[test]
    fn batched_simulation_consistent(seed in 0u64..2000) {
        let nl = design(seed);
        let pis = patterns(&nl, 70, seed ^ 0xb); // crosses the 64-word edge
        let kis = vec![vec![]; pis.len()];
        let batch = nl.eval_many(&pis, &kis).unwrap();
        for (p, row) in pis.iter().zip(&batch).take(10) {
            prop_assert_eq!(row, &nl.eval_outputs(p, &[]).unwrap());
        }
    }

    /// Word-parallel gate evaluation equals scalar evaluation for every
    /// gate family and random words.
    #[test]
    fn gate_word_eval_matches_scalar(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for &ty in ALL_GATE_TYPES.iter() {
            let arity = ty.fixed_arity().unwrap_or(2 + (seed % 3) as usize);
            let words: Vec<u64> = (0..arity).map(|_| rng.random()).collect();
            let out = ty.eval_word(&words);
            for bit in [0usize, 17, 63] {
                let bits: Vec<bool> = words.iter().map(|w| (w >> bit) & 1 == 1).collect();
                prop_assert_eq!((out >> bit) & 1 == 1, ty.eval(&bits));
            }
        }
    }

    /// Compaction never changes function.
    #[test]
    fn compaction_preserves_function(seed in 0u64..2000) {
        let nl = design(seed);
        let mut compacted = nl.clone();
        // Remove a dangling-safe gate: add one, remove it, compact.
        let a = compacted.primary_inputs()[0];
        let g = compacted.add_gate(GateType::Inv, &[a]);
        compacted.remove_gate(g);
        compacted.compact();
        for p in patterns(&nl, 6, seed ^ 0xc) {
            prop_assert_eq!(
                nl.eval_outputs(&p, &[]).unwrap(),
                compacted.eval_outputs(&p, &[]).unwrap()
            );
        }
    }

    /// Levelization is consistent: every gate's level exceeds its
    /// gate-driven inputs' levels.
    #[test]
    fn levels_are_monotone(seed in 0u64..2000) {
        let nl = design(seed);
        let levels = nl.levels().unwrap();
        for g in nl.gate_ids() {
            for &inp in nl.gate_inputs(g) {
                if let gnnunlock_netlist::Driver::Gate(src) = nl.driver(inp) {
                    prop_assert!(levels[g.index()] > levels[src.index()]);
                }
            }
        }
    }

    /// Signal probabilities are proper probabilities and inputs hover
    /// around 0.5.
    #[test]
    fn signal_probabilities_bounded(seed in 0u64..500) {
        let nl = design(seed);
        let probs = nl.signal_probabilities(16, seed).unwrap();
        for p in &probs {
            prop_assert!((0.0..=1.0).contains(p));
        }
        for pi in nl.primary_inputs() {
            prop_assert!((probs[pi.index()] - 0.5).abs() < 0.15);
        }
    }
}
