//! Live campaign tailing: the `subscribe` stream's file walker and the
//! `gnnunlockd --watch` terminal dashboard.
//!
//! Both consumers poll the campaign directory's event logs with
//! [`gnnunlock_engine::EventLog::tail_from`] — torn final lines are
//! never surfaced, so every line handed out is a complete JSONL record
//! exactly once per (file, offset) cursor.

use gnnunlock_engine::{Event, EventLog, LogTail, DEGRADED_PREFIX};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The event logs of a campaign directory, sorted: the single-process
/// log (`events.jsonl`) and every per-shard log (`events-<id>.jsonl`),
/// but never the merged stream (it would duplicate every record).
///
/// # Errors
///
/// Propagates directory read errors; a missing directory is an empty
/// list (the campaign just hasn't started).
pub fn event_log_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("events") && n.ends_with(".jsonl"))
        })
        .filter(|p| p.file_name().and_then(|n| n.to_str()) != Some("merged-events.jsonl"))
        .collect();
    out.sort();
    Ok(out)
}

/// Poll every event log under `dir` once, advancing the per-file
/// `cursors`, and hand each complete new line to `sink`. Returns how
/// many lines were consumed this tick.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or the tails.
pub fn poll_event_logs(
    dir: &Path,
    cursors: &mut BTreeMap<PathBuf, u64>,
    mut sink: impl FnMut(&str),
) -> io::Result<usize> {
    let mut consumed = 0;
    for path in event_log_files(dir)? {
        let offset = cursors.get(&path).copied().unwrap_or(0);
        let LogTail { lines, offset, .. } = EventLog::tail_from(&path, offset)?;
        consumed += lines.len();
        for line in &lines {
            sink(line);
        }
        cursors.insert(path, offset);
    }
    Ok(consumed)
}

/// Per-stage metric row of the watch dashboard, folded from
/// `stage-summary` events (the latest record per stage kind wins — each
/// shard's run emits one rollup per stage at run end).
#[derive(Debug, Clone, Default)]
pub struct StageRow {
    /// Jobs of this stage.
    pub total: usize,
    /// Jobs whose bodies ran.
    pub executed: usize,
    /// Jobs served from either cache tier.
    pub cache_hits: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Summed execution milliseconds.
    pub ms: f64,
    /// The stage blew through `GNNUNLOCK_STAGE_BUDGET_MS` — rendered as
    /// a highlighted row so overruns are visible live, not only in the
    /// opt-in timing report.
    pub over_budget: bool,
}

/// Aggregated view of a campaign's event streams, fed line by line.
#[derive(Debug, Clone, Default)]
pub struct WatchState {
    /// Campaign name from the latest `run-started` record.
    pub campaign: String,
    /// Jobs in the campaign's graph (from `run-started`).
    pub jobs: usize,
    /// `run-started` records seen (one per shard per run).
    pub runs_started: usize,
    /// `run-finished` records seen.
    pub runs_finished: usize,
    /// Job bodies started.
    pub started: usize,
    /// Jobs finished with status `ok`.
    pub finished_ok: usize,
    /// Jobs finished with any other status.
    pub finished_other: usize,
    /// Cache hits (memory or disk).
    pub cache_hits: usize,
    /// Lease claims (sharded executions).
    pub claimed: usize,
    /// Probe-ahead elisions.
    pub elided: usize,
    /// Stage errors.
    pub errors: usize,
    /// Stage errors carrying the `store-degraded` marker — the store
    /// backend's circuit breaker tripped while this campaign ran.
    pub degraded: usize,
    /// The most recent `store-degraded` stage-error message.
    pub last_degraded: String,
    /// Label of the most recent job-level record.
    pub last_label: String,
    /// Lines that failed to parse as events (foreign content).
    pub unparsed: usize,
    /// Per-stage metric rows keyed by stage kind tag.
    pub stages: BTreeMap<String, StageRow>,
}

impl WatchState {
    /// Fold one event-log line into the counters.
    pub fn apply_line(&mut self, line: &str) {
        match Event::parse(line) {
            Ok(ev) => self.apply(&ev),
            Err(_) => self.unparsed += 1,
        }
    }

    /// Fold one parsed event into the counters.
    pub fn apply(&mut self, ev: &Event) {
        match ev {
            Event::RunStarted { campaign, jobs, .. } => {
                self.campaign = campaign.clone();
                self.jobs = *jobs;
                self.runs_started += 1;
            }
            Event::RunFinished { .. } => self.runs_finished += 1,
            Event::JobStarted { label, .. } => {
                self.started += 1;
                self.last_label = label.clone();
            }
            Event::JobFinished { label, status, .. } => {
                if status == "ok" {
                    self.finished_ok += 1;
                } else {
                    self.finished_other += 1;
                }
                self.last_label = label.clone();
            }
            Event::CacheHit { label, .. } => {
                self.cache_hits += 1;
                self.last_label = label.clone();
            }
            Event::JobClaimed { label, .. } => {
                self.claimed += 1;
                self.last_label = label.clone();
            }
            Event::JobElided { label, .. } => {
                self.elided += 1;
                self.last_label = label.clone();
            }
            Event::StageError { label, error, .. } => {
                self.errors += 1;
                if error.contains(DEGRADED_PREFIX) {
                    self.degraded += 1;
                    self.last_degraded = error.clone();
                }
                self.last_label = label.clone();
            }
            // Per-stage timing rollups: no per-job progress, but they
            // are the dashboard's metric rows (and the only live
            // surface of an `over_budget` mark).
            Event::StageSummary {
                kind,
                total,
                executed,
                memory_hits,
                disk_hits,
                failed,
                ms,
                over_budget,
                ..
            } => {
                let row = self.stages.entry(kind.clone()).or_default();
                row.total = *total;
                row.executed = *executed;
                row.cache_hits = *memory_hits + *disk_hits;
                row.failed = *failed;
                row.ms = *ms;
                row.over_budget = *over_budget;
            }
        }
    }

    /// Settled jobs (terminal one way or another) out of [`Self::jobs`].
    pub fn settled(&self) -> usize {
        self.finished_ok + self.finished_other + self.cache_hits + self.elided
    }

    /// One dashboard frame. Mostly plain text (the caller owns the
    /// screen); the only ANSI inside the frame is the red highlight on
    /// over-budget stage rows and the store-degraded banner.
    pub fn render(&self, id: &str) -> String {
        let header = if self.campaign.is_empty() {
            format!("campaign {id} — waiting for events")
        } else {
            format!("campaign {id} ({})", self.campaign)
        };
        let width = 32usize;
        let filled = (self.settled() * width)
            .checked_div(self.jobs)
            .unwrap_or(0)
            .min(width);
        let bar: String = std::iter::repeat_n('#', filled)
            .chain(std::iter::repeat_n('.', width - filled))
            .collect();
        let mut frame = format!(
            "{header}\n\
             [{bar}] {}/{} jobs settled\n\
             ok {}  hits {}  claimed {}  elided {}  failed {}  errors {}\n\
             runs {}/{} finished   last: {}\n",
            self.settled(),
            self.jobs,
            self.finished_ok,
            self.cache_hits,
            self.claimed,
            self.elided,
            self.finished_other,
            self.errors,
            self.runs_finished,
            self.runs_started,
            if self.last_label.is_empty() {
                "-"
            } else {
                &self.last_label
            },
        );
        if self.degraded > 0 {
            frame.push_str(&format!(
                "\x1b[31;1mSTORE DEGRADED  {} store-degraded stage errors   last: {}\x1b[0m\n",
                self.degraded, self.last_degraded
            ));
        }
        for (kind, row) in &self.stages {
            let line = format!(
                "  {kind:<14} {:>3} jobs  {:>3} run  {:>3} hits  {:>3} failed  {:>9.1} ms",
                row.total, row.executed, row.cache_hits, row.failed, row.ms,
            );
            if row.over_budget {
                frame.push_str(&format!("\x1b[31;1m{line}  OVER BUDGET\x1b[0m\n"));
            } else {
                frame.push_str(&line);
                frame.push('\n');
            }
        }
        frame
    }
}

/// The `gnnunlockd --watch <id>` dashboard: tail the campaign
/// directory's event logs, redraw a terminal frame per tick, and exit
/// once every observed run finished and the logs go quiet (or after one
/// frame with `once`).
///
/// # Errors
///
/// Propagates I/O errors from the log tails or stdout.
pub fn run_watch(dir: &Path, id: &str, once: bool) -> io::Result<()> {
    let mut cursors = BTreeMap::new();
    let mut state = WatchState::default();
    let mut quiet_ticks = 0u32;
    loop {
        let consumed = poll_event_logs(dir, &mut cursors, |line| state.apply_line(line))?;
        let stdout = io::stdout();
        let mut out = stdout.lock();
        // Home + clear-to-end: flicker-free redraw on real terminals,
        // harmless noise in captured output.
        write!(out, "\x1b[H\x1b[2J{}", state.render(id))?;
        out.flush()?;
        if once {
            return Ok(());
        }
        quiet_ticks = if consumed == 0 { quiet_ticks + 1 } else { 0 };
        let report_done = dir.join("report.json").is_file();
        let runs_settled = state.runs_started > 0 && state.runs_finished >= state.runs_started;
        if quiet_ticks >= 3 && (report_done || runs_settled) {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnunlock_engine::EventLog;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gnnunlockd-watch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn polling_walks_all_logs_but_never_the_merged_stream() {
        let dir = tmp("walk");
        let a = EventLog::open_append(&dir.join("events-a.jsonl")).unwrap();
        let b = EventLog::open_append(&dir.join("events-b.jsonl")).unwrap();
        std::fs::write(dir.join("merged-events.jsonl"), "{\"ev\":\"bogus\"}\n").unwrap();
        a.append(&Event::JobStarted {
            id: 0,
            label: "parse/x".into(),
        });
        b.append(&Event::JobFinished {
            id: 0,
            label: "parse/x".into(),
            status: "ok".into(),
            ms: 1.0,
        });

        let mut cursors = BTreeMap::new();
        let mut lines = Vec::new();
        let n = poll_event_logs(&dir, &mut cursors, |l| lines.push(l.to_string())).unwrap();
        assert_eq!(n, 2);
        assert!(lines.iter().all(|l| !l.contains("bogus")));
        // A second poll from the cursors yields nothing new.
        let n = poll_event_logs(&dir, &mut cursors, |_| panic!("no new lines")).unwrap();
        assert_eq!(n, 0);
        // New appends resume from the cursor.
        a.append(&Event::JobElided {
            id: 1,
            label: "lock/x".into(),
        });
        let n = poll_event_logs(&dir, &mut cursors, |l| lines.push(l.to_string())).unwrap();
        assert_eq!(n, 1);
        assert_eq!(lines.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_state_folds_events_into_a_frame() {
        let mut state = WatchState::default();
        state.apply(&Event::RunStarted {
            campaign: "svc".into(),
            jobs: 4,
            shape: 7,
            resumed: false,
        });
        state.apply(&Event::JobStarted {
            id: 0,
            label: "parse/c1".into(),
        });
        state.apply(&Event::JobFinished {
            id: 0,
            label: "parse/c1".into(),
            status: "ok".into(),
            ms: 2.0,
        });
        state.apply(&Event::CacheHit {
            id: 1,
            label: "lock/c1".into(),
            source: "disk".into(),
        });
        state.apply_line("not an event");
        assert_eq!(state.settled(), 2);
        assert_eq!(state.unparsed, 1);
        let frame = state.render("deadbeef");
        assert!(frame.contains("deadbeef"));
        assert!(frame.contains("2/4 jobs settled"));
        assert!(frame.contains("lock/c1"));
    }

    /// Stage-summary events become per-stage metric rows; an
    /// `over_budget` mark gets the red highlight instead of being
    /// silently dropped (the old fold ignored these events entirely).
    #[test]
    fn stage_summary_rows_render_and_highlight_overruns() {
        let summary = |kind: &str, ms: f64, over_budget: bool| Event::StageSummary {
            kind: kind.into(),
            total: 4,
            executed: 2,
            memory_hits: 1,
            disk_hits: 1,
            failed: 0,
            skipped: 0,
            cancelled: 0,
            ms,
            over_budget,
        };
        let mut state = WatchState::default();
        state.apply(&summary("parse", 12.5, false));
        state.apply(&summary("train-epoch", 905.0, true));
        assert_eq!(state.stages.len(), 2);
        assert!(state.stages["train-epoch"].over_budget);
        let frame = state.render("deadbeef");
        assert!(frame.contains("parse"), "{frame}");
        assert!(frame.contains("905.0 ms"), "{frame}");
        let highlighted = frame
            .lines()
            .find(|l| l.contains("train-epoch"))
            .expect("row rendered");
        assert!(
            highlighted.starts_with("\x1b[31;1m") && highlighted.contains("OVER BUDGET"),
            "{highlighted}"
        );
        assert!(
            !frame
                .lines()
                .any(|l| l.contains("parse") && l.contains("\x1b[31;1m")),
            "within-budget rows stay plain"
        );
        // Re-applying a later rollup replaces the row, never duplicates.
        state.apply(&summary("parse", 14.0, false));
        assert_eq!(state.stages.len(), 2);
        assert_eq!(state.stages["parse"].ms, 14.0);
    }

    /// `store-degraded` stage errors surface as a highlighted banner —
    /// a tripped store breaker must be visible live, not buried in the
    /// generic error count.
    #[test]
    fn store_degraded_stage_errors_render_a_highlighted_banner() {
        let mut state = WatchState::default();
        state.apply(&Event::StageError {
            id: 3,
            label: "train/c1".into(),
            error: "ordinary failure".into(),
        });
        assert_eq!(state.degraded, 0, "plain errors are not degradations");
        assert!(!state.render("deadbeef").contains("STORE DEGRADED"));
        state.apply(&Event::StageError {
            id: 4,
            label: "verify/c1".into(),
            error: "store-degraded: object backend circuit breaker is open (load rejected)".into(),
        });
        assert_eq!(state.errors, 2);
        assert_eq!(state.degraded, 1);
        let frame = state.render("deadbeef");
        let banner = frame
            .lines()
            .find(|l| l.contains("STORE DEGRADED"))
            .expect("banner rendered");
        assert!(
            banner.starts_with("\x1b[31;1m") && banner.contains("circuit breaker is open"),
            "{banner}"
        );
    }
}
